//! # delta — facade crate
//!
//! Re-exports the whole Delta reproduction workspace behind one dependency:
//! the paper's decoupling framework ([`delta_core`]), the substrates it
//! runs on (HTM sky partitioning, max-flow/vertex-cover engine, simulated
//! network, object stores, replacement policies, and the SDSS-like
//! workload reconstruction), and the sharded TCP cache service
//! ([`delta_server`]) that puts the engine on the wire.
//!
//! See the `examples/` directory for runnable entry points, `DESIGN.md`
//! for the crate map, and the README for the `delta-serverd` /
//! `delta-loadgen` quickstart.
//!
//! ```
//! use delta::core::{sim, VCover};
//! use delta::workload::{SyntheticSurvey, WorkloadConfig};
//!
//! let mut cfg = WorkloadConfig::small();
//! cfg.n_queries = 200;
//! cfg.n_updates = 200;
//! let survey = SyntheticSurvey::generate(&cfg);
//! let opts = sim::SimOptions::with_cache_fraction(&survey.catalog, 0.3, 100);
//! let mut vcover = VCover::new(opts.cache_bytes, 42);
//! let report = sim::simulate(&mut vcover, &survey.catalog, &survey.trace, opts);
//! assert!(report.total().bytes() > 0);
//! ```

#![forbid(unsafe_code)]

pub use delta_core as core;
pub use delta_flow as flow;
pub use delta_htm as htm;
pub use delta_net as net;
pub use delta_policy as policy;
pub use delta_query as query;
pub use delta_server as server;
pub use delta_storage as storage;
pub use delta_telemetry as telemetry;
pub use delta_workload as workload;
