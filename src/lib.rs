//! # delta — facade crate
//!
//! Re-exports the whole Delta reproduction workspace behind one dependency:
//! the paper's decoupling framework ([`delta_core`]), and the substrates it
//! runs on (HTM sky partitioning, max-flow/vertex-cover engine, simulated
//! network, object stores, replacement policies, and the SDSS-like workload
//! reconstruction).
//!
//! See the `examples/` directory for runnable entry points, `DESIGN.md` for
//! the crate map and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use delta_core as core;
pub use delta_flow as flow;
pub use delta_htm as htm;
pub use delta_net as net;
pub use delta_policy as policy;
pub use delta_query as query;
pub use delta_storage as storage;
pub use delta_workload as workload;
