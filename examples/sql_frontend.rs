//! SQL frontend: drive the middleware with real SkyServer-style SQL.
//!
//! §4 of the paper requires "a semantic framework that determines the
//! mapping between the query, q, and the data objects, B(q)". This
//! example compiles a batch of astronomy queries — cone searches,
//! rectangle scans, magnitude cuts, a self-join, an aggregate — into
//! priced, object-mapped events and replays them (interleaved with a
//! telescope update stream) through VCover.
//!
//! ```sh
//! cargo run --release --example sql_frontend
//! ```

use delta::core::{simulate, SimOptions, VCover};
use delta::htm::Partition;
use delta::query::{Compiler, Schema};
use delta::storage::{ObjectCatalog, SpatialMapper};
use delta::workload::{Event, SkyModel, Trace, UpdateEvent};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The world: an SDSS-like sky split into 68 HTM objects.
    let sky = SkyModel::sdss_like(7, 12);
    let mut partition = Partition::adaptive(|t| t.solid_angle(), 68);
    partition.reweight(|t| sky.trixel_mass(t));
    let catalog =
        ObjectCatalog::from_partition(&partition, 800_000_000_000, 50_000_000, 90_000_000_000);
    let mapper = SpatialMapper::new(partition);
    let compiler = Compiler::new(Schema::sdss(), sky, mapper);

    // A session of astronomer queries (the kinds §6.1 lists).
    let session = [
        // Time-domain work wants the latest data: zero tolerance.
        "SELECT * FROM PhotoObj \
         WHERE CONTAINS(POINT('J2000', 185.0, 15.3), CIRCLE('J2000', 185.0, 15.3, 2.0)) = 1",
        // A magnitude-cut galaxy sample over a stripe; a day of staleness is fine.
        "SELECT objID, ra, dec, g, r FROM PhotoObj \
         WHERE ra BETWEEN 175 AND 195 AND dec BETWEEN 10 AND 20 \
         AND g BETWEEN 17 AND 21 AND type = 3 WITH TOLERANCE 2000",
        // Pair search around a transient candidate.
        "SELECT objID, ra, dec FROM PhotoObj WHERE NEIGHBORS(185.2, 15.1, 0.5)",
        // Counting sources in a field.
        "SELECT COUNT(*) FROM PhotoObj WHERE RECT(184, 14, 186, 16)",
        // A photometric selection with several cuts.
        "SELECT * FROM PhotoObj \
         WHERE CIRCLE(186.0, 15.0, 3.0) AND r < 20 AND extinction_r < 0.3",
        // A color-cut disjunction (blue in g OR red in i).
        "SELECT objID, ra, dec, g, i FROM PhotoObj \
         WHERE CIRCLE(185.5, 14.5, 2.0) AND (g < 18 OR i < 17.5) WITH TOLERANCE 500",
    ];

    println!("compiling {} queries:\n", session.len());
    let mut events = Vec::new();
    let mut rng = StdRng::seed_from_u64(99);
    let mut seq = 0u64;
    // Replay the session 200 times at drifting positions, interleaved
    // with a stream of telescope updates, to give the cache something to
    // learn from.
    for round in 0..200u64 {
        for (i, sql) in session.iter().enumerate() {
            let compiled = compiler.compile(sql)?;
            if round == 0 {
                println!(
                    "  [{i}] {:?}: {} objects, est. {} rows / {:.1} MB, t(q)={}",
                    compiled.analyzed.kind,
                    compiled.objects.len(),
                    compiled.estimate.rows,
                    compiled.estimate.bytes as f64 / 1e6,
                    compiled.analyzed.tolerance,
                );
            }
            events.push(Event::Query(compiled.into_event(seq)));
            seq += 1;
            // Two pipeline updates between queries, on random objects.
            for _ in 0..2 {
                let object = delta::storage::ObjectId(rng.random_range(0..catalog.len() as u32));
                let bytes = 400_000 + rng.random_range(0..800_000u64);
                events.push(Event::Update(UpdateEvent { seq, object, bytes }));
                seq += 1;
            }
        }
    }
    let trace = Trace { events };

    let opts = SimOptions::with_cache_fraction(&catalog, 0.3, 200);
    let mut vcover = VCover::new(opts.cache_bytes, 7);
    let report = simulate(&mut vcover, &catalog, &trace, opts);
    println!("\n{report}");
    println!(
        "\nthe frontend priced every query from its SQL text alone; \
         {} of {} were answered at the middleware.",
        report.ledger.local_answers,
        report.ledger.local_answers + report.ledger.shipped_queries
    );
    Ok(())
}
