//! Delta outside astronomy: a weather nowcasting repository.
//!
//! §4 of the paper points beyond sky surveys: "in some applications,
//! such as weather prediction, which have similar rapidly-growing
//! repositories, minimizing overall response time is equally important."
//! This example builds such a repository directly from the generic API —
//! no sky model, no HTM: a grid of radar/forecast tiles where a few
//! storm-active tiles receive a torrent of updates while forecasters
//! hammer the tiles around population centers — and runs VCover and
//! Preship(VCover) against NoCache on both traffic and response time.
//!
//! ```sh
//! cargo run --release --example weather_nowcast
//! ```

use delta::core::{simulate, NoCache, Preship, PreshipConfig, SimOptions, VCover};
use delta::net::LinkModel;
use delta::storage::{ObjectCatalog, ObjectId};
use delta::workload::{Event, QueryEvent, QueryKind, Trace, UpdateEvent};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // 64 forecast tiles of 300 MB – 1 GB (model grids + radar mosaics).
    let mut rng = StdRng::seed_from_u64(2024);
    let sizes: Vec<u64> = (0..64)
        .map(|_| 300_000_000 + rng.random_range(0..700_000_000u64))
        .collect();
    let catalog = ObjectCatalog::from_sizes(&sizes);

    // Storm corridor: tiles 10..16 get 70% of the updates (radar volume
    // scans every few minutes). Metro tiles 40..48 get 80% of the queries
    // (forecaster dashboards, zero staleness tolerance during an event).
    let mut events = Vec::new();
    for seq in 0..30_000u64 {
        if rng.random_bool(0.5) {
            let tile = if rng.random_bool(0.7) {
                10 + rng.random_range(0..6u32)
            } else {
                rng.random_range(0..64u32)
            };
            events.push(Event::Update(UpdateEvent {
                seq,
                object: ObjectId(tile),
                bytes: 2_000_000 + rng.random_range(0..6_000_000u64),
            }));
        } else {
            let tile = if rng.random_bool(0.8) {
                40 + rng.random_range(0..8u32)
            } else {
                rng.random_range(0..64u32)
            };
            // Dashboards pull rendered layers: a few MB each; nowcasts
            // must be current, climatology lookups tolerate minutes.
            let (bytes, tolerance) = if rng.random_bool(0.75) {
                (1_000_000 + rng.random_range(0..8_000_000u64), 0)
            } else {
                (200_000 + rng.random_range(0..800_000u64), 2_000)
            };
            events.push(Event::Query(QueryEvent {
                seq,
                objects: vec![ObjectId(tile)],
                result_bytes: bytes,
                tolerance,
                kind: QueryKind::Selection,
            }));
        }
    }
    let trace = Trace::new(events);

    // Forecast office cache: a third of the repository, over a WAN to the
    // national center.
    let opts = SimOptions::with_cache_fraction(&catalog, 0.33, 3_000).with_link(LinkModel::wan());

    println!(
        "weather repository: 64 tiles, {:.0} GB total; {} events\n",
        catalog.total_bytes() as f64 / 1e9,
        trace.len()
    );
    println!(
        "{:<17} {:>12} {:>7} {:>26}",
        "policy", "traffic", "hit%", "response time"
    );
    for report in [
        simulate(&mut NoCache, &catalog, &trace, opts),
        simulate(
            &mut VCover::new(opts.cache_bytes, 7),
            &catalog,
            &trace,
            opts,
        ),
        simulate(
            &mut Preship::new(
                VCover::new(opts.cache_bytes, 7),
                PreshipConfig {
                    half_life_events: 3_000.0,
                    hot_threshold: 2.0,
                },
            ),
            &catalog,
            &trace,
            opts,
        ),
    ] {
        let l = report.latency.expect("link configured");
        println!(
            "{:<17} {:>12} {:>6.1}% {:>20}",
            report.policy,
            report.total().to_string(),
            report.ledger.hit_rate() * 100.0,
            format!(
                "p50 {:.0} ms / p99 {:.0} ms",
                l.p50_secs * 1e3,
                l.p99_secs * 1e3
            ),
        );
    }
    println!(
        "\nthe decoupling framework separates the storm corridor (update-hot,\n\
         left at the center) from the metro tiles (query-hot, cached at the\n\
         office); preshipping keeps the cached tiles fresh between dashboards."
    );
}
