//! Preshipping: trade a little traffic for much better tail latency.
//!
//! §4's discussion (and the paper's technical report) note that VCover's
//! traffic-minimal decisions can delay queries that must wait for
//! outstanding updates; "some updates can be preshipped, i.e.,
//! proactively sent by the server". This example compares plain VCover
//! against `Preship(VCover)` on a WAN link model and prints the response
//! -time distribution each achieves.
//!
//! ```sh
//! cargo run --release --example preshipping
//! ```

use delta::core::{simulate, Preship, PreshipConfig, SimOptions, VCover};
use delta::net::LinkModel;
use delta::workload::{SyntheticSurvey, WorkloadConfig};

fn main() {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 10_000;
    cfg.n_updates = 10_000;
    let survey = SyntheticSurvey::generate(&cfg);
    let opts =
        SimOptions::with_cache_fraction(&survey.catalog, 0.3, 2000).with_link(LinkModel::wan());

    let mut plain = VCover::new(opts.cache_bytes, cfg.seed);
    let base = simulate(&mut plain, &survey.catalog, &survey.trace, opts);

    let mut wrapped = Preship::new(
        VCover::new(opts.cache_bytes, cfg.seed),
        PreshipConfig {
            half_life_events: 2000.0,
            hot_threshold: 2.0,
        },
    );
    let pre = simulate(&mut wrapped, &survey.catalog, &survey.trace, opts);
    let (ranges, bytes) = wrapped.preshipped();

    println!("policy             traffic        response time");
    for r in [&base, &pre] {
        println!(
            "{:<18} {:>10}   {}",
            r.policy,
            r.total().to_string(),
            r.latency.expect("link configured"),
        );
    }
    println!(
        "\npreshipped {ranges} update ranges ({:.2} GB) off the query critical path",
        bytes as f64 / 1e9
    );
    let (b, p) = (base.latency.unwrap(), pre.latency.unwrap());
    println!(
        "mean response time changed by {:+.1}%, traffic by {:+.2}%",
        100.0 * (p.mean_secs / b.mean_secs - 1.0),
        100.0 * (pre.total().bytes() as f64 / base.total().bytes() as f64 - 1.0),
    );
}
