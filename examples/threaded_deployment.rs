//! Run Delta as a real three-thread deployment — client, middleware
//! cache, and repository server exchanging metered messages — and verify
//! that the WAN meter agrees byte-for-byte with the in-process simulator.
//!
//! ```sh
//! cargo run --release --example threaded_deployment
//! ```

use delta::core::deploy::run_deployed;
use delta::core::{simulate, SimOptions, VCover};
use delta::net::TrafficClass;
use delta::workload::{SyntheticSurvey, WorkloadConfig};

fn main() {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 1_500;
    cfg.n_updates = 1_500;
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, 500);

    println!("in-process simulation...");
    let mut sim_policy = VCover::new(opts.cache_bytes, cfg.seed);
    let simulated = simulate(&mut sim_policy, &survey.catalog, &survey.trace, opts);
    println!("  {simulated}");

    println!("threaded deployment (client / cache / server)...");
    let mut dep_policy = VCover::new(opts.cache_bytes, cfg.seed);
    let (deployed, wan) = run_deployed(&mut dep_policy, &survey.catalog, &survey.trace, opts);
    println!("  {deployed}");

    println!("\nWAN meter (bytes actually crossing the cache<->server link):");
    for class in [
        TrafficClass::QueryShip,
        TrafficClass::UpdateShip,
        TrafficClass::ObjectLoad,
    ] {
        println!("  {:?}: {}", class, wan.bytes_for(class));
    }
    assert_eq!(
        simulated.total().bytes(),
        deployed.total().bytes(),
        "simulation and deployment must agree"
    );
    assert_eq!(
        deployed.total().bytes(),
        wan.charged_total(),
        "ledger and wire meter must agree"
    );
    println!(
        "\nsimulation == deployment == wire meter: {} bytes. \
         The cost model is the network.",
        wan.charged_total()
    );
}
