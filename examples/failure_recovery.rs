//! Failure recovery: crash the cache mid-trace and watch it resync.
//!
//! §7 of the paper leaves "reliability, failure-recovery, and
//! communication protocols" to a real deployment. This example runs the
//! threaded client/cache/server deployment, kills the cache twice — once
//! warm (disk survives), once cold (everything lost) — and reports what
//! each recovery cost. Every query is still answered within its
//! staleness contract; crashes only move bytes.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use delta::core::deploy::{run_deployed_faulty, FaultPlan, RecoveryMode};
use delta::core::{simulate, CachingPolicy, SimOptions, VCover};
use delta::workload::{SyntheticSurvey, WorkloadConfig};

fn main() {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 4000;
    cfg.n_updates = 4000;
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, 1000);
    let n = survey.trace.len() as u64;
    let seed = cfg.seed;

    // Fault-free baseline (in-process; byte-identical to the deployment).
    let mut clean = VCover::new(opts.cache_bytes, seed);
    let baseline = simulate(&mut clean, &survey.catalog, &survey.trace, opts);
    println!("fault-free run:    {baseline}");

    // A warm crash at 40% and a cold crash at 75% of the trace.
    let plan = FaultPlan {
        crashes: vec![
            (n * 2 / 5, RecoveryMode::Warm),
            (n * 3 / 4, RecoveryMode::Cold),
        ],
    };
    let mut factory =
        move || -> Box<dyn CachingPolicy + Send> { Box::new(VCover::new(opts.cache_bytes, seed)) };
    let (report, wan, recovery) =
        run_deployed_faulty(&mut factory, &survey.catalog, &survey.trace, opts, &plan);

    println!("with 2 crashes:    {report}");
    assert_eq!(
        report.total().bytes(),
        wan.charged_total(),
        "the WAN meter audits the ledger byte-for-byte, crashes included"
    );

    println!("\nrecovery protocol:");
    println!("  crashes injected ............ {}", recovery.crashes);
    println!("  objects kept (warm) ......... {}", recovery.objects_kept);
    println!(
        "  of which stale on resync .... {}",
        recovery.objects_stale_on_recovery
    );
    println!("  objects lost (cold) ......... {}", recovery.objects_lost);
    println!(
        "  metadata log entries replayed {}",
        recovery.log_entries_replayed
    );
    println!(
        "\ntraffic delta vs fault-free: {:+.1}%  (a crash re-pays loads and re-ships \
         queries; a restarted policy is a *different* online run, so an occasional \
         lucky negative delta is possible — the faults bench sweeps this properly)",
        100.0 * (report.total().bytes() as f64 / baseline.total().bytes().max(1) as f64 - 1.0)
    );
}
