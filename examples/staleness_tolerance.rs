//! Staleness tolerance in action (§3's t(q) semantics): the same
//! workload run with strictly-current queries versus tolerant ones, and
//! the traffic VCover saves when users can accept slightly stale answers.
//!
//! ```sh
//! cargo run --release --example staleness_tolerance
//! ```

use delta::core::{simulate, SimOptions, VCover};
use delta::workload::{Event, SyntheticSurvey, WorkloadConfig};

fn run_with_tolerance(label: &str, zero_frac: f64, mean_tolerance: u64) {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 5_000;
    cfg.n_updates = 5_000;
    cfg.zero_tolerance_frac = zero_frac;
    cfg.mean_tolerance = mean_tolerance;
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, 1_000);
    let mut vcover = VCover::new(opts.cache_bytes, cfg.seed);
    let report = simulate(&mut vcover, &survey.catalog, &survey.trace, opts);

    let tolerant = survey
        .trace
        .iter()
        .filter(|e| matches!(e, Event::Query(q) if q.tolerance > 0))
        .count();
    println!(
        "{label:<28} tolerant queries {:>5}  total {:>12}  update-ship {:>10}  hit {:>5.1}%",
        tolerant,
        report.total().to_string(),
        report.ledger.breakdown.update_ship.to_string(),
        report.ledger.hit_rate() * 100.0
    );
}

fn main() {
    println!("VCover under different currency regimes (same sky, same object set):\n");
    run_with_tolerance("all queries strict (t=0)", 1.0, 0);
    run_with_tolerance("paper mix (70% strict)", 0.7, 200);
    run_with_tolerance("relaxed (30% strict)", 0.3, 2_000);
    println!(
        "\nLooser tolerances mean fewer outstanding updates interact with each \
         query, so fewer update shipments and cheaper local answers — \
         exactly the t(q) trade-off of §3."
    );
}
