//! The paper's headline scenario at reduced scale: an SDSS-like survey
//! with drifting query hotspots and telescope-stripe updates, compared
//! across all five policies (NoCache, Replica, Benefit, VCover,
//! SOptimal), with the per-mechanism cost breakdown.
//!
//! ```sh
//! cargo run --release --example astronomy_survey
//! ```

use delta::core::{compare_all, SimOptions};
use delta::workload::{SyntheticSurvey, TraceStats, WorkloadConfig};

fn main() {
    // 50k events with the full-scale byte ratios (800 GB repository,
    // megabyte-scale results, 50 MB - 90 GB objects).
    let mut cfg = WorkloadConfig::sdss_like();
    cfg.n_queries = 25_000;
    cfg.n_updates = 25_000;
    cfg.drift_interval = 900;
    println!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);

    // Workload characterization (the Fig. 7(a) story).
    let stats = TraceStats::compute(&survey.trace, survey.catalog.len());
    println!(
        "query hotspots {:?} vs update hotspots {:?} (Jaccard overlap {:.2})",
        stats.top_query_objects(5),
        stats.top_update_objects(5),
        stats.hotspot_overlap(5)
    );

    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, 1_000);
    let warmup = (cfg.n_events() as f64 * cfg.warmup_fraction) as u64;
    println!("running all five policies (cache = 30% of server)...\n");
    for report in compare_all(&survey.catalog, &survey.trace, opts, cfg.seed) {
        println!("{report}");
        let b = &report.ledger.breakdown;
        println!(
            "   post-warm-up {:>10}  |  mechanism split: query {:.0}%  update {:.0}%  load {:.0}%",
            report.cost_after(warmup).to_string(),
            100.0 * b.query_ship.bytes() as f64 / report.total().bytes().max(1) as f64,
            100.0 * b.update_ship.bytes() as f64 / report.total().bytes().max(1) as f64,
            100.0 * b.load.bytes() as f64 / report.total().bytes().max(1) as f64,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 7(b)): SOptimal <= VCover < Replica < NoCache,\n\
         with Benefit trailing VCover and close to NoCache."
    );
}
