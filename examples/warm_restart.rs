//! Warm restart: snapshot the decoupling engine mid-trace, restore it,
//! and finish the run without re-warming the cache.
//!
//! The paper's repository-growth setting makes long-lived caches
//! valuable — and restarts expensive, because a cold cache re-loads (and
//! re-ships) everything it had already paid for. The extracted
//! `delta_core::Engine` makes the fix a first-class operation: its
//! snapshot captures the repository update logs, the cache residency
//! (versions and stale marks) and the cost ledger as one JSONL file, and
//! a restored engine resumes exactly where the old one stopped. This is
//! the same mechanism `delta-serverd --snapshot-dir` uses per shard.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```

use delta::core::engine::{read_snapshot, write_snapshot};
use delta::core::{Engine, VCover};
use delta::workload::{Event, SyntheticSurvey, WorkloadConfig};

fn main() {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 5000;
    cfg.n_updates = 5000;
    let survey = SyntheticSurvey::generate(&cfg);
    let cache_bytes = (survey.catalog.total_bytes() as f64 * 0.3) as u64;
    let mid = survey.trace.len() / 2;
    let path = std::env::temp_dir().join("delta-warm-restart-example.jsonl");

    // First half of the trace, then snapshot — the "process about to be
    // restarted".
    let mut engine = Engine::new(
        Box::new(VCover::new(cache_bytes, cfg.seed)),
        &survey.catalog,
        cache_bytes,
    );
    engine.init(None);
    for event in &survey.trace.events[..mid] {
        engine.apply(event).expect("policy satisfies every query");
    }
    let at_snapshot = engine.metrics();
    write_snapshot(&path, &engine.snapshot()).expect("write snapshot");
    println!(
        "snapshot after {:>6} events: {:>12} moved, {} residents, hit-rate {:.1}%",
        at_snapshot.events(),
        at_snapshot.ledger.total().to_string(),
        at_snapshot.residents,
        at_snapshot.hit_rate() * 100.0,
    );
    drop(engine); // the old process is gone

    // The restarted process: a fresh policy over the restored world.
    let snap = read_snapshot(&path).expect("read snapshot");
    let mut warm = Engine::restore(
        Box::new(VCover::new(cache_bytes, cfg.seed)),
        &survey.catalog,
        &snap,
    )
    .expect("snapshot fits this catalog and policy");
    for event in &survey.trace.events[mid..] {
        warm.apply(event).expect("policy satisfies every query");
    }
    let warm_metrics = warm.metrics();
    println!(
        "warm finish  {:>6} events: {:>12} moved, {} loads total",
        warm_metrics.events(),
        warm_metrics.ledger.total().to_string(),
        warm_metrics.ledger.loads,
    );

    // The alternative: restart cold and replay only the tail. The ledger
    // starts at zero, but the cache must be re-warmed — compare loads.
    let mut cold = Engine::new(
        Box::new(VCover::new(cache_bytes, cfg.seed)),
        &survey.catalog,
        cache_bytes,
    );
    cold.init(None);
    // The repository kept growing regardless of the cache's fate; replay
    // the already-seen updates to rebuild server state, then serve the
    // tail with an empty cache.
    for event in &survey.trace.events[..mid] {
        if let Event::Update(u) = event {
            cold.apply(&Event::Update(*u))
                .expect("updates always apply");
        }
    }
    let before_tail = cold.metrics().ledger.total();
    for event in &survey.trace.events[mid..] {
        cold.apply(event).expect("policy satisfies every query");
    }
    let cold_metrics = cold.metrics();
    let cold_tail = cold_metrics.ledger.total().saturating_sub(before_tail);
    let warm_tail = warm_metrics
        .ledger
        .total()
        .saturating_sub(at_snapshot.ledger.total());
    // An online policy may get lucky either way on raw bytes; the
    // structural difference is that the warm cache starts populated.
    println!(
        "tail traffic: warm restart {} ({} loads, {} residents at start) vs \
         cold restart {} ({} loads, 0 residents at start)",
        warm_tail,
        warm_metrics.ledger.loads - at_snapshot.ledger.loads,
        at_snapshot.residents,
        cold_tail,
        cold_metrics.ledger.loads,
    );
    let _ = std::fs::remove_file(&path);
}
