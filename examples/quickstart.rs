//! Quickstart: build a tiny synthetic survey, run Delta's VCover against
//! the NoCache yardstick, and print the traffic savings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use delta::core::{simulate, NoCache, SimOptions, VCover};
use delta::workload::{SyntheticSurvey, WorkloadConfig};

fn main() {
    // A small query-dominated survey: 48 spatial objects, 26,000
    // interleaved events, deterministic under the seed. (Long enough
    // past the cheap warm-up prefix for object loads to amortize, with
    // hotspots that persist long enough to be worth learning — on very
    // short or fully chaotic traces an online algorithm has nothing to
    // exploit.)
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 20_000;
    cfg.n_updates = 6_000;
    cfg.target_objects = 48;
    cfg.drift_interval = 2_500;
    let survey = SyntheticSurvey::generate(&cfg);
    println!(
        "survey: {} objects, {} bytes total, {} queries + {} updates",
        survey.catalog.len(),
        survey.catalog.total_bytes(),
        survey.trace.n_queries(),
        survey.trace.n_updates()
    );

    // Cache sized at 30% of the repository, as in the paper's default.
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, 500);

    let mut nocache = NoCache;
    let baseline = simulate(&mut nocache, &survey.catalog, &survey.trace, opts);

    let mut vcover = VCover::new(opts.cache_bytes, cfg.seed);
    let delta = simulate(&mut vcover, &survey.catalog, &survey.trace, opts);

    println!("\n{baseline}");
    println!("{delta}");
    println!(
        "\nVCover moved {:.1}% of the bytes NoCache moved \
         ({} of its queries were answered at the middleware).",
        100.0 * delta.total().bytes() as f64 / baseline.total().bytes() as f64,
        delta.ledger.local_answers
    );
}
