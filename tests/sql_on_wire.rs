//! Cross-crate integration through the `delta` facade: raw SQL and
//! pipelined batches over a live TCP server, end to end.

use delta::server::{
    BatchItem, BatchReply, DeltaClient, PolicyKind, Request, Response, Server, ServerConfig,
};
use delta::workload::{Event, SyntheticSurvey, WorkloadConfig};

fn world() -> (WorkloadConfig, SyntheticSurvey, Server) {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 150;
    cfg.n_updates = 150;
    let survey = SyntheticSurvey::generate(&cfg);
    let config = ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards: 4,
        cache_bytes: (survey.catalog.total_bytes() as f64 * 0.3) as u64,
        policy: PolicyKind::VCover,
        seed: 7,
        frontend: Some(cfg.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(config, survey.catalog.clone()).expect("server starts");
    (cfg, survey, server)
}

#[test]
fn sql_batches_and_pipelining_compose_over_the_facade() {
    let (_cfg, survey, server) = world();
    let addr = server.local_addr();

    // 1. Raw SQL straight onto the wire.
    let mut client = DeltaClient::connect(addr).expect("connect");
    let reply = client
        .sql(
            0,
            "SELECT ra, dec FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 2.0) WITH TOLERANCE 25",
        )
        .expect("transport ok")
        .expect("compiles");
    assert!(reply.objects > 0, "a 2° cone touches objects");
    assert!(reply.result_bytes > 0);
    assert_eq!(reply.tolerance, 25);
    assert_eq!(
        reply.local_answers + reply.shipped,
        reply.shards_touched,
        "every sub-query is satisfied somewhere"
    );

    // A typed rejection, not a dead connection.
    let rejection = client
        .sql(1, "SELECT warp FROM PhotoObj")
        .expect("transport ok")
        .expect_err("unknown column");
    assert!(rejection.message.contains("warp"), "{rejection}");

    // 2. A trace prefix as one batch frame.
    let items: Vec<BatchItem> = survey
        .trace
        .events
        .iter()
        .take(60)
        .map(|e| match e {
            Event::Query(q) => BatchItem::Query(q.clone()),
            Event::Update(u) => BatchItem::Update(*u),
        })
        .collect();
    let replies = client.batch(&items).expect("batch served");
    assert_eq!(replies.len(), 60);
    for (reply, item) in replies.iter().zip(&items) {
        match (reply, item) {
            (BatchReply::Query { .. }, BatchItem::Query(_)) => {}
            (BatchReply::Update { .. }, BatchItem::Update(_)) => {}
            other => panic!("reply out of order: {other:?}"),
        }
    }

    // 3. The rest of the trace pipelined, window of 6, mixing frame
    // kinds — SQL included.
    let mut pipe = client.pipelined(6);
    for event in survey.trace.events.iter().skip(60).take(120) {
        let request = match event {
            Event::Query(q) => Request::Query(q.clone()),
            Event::Update(u) => Request::Update(*u),
        };
        pipe.submit(&request).expect("submit");
        assert!(pipe.in_flight() <= 6, "window respected");
    }
    pipe.submit(&Request::Sql {
        seq: 500,
        sql: "SELECT COUNT(*) FROM PhotoObj".to_string(),
    })
    .expect("submit sql");
    let responses = pipe.drain().expect("drain");
    assert_eq!(responses.len(), 121);
    // Correlation ids are unique and every response is a success.
    let mut corrs: Vec<u64> = responses.iter().map(|(c, _)| *c).collect();
    corrs.sort();
    corrs.dedup();
    assert_eq!(corrs.len(), 121);
    assert!(responses
        .iter()
        .any(|(_, r)| matches!(r, Response::SqlOk { .. })));
    assert!(!responses
        .iter()
        .any(|(_, r)| matches!(r, Response::Error { .. })));

    // 4. Back to lockstep on the same socket; the accounting adds up.
    let (mut client, _) = pipe.into_lockstep().expect("drained");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 4);
    assert!(stats.total_ledger().total().bytes() > 0);
    client.shutdown().expect("shutdown");
    server.join();
}
