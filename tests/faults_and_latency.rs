//! Cross-crate integration: failure injection, recovery and the
//! latency/preshipping extension.

use delta::core::deploy::{run_deployed_faulty, FaultPlan, RecoveryMode};
use delta::core::{simulate, CachingPolicy, Preship, PreshipConfig, SimOptions, VCover};
use delta::net::{Link, LinkModel, LossModel, LossyEndpoint, NetMessage, TrafficClass};
use delta::workload::{SyntheticSurvey, WorkloadConfig};
use std::sync::Arc;

fn survey(n: usize) -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = n;
    cfg.n_updates = n;
    SyntheticSurvey::generate(&cfg)
}

#[test]
fn crashes_never_break_the_satisfaction_contract() {
    let s = survey(600);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 200);
    let n = s.trace.len() as u64;
    for mode in [RecoveryMode::Warm, RecoveryMode::Cold] {
        let plan = FaultPlan {
            crashes: vec![(n / 4, mode), (n / 2, mode), (3 * n / 4, mode)],
        };
        let mut factory = move || -> Box<dyn CachingPolicy + Send> {
            Box::new(VCover::new(opts.cache_bytes, 11))
        };
        let (report, wan, rec) =
            run_deployed_faulty(&mut factory, &s.catalog, &s.trace, opts, &plan);
        assert_eq!(rec.crashes, 3, "{mode:?}");
        assert_eq!(
            report.ledger.shipped_queries + report.ledger.local_answers,
            s.trace.n_queries() as u64,
            "{mode:?}: every query answered"
        );
        assert_eq!(
            report.total().bytes(),
            wan.charged_total(),
            "{mode:?}: audit"
        );
    }
}

#[test]
fn warm_recovery_is_cheaper_than_cold() {
    let s = survey(800);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 200);
    let n = s.trace.len() as u64;
    let run = |mode| {
        let plan = FaultPlan {
            crashes: (1..=4).map(|i| (i * n / 5, mode)).collect(),
        };
        let mut factory = move || -> Box<dyn CachingPolicy + Send> {
            Box::new(VCover::new(opts.cache_bytes, 11))
        };
        let (report, _, rec) = run_deployed_faulty(&mut factory, &s.catalog, &s.trace, opts, &plan);
        (report.ledger.breakdown.load.bytes(), rec)
    };
    let (_warm_loads, warm_rec) = run(RecoveryMode::Warm);
    let (_cold_loads, cold_rec) = run(RecoveryMode::Cold);
    // Warm restarts keep every resident; cold restarts drop them all.
    // (No byte-level inequality holds in general: a restarted policy is a
    // *different* online run and may happen to load less.)
    assert_eq!(warm_rec.objects_lost, 0);
    assert!(
        cold_rec.objects_lost > 0,
        "a loaded cache crashed cold must lose residents (lost {})",
        cold_rec.objects_lost
    );
    assert!(warm_rec.objects_kept > 0, "warm restarts retain residents");
}

#[test]
fn latency_accounting_orders_policies_sanely() {
    let s = survey(1_000);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 200).with_link(LinkModel::wan());
    // A policy that answers locally (after warm-up) must beat NoCache on
    // median latency; NoCache pays a WAN round trip on every query.
    let mut nc = delta::core::NoCache;
    let rn = simulate(&mut nc, &s.catalog, &s.trace, opts);
    let ln = rn.latency.expect("link configured");
    assert_eq!(ln.count, s.trace.n_queries() as u64);
    assert!(
        ln.p50_secs >= LinkModel::wan().rtt_secs,
        "every NoCache query pays the RTT"
    );
    // Latency summaries are internally consistent.
    assert!(ln.p50_secs <= ln.p95_secs && ln.p95_secs <= ln.p99_secs);
    assert!(ln.p99_secs <= ln.max_secs && ln.mean_secs <= ln.max_secs);
}

#[test]
fn preshipping_does_not_change_correctness_and_helps_hot_latency() {
    let s = survey(4_000);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 500).with_link(LinkModel::wan());
    let mut plain = VCover::new(opts.cache_bytes, 3);
    let base = simulate(&mut plain, &s.catalog, &s.trace, opts);
    let mut wrapped = Preship::new(
        VCover::new(opts.cache_bytes, 3),
        PreshipConfig {
            half_life_events: 1000.0,
            hot_threshold: 2.0,
        },
    );
    let pre = simulate(&mut wrapped, &s.catalog, &s.trace, opts);
    assert_eq!(
        pre.ledger.shipped_queries + pre.ledger.local_answers,
        s.trace.n_queries() as u64
    );
    // Preshipping moves update shipping off the query path; queries that
    // do run locally see fewer blocking exchanges, so mean latency must
    // not regress materially (allow 5% noise).
    let (b, p) = (base.latency.unwrap(), pre.latency.unwrap());
    assert!(
        p.mean_secs <= b.mean_secs * 1.05,
        "preshipping must not hurt mean latency: {} vs {}",
        p.mean_secs,
        b.mean_secs
    );
}

#[test]
fn lossy_wan_preserves_charged_bytes_and_meters_overhead() {
    // Drive a lossy link manually with a deterministic message mix.
    let (a, b, meter) = Link::pair();
    let mut lossy = LossyEndpoint::new(a, LossModel::new(0.2, 99), Arc::clone(&meter));
    let reader = std::thread::spawn(move || {
        let mut n = 0u64;
        while let Ok(m) = b.recv() {
            if m == NetMessage::Shutdown {
                break;
            }
            n += 1;
        }
        n
    });
    let mut payload = 0u64;
    for i in 0..2_000u64 {
        let bytes = 100 + (i % 7) * 33;
        payload += bytes;
        lossy
            .send(NetMessage::UpdateShip {
                object: (i % 16) as u32,
                from_version: i,
                to_version: i + 1,
                bytes,
            })
            .unwrap();
    }
    lossy.send(NetMessage::Shutdown).unwrap();
    assert_eq!(reader.join().unwrap(), 2_000, "exactly-once delivery");
    let snap = meter.snapshot();
    assert_eq!(
        snap.bytes_for(TrafficClass::UpdateShip),
        payload,
        "charged cost unchanged"
    );
    let retx = snap.bytes_for(TrafficClass::Retransmit);
    assert!(retx > 0, "20% loss must cost retransmissions");
    assert!(
        (retx as f64) < payload as f64,
        "overhead bounded: p/(1-p) of payload in expectation"
    );
    assert_eq!(snap.charged_total(), payload, "retransmit is not charged");
}
