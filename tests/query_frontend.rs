//! Cross-crate integration: the SQL frontend feeding the decoupling
//! framework end-to-end.

use delta::core::{simulate, NoCache, SimOptions, VCover};
use delta::htm::Partition;
use delta::query::{Compiler, QueryError, Schema};
use delta::storage::{ObjectCatalog, ObjectId, SpatialMapper};
use delta::workload::{Event, SkyModel, Trace, UpdateEvent};

fn world(objects: usize) -> (ObjectCatalog, Compiler) {
    let sky = SkyModel::sdss_like(7, 12);
    let mut partition = Partition::adaptive(|t| t.solid_angle(), objects);
    partition.reweight(|t| sky.trixel_mass(t));
    let catalog =
        ObjectCatalog::from_partition(&partition, 80_000_000_000, 5_000_000, 9_000_000_000);
    let mapper = SpatialMapper::new(partition);
    (
        catalog,
        Compiler::new(Schema::sdss(), sky, mapper).with_samples(128),
    )
}

#[test]
fn compiled_queries_drive_the_simulator() {
    let (catalog, compiler) = world(32);
    let sqls = [
        "SELECT * FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 2.0)",
        "SELECT ra, dec FROM PhotoObj WHERE RECT(10, -20, 40, 10) AND g < 20",
        "SELECT COUNT(*) FROM PhotoObj",
        "SELECT * FROM PhotoObj WHERE NEIGHBORS(200.0, -30.0, 0.3) WITH TOLERANCE 5",
    ];
    let mut events = Vec::new();
    let mut seq = 0u64;
    for round in 0..50 {
        for sql in sqls {
            let ev = compiler.compile(sql).expect("compiles").into_event(seq);
            assert!(!ev.objects.is_empty(), "B(q) must be non-empty for {sql}");
            assert!(ev.result_bytes > 0);
            events.push(Event::Query(ev));
            seq += 1;
        }
        events.push(Event::Update(UpdateEvent {
            seq,
            object: ObjectId((round % 32) as u32),
            bytes: 100_000,
        }));
        seq += 1;
    }
    let trace = Trace { events };
    let opts = SimOptions::with_cache_fraction(&catalog, 0.3, 50);
    let mut vcover = VCover::new(opts.cache_bytes, 3);
    let r = simulate(&mut vcover, &catalog, &trace, opts);
    assert_eq!(
        r.ledger.shipped_queries + r.ledger.local_answers,
        (sqls.len() * 50) as u64,
        "every compiled query satisfied"
    );
    // Same trace under NoCache costs exactly the estimated bytes.
    let mut nc = NoCache;
    let rn = simulate(&mut nc, &catalog, &trace, opts);
    assert_eq!(rn.total().bytes(), trace.total_query_bytes());
}

#[test]
fn footprint_respects_partition_granularity() {
    // The same cone compiled against finer partitions touches more,
    // smaller objects — the granularity knob of Fig. 8(b).
    let mut last_total_objects = 0;
    for objects in [16usize, 64, 256] {
        let (catalog, compiler) = world(objects);
        assert_eq!(catalog.len(), compiler.mapper().partition().len());
        let q = compiler
            .compile("SELECT ra FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 5.0)")
            .unwrap();
        assert!(
            catalog.len() >= last_total_objects,
            "partitions grow: {objects} leaves"
        );
        last_total_objects = catalog.len();
        assert!(!q.objects.is_empty());
        assert!(
            q.objects.len() <= catalog.len(),
            "footprint bounded by catalog"
        );
        for &o in &q.objects {
            assert!((o.index()) < catalog.len(), "object ids in range");
        }
    }
}

#[test]
fn errors_carry_useful_context() {
    let (_, compiler) = world(16);
    match compiler.compile("SELECT ra FROM NoSuchTable") {
        Err(QueryError::Analyze(e)) => assert!(e.to_string().contains("NoSuchTable")),
        other => panic!("expected analyze error, got {other:?}"),
    }
    match compiler.compile("SELEC ra FROM PhotoObj") {
        Err(QueryError::Parse(e)) => assert!(e.to_string().contains("expected")),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn tolerance_clause_relaxes_currency_demands() {
    // Two identical hot queries, one with tolerance: against a stream of
    // updates, the tolerant one can be answered locally without shipping
    // the very latest update range.
    let (catalog, compiler) = world(16);
    let strict = compiler
        .compile("SELECT * FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 1.0)")
        .unwrap()
        .into_event(0);
    let tolerant = compiler
        .compile("SELECT * FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 1.0) WITH TOLERANCE 1000000")
        .unwrap()
        .into_event(0);
    assert_eq!(strict.objects, tolerant.objects);
    assert_eq!(strict.tolerance, 0);
    assert_eq!(tolerant.tolerance, 1_000_000);
    let _ = catalog;
}
