//! Property-based integration tests over randomized mini-workloads:
//! Delta's structural invariants must hold for *any* event sequence, not
//! just the SDSS-like generator's.

use delta::core::{compare_all, SimOptions};
use delta::storage::{ObjectCatalog, ObjectId};
use delta::workload::{Event, QueryEvent, QueryKind, Trace, UpdateEvent};
use proptest::prelude::*;

/// A random but well-formed trace over `n_objects`.
fn arb_trace(n_objects: usize, max_events: usize) -> impl Strategy<Value = (Vec<u64>, Trace)> {
    let sizes = proptest::collection::vec(50u64..5_000, n_objects);
    let events = proptest::collection::vec(
        prop_oneof![
            // Query: subset of objects, result bytes, tolerance.
            (
                proptest::collection::btree_set(0..n_objects as u32, 1..4),
                1u64..2_000,
                prop_oneof![Just(0u64), 1u64..50],
            )
                .prop_map(|(objs, bytes, tol)| {
                    (true, objs.into_iter().collect::<Vec<u32>>(), bytes, tol)
                }),
            // Update: one object, bytes.
            (0..n_objects as u32, 1u64..500).prop_map(|(o, bytes)| (false, vec![o], bytes, 0)),
        ],
        1..max_events,
    );
    (sizes, events).prop_map(|(sizes, evs)| {
        let events = evs
            .into_iter()
            .enumerate()
            .map(|(i, (is_q, objs, bytes, tol))| {
                if is_q {
                    Event::Query(QueryEvent {
                        seq: i as u64,
                        objects: objs.into_iter().map(ObjectId).collect(),
                        result_bytes: bytes,
                        tolerance: tol,
                        kind: QueryKind::Cone,
                    })
                } else {
                    Event::Update(UpdateEvent {
                        seq: i as u64,
                        object: ObjectId(objs[0]),
                        bytes,
                    })
                }
            })
            .collect();
        (sizes, Trace::new(events))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All five policies answer every query, never lose track of costs,
    /// and respect the trivial bounds, on arbitrary workloads.
    #[test]
    fn five_policies_on_arbitrary_traces((sizes, trace) in arb_trace(6, 120)) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let opts = SimOptions { cache_bytes: catalog.total_bytes() / 2, sample_every: 50, link: None };
        let n_queries = trace.n_queries() as u64;
        let reports = compare_all(&catalog, &trace, opts, 5);
        let nocache = reports[0].total().bytes();
        let replica = reports[1].total().bytes();
        prop_assert_eq!(nocache, trace.total_query_bytes());
        prop_assert_eq!(replica, trace.total_update_bytes());
        for r in &reports {
            prop_assert_eq!(
                r.ledger.shipped_queries + r.ledger.local_answers,
                n_queries,
                "{} lost a query", &r.policy
            );
            // Per-mechanism invariants: no policy ships more query bytes
            // than NoCache, and no update range ships twice, so update
            // bytes never exceed Replica's.
            prop_assert!(
                r.ledger.breakdown.query_ship.bytes() <= nocache,
                "{} shipped more query bytes than NoCache", &r.policy
            );
            prop_assert!(
                r.ledger.breakdown.update_ship.bytes() <= replica,
                "{} shipped more update bytes than Replica", &r.policy
            );
        }
    }

    /// VCover with a zero-size cache degenerates to NoCache exactly.
    #[test]
    fn vcover_with_no_cache_is_nocache((sizes, trace) in arb_trace(5, 80)) {
        use delta::core::{simulate, VCover};
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let opts = SimOptions { cache_bytes: 0, sample_every: 50, link: None };
        let mut v = VCover::new(0, 1);
        let r = simulate(&mut v, &catalog, &trace, opts);
        prop_assert_eq!(r.total().bytes(), trace.total_query_bytes());
        prop_assert_eq!(r.ledger.loads, 0);
    }

    /// With an unbounded cache and no updates, VCover converges to
    /// answering hot objects locally: total cost is bounded by query
    /// bytes plus one load per object.
    #[test]
    fn query_only_workload_costs_bounded(
        sizes in proptest::collection::vec(50u64..500, 4),
        picks in proptest::collection::vec((0u32..4, 100u64..1_000), 10..80),
    ) {
        use delta::core::{simulate, VCover};
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let events: Vec<Event> = picks
            .iter()
            .enumerate()
            .map(|(i, &(o, bytes))| Event::Query(QueryEvent {
                seq: i as u64,
                objects: vec![ObjectId(o)],
                result_bytes: bytes,
                tolerance: 0,
                kind: QueryKind::Selection,
            }))
            .collect();
        let trace = Trace::new(events);
        let opts = SimOptions { cache_bytes: catalog.total_bytes() * 2, sample_every: 50, link: None };
        let mut v = VCover::new(opts.cache_bytes, 2);
        let r = simulate(&mut v, &catalog, &trace, opts);
        let bound = trace.total_query_bytes() + catalog.total_bytes();
        prop_assert!(r.total().bytes() <= bound,
            "cost {} exceeds query bytes + all loads {}", r.total().bytes(), bound);
        prop_assert_eq!(r.ledger.breakdown.update_ship.bytes(), 0);
    }
}
