//! End-to-end integration: generate a survey, run all five policies,
//! check the paper's structural invariants and orderings.

use delta::core::{compare_all, simulate, NoCache, Replica, SimOptions, SimReport, VCover};
use delta::workload::{SyntheticSurvey, WorkloadConfig};

fn survey(n: usize, objects: usize) -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = n;
    cfg.n_updates = n;
    cfg.target_objects = objects;
    SyntheticSurvey::generate(&cfg)
}

#[test]
fn yardstick_totals_are_closed_form() {
    let s = survey(1_500, 16);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 500);
    // NoCache total == sum of query result bytes, independent of anything.
    let mut nc = NoCache;
    let rn = simulate(&mut nc, &s.catalog, &s.trace, opts);
    assert_eq!(rn.total().bytes(), s.trace.total_query_bytes());
    // Replica total == sum of update bytes.
    let mut rp = Replica;
    let rr = simulate(&mut rp, &s.catalog, &s.trace, opts);
    assert_eq!(rr.total().bytes(), s.trace.total_update_bytes());
}

#[test]
fn every_policy_satisfies_every_query() {
    let s = survey(1_500, 16);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 500);
    for r in compare_all(&s.catalog, &s.trace, opts, 7) {
        assert_eq!(
            r.ledger.shipped_queries + r.ledger.local_answers,
            s.trace.n_queries() as u64,
            "{} lost queries",
            r.policy
        );
        // Non-negative, monotone series ending at the total.
        assert!(r
            .series
            .windows(2)
            .all(|w| w[0].cumulative_bytes <= w[1].cumulative_bytes));
        assert_eq!(r.series.last().unwrap().cumulative_bytes, r.total().bytes());
    }
}

#[test]
fn vcover_never_loses_to_doing_nothing_plus_everything() {
    // A trivial upper bound: VCover's total is at most NoCache + Replica
    // combined (it could always have shipped everything).
    let s = survey(2_000, 32);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 500);
    let reports = compare_all(&s.catalog, &s.trace, opts, 11);
    let by_name = |n: &str| reports.iter().find(|r| r.policy == n).unwrap();
    let vcover = by_name("VCover").total().bytes();
    let nocache = by_name("NoCache").total().bytes();
    let replica = by_name("Replica").total().bytes();
    assert!(
        vcover <= nocache + replica,
        "VCover {vcover} worse than NoCache+Replica {}",
        nocache + replica
    );
}

#[test]
fn cache_capacity_respected_throughout() {
    // Run VCover step by step and assert the store never exceeds capacity
    // at event boundaries (transient overshoot within an event is shed by
    // rebalance before the handler returns).
    use delta::core::CachingPolicy;
    use delta::core::SimContext;
    use delta::storage::{CacheStore, Repository};
    use delta::workload::Event;

    let s = survey(1_200, 16);
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.25, 500);
    let mut repo = Repository::new(s.catalog.clone());
    let mut cache = CacheStore::new(opts.cache_bytes);
    let mut ledger = delta::core::CostLedger::default();
    let mut v = VCover::new(opts.cache_bytes, 3);
    for e in s.trace.iter() {
        match e {
            Event::Update(u) => {
                repo.apply_update(u.object, u.bytes, u.seq);
                cache.invalidate(u.object);
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, u.seq);
                v.on_update(u, &mut ctx);
            }
            Event::Query(q) => {
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, q.seq);
                v.on_query(q, &mut ctx);
            }
        }
        assert!(
            cache.used() <= cache.capacity(),
            "cache over capacity after event {}",
            e.seq()
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    let s1 = survey(1_000, 16);
    let s2 = survey(1_000, 16);
    assert_eq!(s1.trace, s2.trace);
    let opts = SimOptions::with_cache_fraction(&s1.catalog, 0.3, 250);
    let run = |s: &SyntheticSurvey| -> Vec<u64> {
        compare_all(&s.catalog, &s.trace, opts, 99)
            .into_iter()
            .map(|r: SimReport| r.total().bytes())
            .collect()
    };
    assert_eq!(run(&s1), run(&s2));
}

#[test]
fn trace_round_trips_through_disk() {
    let s = survey(500, 16);
    let dir = std::env::temp_dir().join("delta_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.jsonl");
    delta::workload::write_jsonl(&path, &s.catalog, &s.trace, "integration").unwrap();
    let (cat2, trace2) = delta::workload::read_jsonl(&path).unwrap();
    assert_eq!(trace2, s.trace);
    // Replay from the file gives identical results.
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 250);
    let mut v1 = VCover::new(opts.cache_bytes, 5);
    let r1 = simulate(&mut v1, &s.catalog, &s.trace, opts);
    let mut v2 = VCover::new(opts.cache_bytes, 5);
    let r2 = simulate(&mut v2, &cat2, &trace2, opts);
    assert_eq!(r1.total(), r2.total());
    std::fs::remove_file(&path).ok();
}
