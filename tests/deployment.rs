//! Cross-crate integration: the threaded client/cache/server deployment
//! must agree with the in-process simulator byte-for-byte, for every
//! policy, and the WAN meter must reconcile with the ledger.

use delta::core::deploy::run_deployed;
use delta::core::{
    simulate, Benefit, BenefitConfig, CachingPolicy, NoCache, Replica, SOptimal, SimOptions, VCover,
};
use delta::net::TrafficClass;
use delta::workload::{SyntheticSurvey, WorkloadConfig};

fn survey() -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 800;
    cfg.n_updates = 800;
    SyntheticSurvey::generate(&cfg)
}

fn check_policy<P: CachingPolicy + Send>(mut mk: impl FnMut() -> P) {
    let s = survey();
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 400);
    let mut p_sim = mk();
    let sim = simulate(&mut p_sim, &s.catalog, &s.trace, opts);
    let mut p_dep = mk();
    let (dep, wan) = run_deployed(&mut p_dep, &s.catalog, &s.trace, opts);

    assert_eq!(sim.total().bytes(), dep.total().bytes(), "{}", sim.policy);
    assert_eq!(sim.ledger.breakdown, dep.ledger.breakdown, "{}", sim.policy);
    assert_eq!(
        dep.total().bytes(),
        wan.charged_total(),
        "{} meter",
        sim.policy
    );
    assert_eq!(
        wan.bytes_for(TrafficClass::QueryShip),
        dep.ledger.breakdown.query_ship.bytes()
    );
    assert_eq!(
        wan.bytes_for(TrafficClass::UpdateShip),
        dep.ledger.breakdown.update_ship.bytes()
    );
    assert_eq!(
        wan.bytes_for(TrafficClass::ObjectLoad),
        dep.ledger.breakdown.load.bytes()
    );
}

#[test]
fn deployed_nocache_matches() {
    check_policy(|| NoCache);
}

#[test]
fn deployed_replica_matches() {
    check_policy(|| Replica);
}

#[test]
fn deployed_vcover_matches() {
    let s = survey();
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 400);
    check_policy(|| VCover::new(opts.cache_bytes, 17));
}

#[test]
fn deployed_benefit_matches() {
    let s = survey();
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 400);
    check_policy(|| {
        Benefit::new(
            opts.cache_bytes,
            BenefitConfig {
                window: 200,
                alpha: 0.5,
            },
        )
    });
}

#[test]
fn deployed_soptimal_matches() {
    let s = survey();
    let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 400);
    check_policy(|| SOptimal::plan(&s.catalog, &s.trace, opts.cache_bytes));
}
