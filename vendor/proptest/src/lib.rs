//! Offline mini-proptest.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the slice of proptest this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, `collection::vec` / `collection::btree_set`,
//! `option::of`, `sample::select`, `bool::ANY`, [`Just`], the
//! [`prop_oneof!`] union, and the [`proptest!`] / [`prop_assert!`]
//! macros. Generation is deterministic per test (seeded from the test
//! name); there is no shrinking — a failing case panics with the
//! generated inputs' `Debug` rendering instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runtime configuration of a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error a property body can raise via `?` (real proptest's early-exit
/// channel; here it simply fails the test with its message).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl TestCaseError {
    /// A failed test case with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// A value generator. Unlike real proptest there is no shrinking; a
/// strategy is just a deterministic sampling recipe.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform union of same-valued strategies (backs [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// String strategies from regex-like patterns (proptest's `&str`
/// strategy). Supports the subset this workspace's tests use: literals,
/// `[...]` classes with ranges, `(a|b|c)` groups, `\PC` (any printable
/// character), and the `*`, `+`, `?`, `{m,n}` repetitions.
pub mod string {
    use super::*;

    #[derive(Clone, Debug)]
    enum Node {
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Class(Vec<char>),
        Lit(char),
        Printable,
        Repeat(Box<Node>, usize, usize),
    }

    fn parse_alt(chars: &[char], mut i: usize, depth: usize) -> (Node, usize) {
        let mut alts = Vec::new();
        let (first, mut j) = parse_seq(chars, i, depth);
        alts.push(first);
        while j < chars.len() && chars[j] == '|' {
            i = j + 1;
            let (next, k) = parse_seq(chars, i, depth);
            alts.push(next);
            j = k;
        }
        if alts.len() == 1 {
            (alts.pop().unwrap(), j)
        } else {
            (Node::Alt(alts), j)
        }
    }

    fn parse_seq(chars: &[char], mut i: usize, depth: usize) -> (Node, usize) {
        let mut seq = Vec::new();
        while i < chars.len() {
            let c = chars[i];
            if c == '|' || (c == ')' && depth > 0) {
                break;
            }
            let (atom, j) = parse_atom(chars, i, depth);
            let (node, k) = parse_postfix(atom, chars, j);
            seq.push(node);
            i = k;
        }
        (Node::Seq(seq), i)
    }

    fn parse_atom(chars: &[char], i: usize, depth: usize) -> (Node, usize) {
        match chars[i] {
            '(' => {
                let (node, j) = parse_alt(chars, i + 1, depth + 1);
                assert!(chars.get(j) == Some(&')'), "unbalanced group in pattern");
                (node, j + 1)
            }
            '[' => {
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < chars.len() && chars[j] != ']' {
                    if chars[j] == '\\' {
                        j += 1;
                        set.push(chars[j]);
                        j += 1;
                    } else if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid class range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(chars.get(j) == Some(&']'), "unbalanced class in pattern");
                (Node::Class(set), j + 1)
            }
            '\\' => {
                // `\PC` = not-category-C = printable; other escapes are
                // taken literally.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    (Node::Printable, i + 3)
                } else {
                    (Node::Lit(chars[i + 1]), i + 2)
                }
            }
            '.' => (Node::Printable, i + 1),
            c => (Node::Lit(c), i + 1),
        }
    }

    fn parse_postfix(atom: Node, chars: &[char], i: usize) -> (Node, usize) {
        match chars.get(i) {
            Some('*') => (Node::Repeat(Box::new(atom), 0, 8), i + 1),
            Some('+') => (Node::Repeat(Box::new(atom), 1, 8), i + 1),
            Some('?') => (Node::Repeat(Box::new(atom), 0, 1), i + 1),
            Some('{') => {
                let close = (i..chars.len())
                    .find(|&j| chars[j] == '}')
                    .expect("unclosed {m,n}");
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                };
                (Node::Repeat(Box::new(atom), min, max), close + 1)
            }
            _ => (atom, i),
        }
    }

    fn generate_node(node: &Node, rng: &mut StdRng, out: &mut String) {
        match node {
            Node::Seq(items) => {
                for n in items {
                    generate_node(n, rng, out);
                }
            }
            Node::Alt(alts) => {
                let idx = rng.random_range(0..alts.len());
                generate_node(&alts[idx], rng, out);
            }
            Node::Class(set) => {
                out.push(*set.as_slice().choose(rng).expect("non-empty class"));
            }
            Node::Lit(c) => out.push(*c),
            Node::Printable => {
                // Mostly printable ASCII, sometimes further afield, so the
                // parser-totality tests see multi-byte input too.
                if rng.random_bool(0.9) {
                    out.push(char::from_u32(rng.random_range(0x20..0x7Fu32)).unwrap());
                } else {
                    out.push(['é', 'Ω', '→', '星', '🌌'][rng.random_range(0..5usize)]);
                }
            }
            Node::Repeat(inner, min, max) => {
                let n = rng.random_range(*min..=*max);
                for _ in 0..n {
                    generate_node(inner, rng, out);
                }
            }
        }
    }

    /// A compiled pattern strategy.
    #[derive(Clone, Debug)]
    pub struct PatternStrategy {
        root: Node,
    }

    /// Compiles a regex-like pattern into a string strategy.
    pub fn pattern(p: &str) -> PatternStrategy {
        let chars: Vec<char> = p.chars().collect();
        let (root, consumed) = parse_alt(&chars, 0, 0);
        assert_eq!(
            consumed,
            chars.len(),
            "trailing characters in pattern {p:?}"
        );
        PatternStrategy { root }
    }

    impl Strategy for PatternStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            generate_node(&self.root, rng, &mut out);
            out
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        string::pattern(self).generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes acceptable to [`vec`] / [`btree_set`]: an exact `usize` or a
    /// (half-open or inclusive) range.
    pub trait IntoSizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors with lengths drawn from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.len.sample_len(rng);
            let mut out = BTreeSet::new();
            // Duplicates may make the target unreachable (tiny element
            // domains); bail out after a bounded number of attempts.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Sets with sizes drawn from `len` (best-effort on tiny domains).
    pub fn btree_set<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> BTreeSetStrategy<S, L> {
        BTreeSetStrategy { element, len }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Optional values of `element`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Sampling strategies.
pub mod sample {
    use super::*;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0
                .as_slice()
                .choose(rng)
                .expect("select over empty list")
                .clone()
        }
    }

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// Boolean strategies.
pub mod bool {
    use super::*;

    /// Strategy for a fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut StdRng) -> core::primitive::bool {
            rng.random_bool(0.5)
        }
    }

    /// A fair coin.
    pub const ANY: Any = Any;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop::` alias module (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// FNV-1a over the test name: a stable per-test seed, so failures
/// reproduce without configuration.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Creates the RNG for one property run.
pub fn test_rng(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("property {} failed on case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform union of strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A,
        B(u32),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(1u64..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..100).contains(&x)));
        }

        #[test]
        fn oneof_and_flat_map(k in prop_oneof![
            Just(Kind::A),
            (1u32..5).prop_map(Kind::B),
        ], n in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n))) {
            match k {
                Kind::A => {}
                Kind::B(x) => prop_assert!((1..5).contains(&x)),
            }
            prop_assert!(!n.is_empty() && n.len() < 4);
        }

        #[test]
        fn sets_and_options(
            s in prop::collection::btree_set(0u32..4, 1..4),
            o in prop::option::of(0i32..3),
            pick in prop::sample::select(vec!["x", "y"]),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!s.is_empty() && s.len() < 4);
            if let Some(v) = o { prop_assert!(v < 3); }
            prop_assert!(pick == "x" || pick == "y");
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        use rand::RngExt;
        assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
    }
}
