//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the three distributions the workload reconstruction samples —
//! [`LogNormal`] (Box–Muller), [`Pareto`] (inverse CDF) and [`Zipf`]
//! (tabulated CDF with binary search) — over the vendored `rand` RNG.

#![forbid(unsafe_code)]

use rand::RngCore;
use std::marker::PhantomData;

/// Types that can produce samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z` standard normal.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal<F = f64> {
    mu: f64,
    sigma: f64,
    _marker: PhantomData<F>,
}

impl LogNormal<f64> {
    /// Creates the distribution from the mean and standard deviation of
    /// the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError("lognormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal {
            mu,
            sigma,
            _marker: PhantomData,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 nudged away from zero so ln() stays finite.
        let u1 = rng.next_f64().max(1e-300);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto distribution with scale `x_m` and shape `a`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto<F = f64> {
    scale: f64,
    shape: f64,
    _marker: PhantomData<F>,
}

impl Pareto<f64> {
    /// Creates the distribution; both parameters must be positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if !scale.is_finite() || scale <= 0.0 || !shape.is_finite() || shape <= 0.0 {
            return Err(ParamError("pareto requires positive scale and shape"));
        }
        Ok(Pareto {
            scale,
            shape,
            _marker: PhantomData,
        })
    }
}

impl Distribution<f64> for Pareto<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on u in (0, 1].
        let u = (1.0 - rng.next_f64()).max(1e-300);
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Zipf distribution over `{1, .., n}` with exponent `s`: `P(k) ∝ k^-s`.
///
/// Sampled via a precomputed CDF and binary search, which is exact and
/// plenty fast for the catalog/hotspot sizes this workspace uses.
#[derive(Clone, Debug)]
pub struct Zipf<F = f64> {
    cdf: Vec<f64>,
    _marker: PhantomData<F>,
}

impl Zipf<f64> {
    /// Creates the distribution over `{1, .., n.round()}`.
    pub fn new(n: f64, s: f64) -> Result<Self, ParamError> {
        let count = n.round();
        if !(1.0..=4_000_000.0).contains(&count) {
            return Err(ParamError("zipf requires 1 <= n <= 4e6"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError("zipf requires finite s >= 0"));
        }
        let count = count as usize;
        let mut cdf = Vec::with_capacity(count);
        let mut acc = 0.0;
        for k in 1..=count {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf {
            cdf,
            _marker: PhantomData,
        })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_is_positive_and_centered() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let v = d.sample(&mut rng);
            assert!(v > 0.0);
            sum += v.ln();
        }
        assert!((sum / 20_000.0).abs() < 0.02, "mean of ln should be ~mu=0");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(2.0, 1.6).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn zipf_favours_small_ranks() {
        let d = Zipf::new(6.0, 1.35).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 6];
        for _ in 0..30_000 {
            let v = d.sample(&mut rng);
            assert!((1.0..=6.0).contains(&v));
            counts[v as usize - 1] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Zipf::new(0.0, 1.0).is_err());
    }
}
