//! Offline mini-criterion.
//!
//! A tiny stand-in for the criterion benchmarking harness so the
//! workspace's `benches/` compile and run without crates.io access. It
//! keeps criterion's API shape (`Criterion`, groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, the `criterion_group!`
//! / `criterion_main!` macros) but the measurement is deliberately simple:
//! a short calibration pass picks an iteration count, then the mean
//! wall-clock time per iteration is printed. No statistics, plots or
//! baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Rough time budget for one benchmark (calibration included).
const TARGET: Duration = Duration::from_millis(300);

/// Throughput annotation; printed alongside the timing when set.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Calibrates an iteration count, then times `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: run once to estimate cost.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (ns / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 / (ns / 1e9) / 1e6)
        }
        None => String::new(),
    };
    println!("{name:<40} {:>12}/iter{rate}", human_time(ns));
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the mini harness auto-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the mini harness auto-calibrates.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running benchmark groups; ignores harness arguments such
/// as `--bench` so `cargo bench` filters don't break.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_function("in_group", |b| {
            b.iter(|| black_box((0..10u64).sum::<u64>()))
        });
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
