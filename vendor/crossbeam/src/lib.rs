//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the slice this workspace uses: `channel::unbounded` MPMC
//! channels with blocking / timeout / non-blocking receives, and a
//! [`select!`] macro. The channel is a `Mutex<VecDeque>` + `Condvar`
//! (plenty for the threaded deployment's lockstep traffic), and
//! `select!` polls its arms with a short sleep instead of registering
//! wakeups — simple, correct, and fast enough for test workloads.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        cond: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (messages go to whichever receiver takes
    /// them first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered: no receiver is left.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting (senders still connected).
        Empty,
        /// No message waiting and no sender left.
        Disconnected,
    }

    /// Why a timed receive returned nothing.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// No message waiting and no sender left.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Nobody can receive these anymore; drop them now rather
                // than when the last Sender goes away. Senders queued
                // inside these messages (reply channels) must die with
                // them, or their receivers would block forever.
                st.items.clear();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            self.inner.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cond.wait(st).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.inner.cond.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            if let Some(v) = st.items.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// [`select!`] support: `Some` when this channel would complete a
        /// receive right now (with a message, or with disconnection).
        #[doc(hidden)]
        pub fn select_ready(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }
    }

    /// Waits on several channels, running the first ready arm.
    ///
    /// Supports the `recv(receiver) -> msg => { .. }` arm form. Arms are
    /// polled in order with a short sleep in between; a disconnected
    /// channel is ready with `Err(RecvError)`, like crossbeam's.
    #[macro_export]
    macro_rules! select {
        ($(recv($rx:expr) -> $msg:pat => $body:block)+) => {{
            let mut __empty_polls: u32 = 0;
            '__select: loop {
                $(
                    if let ::core::option::Option::Some(__ready) = ($rx).select_ready() {
                        let $msg = __ready;
                        break '__select ($body);
                    }
                )+
                // Spin briefly first — in lockstep pipelines the next
                // message lands within microseconds — then back off to
                // sleeping, so the loop is fast when hot and kind to the
                // CPU when idle.
                __empty_polls = __empty_polls.saturating_add(1);
                if __empty_polls < 64 {
                    ::std::thread::yield_now();
                } else {
                    ::std::thread::sleep(::core::time::Duration::from_micros(50));
                }
            }
        }};
    }

    pub use crate::select;
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnection_both_ways() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let mut got = 0;
        while let Ok(v) = rx.recv() {
            assert_eq!(v, got);
            got += 1;
        }
        h.join().unwrap();
        assert_eq!(got, 1000);
    }

    #[test]
    fn select_prefers_ready_channel() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(7).unwrap();
        let got = crate::select! {
            recv(rx_a) -> msg => { msg.unwrap() }
            recv(rx_b) -> msg => { msg.unwrap_or(0) }
        };
        assert_eq!(got, 7);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx_a, rx_a) = unbounded::<u32>();
        drop(tx_a);
        let got = crate::select! {
            recv(rx_a) -> msg => { msg.is_err() }
        };
        assert!(got);
    }
}
