//! Recursive-descent JSON parser for the vendored `serde_json`.

use crate::{Error, Value};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`]; trailing
/// non-whitespace is an error.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad \\u escape"))?;
            n = n * 16 + v;
            self.pos += 1;
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character. The input came in as a
                    // &str, so boundaries are valid by construction; the
                    // leading byte gives the width, and only that many
                    // bytes are re-validated (keeping parsing O(n)).
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
