//! Offline stand-in for `serde_json`.
//!
//! A self-contained JSON implementation covering what this workspace
//! needs: a [`Value`] model, a strict parser ([`from_str`]), compact and
//! pretty writers ([`to_writer`], [`to_string_pretty`]), and a [`json!`]
//! macro. Because the vendored `serde` is derive-free, types that really
//! serialize implement [`ToJson`] / [`FromJson`] by hand — a few lines
//! each, and the on-disk format stays the same as serde's external
//! tagging for the enums involved.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

mod parse;

pub use parse::from_str_value;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, &mut out, 0);
        out
    }
}

/// Error raised by parsing or conversion.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait ToJson {
    /// The value representation.
    fn to_json(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Rebuilds the type, or explains why the value does not fit.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::UInt(n) => <$t>::try_from(n).map_err(|_| Error::msg("integer out of range")),
                    Value::Int(n) => <$t>::try_from(n).map_err(|_| Error::msg("integer out of range")),
                    _ => Err(Error::msg("expected integer")),
                }
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(impl From<$t> for Value { fn from(v: $t) -> Value { Value::UInt(v as u64) } })*};
}

value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_int {
    ($($t:ty),*) => {$(impl From<$t> for Value {
        fn from(v: $t) -> Value {
            if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v as i64) }
        }
    })*};
}

value_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

/// Serializes `value` compactly into a writer.
pub fn to_writer<W: std::io::Write, T: ToJson + ?Sized>(
    mut writer: W,
    value: &T,
) -> std::io::Result<()> {
    writer.write_all(value.to_json().to_json_string().as_bytes())
}

/// Serializes `value` compactly into a string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_json_string())
}

/// Serializes `value` as indented JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_json_string_pretty())
}

/// Parses a JSON document into `T`.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    T::from_json(&parse::from_str_value(s)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{}` is Rust's shortest round-trip float formatting; force a
        // decimal point so the value reads back as a float.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_number(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                write_pretty(item, out, indent + 2);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push(']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 2);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push(' ');
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Builds a [`Value`] from JSON-like syntax: objects with literal string
/// keys, arrays, `null`, and arbitrary Rust expressions as leaves.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {
        $crate::json_object_members!(@acc [] $($tt)*)
    };
    ([ $($tt:tt)* ]) => {
        $crate::json_array_items!(@acc [] $($tt)*)
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs into
/// one `vec![..]` accumulator.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_members {
    (@acc [$($acc:tt)*]) => {
        $crate::Value::Object(vec![$($acc)*])
    };
    (@acc [$($acc:tt)*] $k:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object_members!(@acc [$($acc)* ($k.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $k:literal : { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object_members!(@acc [$($acc)* ($k.to_string(), $crate::json!({ $($v)* })),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $k:literal : [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object_members!(@acc [$($acc)* ($k.to_string(), $crate::json!([ $($v)* ])),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $k:literal : $v:expr , $($rest:tt)*) => {
        $crate::json_object_members!(@acc [$($acc)* ($k.to_string(), $crate::Value::from($v)),] $($rest)*)
    };
    (@acc [$($acc:tt)*] $k:literal : $v:expr) => {
        $crate::json_object_members!(@acc [$($acc)* ($k.to_string(), $crate::Value::from($v)),])
    };
}

/// Implementation detail of [`json!`]: munches array elements into one
/// `vec![..]` accumulator.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_items {
    (@acc [$($acc:tt)*]) => {
        $crate::Value::Array(vec![$($acc)*])
    };
    (@acc [$($acc:tt)*] null $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::json!({ $($v)* }),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::json!([ $($v)* ]),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $v:expr , $($rest:tt)*) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::Value::from($v),] $($rest)*)
    };
    (@acc [$($acc:tt)*] $v:expr) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::Value::from($v),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = json!({
            "version": 1u32,
            "sizes": [100u64, 200u64, 300u64],
            "nested": { "pi": 3.5, "ok": true, "none": null },
            "name": "trace",
        });
        let s = v.to_json_string();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(
            back.get("nested").unwrap().get("pi").unwrap().as_f64(),
            Some(3.5)
        );
        assert_eq!(back.get("name").unwrap().as_str(), Some("trace"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\te\u{1F600}\u{01}".to_string());
        let back: Value = from_str(&v.to_json_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_preserve_integers() {
        let back: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(back, Value::UInt(u64::MAX));
        let back: Value = from_str("-42").unwrap();
        assert_eq!(back, Value::Int(-42));
        let back: Value = from_str("2.5e3").unwrap();
        assert_eq!(back, Value::Float(2500.0));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": [1u32, 2u32], "b": { "c": "x" } });
        let back: Value = from_str(&v.to_json_string_pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trips() {
        let xs = vec![1u64, 5, 9];
        let s = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
        let pair = (0.5f64, "hi".to_string());
        assert_eq!(to_string(&pair).unwrap(), "[0.5,\"hi\"]");
    }

    #[test]
    fn parse_errors_reported() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
