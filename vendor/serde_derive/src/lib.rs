//! No-op derive macros backing the offline `serde` stub.
//!
//! The stub `serde` crate blanket-implements its marker traits, so these
//! derives only need to exist for `#[derive(Serialize, Deserialize)]`
//! attributes to parse; they expand to nothing. Types that genuinely
//! serialize implement `serde_json::ToJson`/`FromJson` by hand.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
