//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of `rand`'s API it actually uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng`] and [`RngExt`] traits, and [`seq::SliceRandom`] for
//! Fisher–Yates shuffles. Streams are fully determined by the seed, which
//! is all the workload reconstruction requires.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Everything else derives from this.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++, seeded via SplitMix64.
    ///
    /// Not cryptographically secure — it only needs to be fast and
    /// reproducible across runs for workload generation and simulation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and choosing, implemented for every slice.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(5..17u32);
            assert!((5..17).contains(&v));
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
