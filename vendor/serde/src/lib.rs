//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this stub keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compiling
//! without pulling in the real framework: [`Serialize`] and
//! [`Deserialize`] are marker traits blanket-implemented for every type,
//! and the re-exported derives expand to nothing. Code that actually
//! reads or writes JSON uses the vendored `serde_json`'s `ToJson` /
//! `FromJson` traits, which are implemented by hand where needed.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (blanket-implemented; see crate docs).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented; see crate docs).
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
