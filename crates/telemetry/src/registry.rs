//! A named registry of counters, gauges and histograms, plus the
//! mergeable [`TelemetrySnapshot`] it produces.
//!
//! Registration (cold path) takes a mutex; the handles it returns are
//! plain `Arc`s whose operations are single atomic instructions. To
//! keep hot shards and connections off each other's cache lines, a
//! name may be backed by *many* instances: [`Telemetry::counter_handle`]
//! and [`Telemetry::histogram_handle`] mint a private instance per
//! caller, and [`Telemetry::snapshot`] folds all instances of a name
//! back together. Everything here is strictly observational — nothing
//! in the registry feeds back into engine state.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing count. Merges by addition.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written level (an epoch, a hosted-shard count). Merges by
/// maximum — the only fold that makes sense for levels reported by
/// peers that disagree only through staleness.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Vec<Arc<Counter>>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Vec<Arc<Histogram>>>,
}

/// The per-process metric registry. One lives in the server's shared
/// state and one in the router's; scrapes and dumps read it through
/// [`Telemetry::snapshot`].
#[derive(Default)]
pub struct Telemetry {
    inner: Mutex<Inner>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// The shared instance of counter `name` (created on first use).
    /// All callers increment the same atomic — fine for cold counters.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.counters.entry(name.to_string()).or_default();
        if slot.is_empty() {
            slot.push(Arc::new(Counter::default()));
        }
        Arc::clone(&slot[0])
    }

    /// A *private* instance of counter `name`: the caller gets its own
    /// atomic, and the snapshot sums every instance. Use for hot-path
    /// counters bumped from many threads.
    pub fn counter_handle(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        let c = Arc::new(Counter::default());
        inner
            .counters
            .entry(name.to_string())
            .or_default()
            .push(Arc::clone(&c));
        c
    }

    /// The gauge `name` (created on first use). Gauges are levels, so
    /// there is exactly one instance per name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The shared instance of histogram `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.histograms.entry(name.to_string()).or_default();
        if slot.is_empty() {
            slot.push(Arc::new(Histogram::new()));
        }
        Arc::clone(&slot[0])
    }

    /// A *private* instance of histogram `name` — a per-shard handle
    /// whose buckets no other shard touches. The snapshot merges every
    /// instance of the name.
    pub fn histogram_handle(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        let h = Arc::new(Histogram::new());
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .push(Arc::clone(&h));
        h
    }

    /// A point-in-time copy of every metric, instances of a name folded
    /// together (counters sum, histograms merge).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().unwrap();
        let counters = inner
            .counters
            .iter()
            .map(|(name, instances)| {
                (
                    name.clone(),
                    instances
                        .iter()
                        .map(|c| c.get())
                        .fold(0u64, u64::saturating_add),
                )
            })
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(name, instances)| {
                let mut merged = HistogramSnapshot::default();
                for h in instances {
                    merged.merge(&h.snapshot());
                }
                (name.clone(), merged)
            })
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Everything a node knows about its own timing and wire activity, as
/// one mergeable value: this is the payload of the protocol's
/// `TelemetryOk` frame, and what the router folds cluster-wide.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` in name order. Merge by addition.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` in name order. Merge by maximum.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` in name order. Merge bucket-wise.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// Folds `other` into `self` by name: counters add, gauges take the
    /// maximum, histograms merge bucket-wise. Names present on either
    /// side survive, so nodes with different roles merge cleanly.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, v) in &other.counters {
            let e = counters.entry(name.clone()).or_insert(0);
            *e = e.saturating_add(*v);
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, u64> = self.gauges.drain(..).collect();
        for (name, v) in &other.gauges {
            let e = gauges.entry(name.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (name, h) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(h);
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// The value of counter `name`, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as the table `delta-serverd --telemetry-dump`
    /// consumers and operators read: counters and gauges first, then one
    /// row per histogram with count/mean/percentiles/max. Histogram
    /// names ending in `_ns` hold nanoseconds and render in µs.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<40} {:>16}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40} {v:>16}");
            }
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<40} {v:>16}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<40} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p90", "p99", "p999", "max"
            );
            for (name, h) in &self.histograms {
                // A `_ns` segment may sit mid-name when a class or node
                // suffix follows (`shard.apply_ns.query`,
                // `router.fanout_ns.node0`).
                let in_us = name.ends_with("_ns") || name.contains("_ns.");
                let scale = |v: u64| -> String {
                    if in_us {
                        format!("{:.1}", v as f64 / 1_000.0)
                    } else {
                        v.to_string()
                    }
                };
                let _ = writeln!(
                    out,
                    "{:<40} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    scale(h.mean()),
                    scale(h.p50()),
                    scale(h.p90()),
                    scale(h.p99()),
                    scale(h.p999()),
                    scale(h.max),
                );
            }
        }
        out
    }

    /// Renders the snapshot as one JSON document (the `--telemetry-dump`
    /// JSONL line). Histograms are summarized to their percentiles;
    /// buckets stay off the dump.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", esc(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", esc(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                esc(name),
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max,
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_fold_back_together() {
        let t = Telemetry::new();
        let a = t.counter_handle("ops");
        let b = t.counter_handle("ops");
        a.add(3);
        b.add(4);
        t.counter("cold").inc();
        t.gauge("epoch").set(7);
        let h1 = t.histogram_handle("lat_ns");
        let h2 = t.histogram_handle("lat_ns");
        h1.record(100);
        h2.record(200);
        let s = t.snapshot();
        assert_eq!(s.counter("ops"), 7);
        assert_eq!(s.counter("cold"), 1);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauges, vec![("epoch".to_string(), 7)]);
        assert_eq!(s.histogram("lat_ns").unwrap().count, 2);
    }

    #[test]
    fn shared_counter_is_one_instance() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.inc();
        b.inc();
        assert_eq!(t.snapshot().counter("x"), 2);
        assert_eq!(a.get(), 2, "both handles see the same atomic");
    }

    #[test]
    fn snapshot_merge_semantics() {
        let mut a = TelemetrySnapshot {
            counters: vec![("c".into(), 1), ("only_a".into(), 5)],
            gauges: vec![("g".into(), 3)],
            histograms: vec![],
        };
        let b = TelemetrySnapshot {
            counters: vec![("c".into(), 2)],
            gauges: vec![("g".into(), 9), ("only_b".into(), 1)],
            histograms: vec![],
        };
        a.merge(&b);
        assert_eq!(a.counter("c"), 3, "counters add");
        assert_eq!(a.counter("only_a"), 5);
        assert_eq!(
            a.gauges,
            vec![("g".to_string(), 9), ("only_b".to_string(), 1)],
            "gauges take the max and keep both sides' names"
        );
    }

    #[test]
    fn json_and_table_render() {
        let t = Telemetry::new();
        t.counter("frames_in").add(10);
        t.histogram("apply_ns").record(1500);
        let s = t.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"frames_in\":10"), "{json}");
        assert!(json.contains("\"apply_ns\""), "{json}");
        let table = s.render_table();
        assert!(table.contains("frames_in"));
        assert!(table.contains("apply_ns"));
    }
}
