//! # delta_telemetry — observability primitives for the Delta service
//!
//! Hand-rolled (the workspace vendors every dependency, and a metrics
//! stack is small enough to own): a log-linear [`Histogram`] with fixed
//! atomic buckets for hot-path latency recording, and a named
//! [`Telemetry`] registry of counters/gauges/histograms with
//! contention-free per-shard and per-connection handles.
//!
//! The design constraint that shapes everything here: telemetry is
//! strictly *off* the deterministic path. Recording reads wall clocks
//! and bumps atomics; nothing ever flows back into engine state, so the
//! server's ledgers are byte-identical with telemetry enabled — the
//! differential harnesses pin this.
//!
//! Roll-ups compose: per-shard histogram instances merge into a node's
//! [`TelemetrySnapshot`], and the router merges node snapshots
//! cluster-wide. Merging is bucket-wise addition (associative,
//! commutative), so every fold order tells the same story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;

pub use histogram::{bucket_index, bucket_lo, bucket_mid, Histogram, HistogramSnapshot, N_BUCKETS};
pub use registry::{Counter, Gauge, Telemetry, TelemetrySnapshot};
