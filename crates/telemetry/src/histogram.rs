//! A log-linear latency histogram with fixed atomic buckets.
//!
//! The bucket scheme is the HDR-style compromise between range and
//! resolution: values below [`SUB`] (32) get one bucket each (exact),
//! and every power-of-two octave above that is split into [`SUB`]
//! linear sub-buckets. A recorded value therefore lands in a bucket
//! whose width is at most `1/32` of its magnitude — percentile
//! estimates carry a bounded ~3% relative error — while 1920 buckets
//! cover the full `u64` range. Recording is one `fetch_add` per value
//! (no allocation, no locks, `Relaxed` ordering), reads are lock-free,
//! and [`HistogramSnapshot::merge`] folds shard → node → cluster
//! roll-ups without losing resolution: merging is bucket-wise addition,
//! so it is associative and commutative by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave (and the top of the exact region).
const SUB: u64 = 32;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 5;
/// Total bucket count: the exact region plus 59 octaves of 32.
pub const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// The bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
        octave * SUB as usize + sub
    }
}

/// The smallest value that lands in bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    debug_assert!(i < N_BUCKETS);
    let (octave, sub) = (i as u64 / SUB, i as u64 % SUB);
    if octave == 0 {
        sub
    } else {
        (SUB + sub) << (octave - 1)
    }
}

/// The representative value reported for bucket `i` (its midpoint, so
/// the estimate's error is at most half a bucket width each way).
pub fn bucket_mid(i: usize) -> u64 {
    let octave = i as u64 / SUB;
    if octave == 0 {
        bucket_lo(i)
    } else {
        bucket_lo(i) + (1u64 << (octave - 1)) / 2
    }
}

/// A concurrent log-linear histogram. All methods take `&self`; share
/// it behind an `Arc` and record from any thread.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. The bucket array is allocated once here;
    /// [`Histogram::record`] never allocates.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: a single relaxed `fetch_add` on the owning
    /// bucket (plus sum/max upkeep). Safe to call from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A lock-free point-in-time copy. Concurrent `record`s may or may
    /// not be visible — each bucket read is atomic, and the snapshot's
    /// `count` is derived from the buckets actually read, so the copy
    /// is always internally consistent for percentile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state: the non-empty
/// buckets in index order, plus derived totals. This is what goes on
/// the wire in a `TelemetrySnapshot` frame and what roll-ups operate
/// on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values (sum of bucket counts at snapshot time).
    pub count: u64,
    /// Sum of recorded values (wrapping, like the atomic it mirrors).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(bucket_index, count)` pairs, strictly increasing by index,
    /// zero-count buckets omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Mean of recorded values, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self` by bucket-wise addition. Associative
    /// and commutative, so shard → node → cluster roll-ups agree no
    /// matter the fold order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca.saturating_add(cb)));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count = self.count.saturating_add(other.count);
        // Wrapping, to match the atomic `fetch_add` recording uses — so
        // merging two histograms equals recording both sample sets into
        // one, exactly (the property tests pin this equivalence).
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the
    /// bucket holding the rank-`ceil(q·count)` value. Because bucket
    /// widths are at most `1/32` of their magnitude, the estimate lands
    /// in the same bucket as the exact order statistic. Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_mid(i as usize);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_a_partition() {
        // Every boundary value maps into a bucket whose bounds contain
        // it, indices are monotone, and the exact region is exact.
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
        let mut prev = 0;
        for v in [
            31,
            32,
            33,
            63,
            64,
            65,
            127,
            128,
            1 << 20,
            (1 << 20) + 17,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS);
            assert!(i >= prev, "bucket index must be monotone in the value");
            assert!(bucket_lo(i) <= v, "lo({i}) > {v}");
            assert!(
                bucket_index(bucket_mid(i)) == i,
                "midpoint leaves bucket {i}"
            );
            prev = i;
        }
        // Octave 1 starts exactly where the exact region ends.
        assert_eq!(bucket_lo(SUB as usize), SUB);
        // The last bucket covers u64::MAX.
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Exact reference: the rank-k order statistic of 1..=1000 is k.
        // The estimate must land in the same bucket as the exact value.
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let est = s.quantile(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={q}: estimate {est} not in exact value {exact}'s bucket"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 200);
        assert_eq!(m.max, 99_000);
        // Merging the other way round gives the identical snapshot.
        let mut m2 = b.snapshot();
        m2.merge(&a.snapshot());
        assert_eq!(m, m2);
        // Merging an empty histogram is the identity.
        let mut m3 = m.clone();
        m3.merge(&Histogram::new().snapshot());
        assert_eq!(m3, m);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v + t * 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
    }
}
