//! Property tests for the log-linear histogram: percentile estimates
//! pinned against an exact sorted-reference model, and `merge()`
//! associativity/commutativity (the algebra the shard → node → cluster
//! roll-ups rely on).

use delta_telemetry::{
    bucket_index, bucket_lo, bucket_mid, Histogram, HistogramSnapshot, N_BUCKETS,
};
use proptest::prelude::*;

/// The exact model: the rank-`ceil(q·n)` order statistic of the sorted
/// sample — what the histogram approximates bucket-wise.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes: sub-bucket exact range, mid-range latencies, and
    // huge outliers, so every octave regime gets exercised.
    prop::collection::vec(
        prop_oneof![
            0u64..32,
            32u64..100_000,
            100_000u64..10_000_000_000,
            Just(u64::MAX),
        ],
        1..400,
    )
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every quantile estimate lands in the same bucket as the exact
    /// order statistic — the strongest guarantee a bucketed histogram
    /// can give, and with 32 sub-buckets per octave it bounds the
    /// relative error at ~3%.
    #[test]
    fn quantiles_match_sorted_reference(values in arb_values()) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            prop_assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={}: estimate {} and exact {} disagree on bucket",
                q, est, exact
            );
        }
    }

    /// Merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn merge_commutes(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_associates(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging two histograms is the same as recording both sample sets
    /// into one — the roll-up loses nothing but bucket resolution it
    /// never had.
    #[test]
    fn merge_equals_union(a in arb_values(), b in arb_values()) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&union));
    }

    /// The bucket scheme is a partition of u64: indices are monotone in
    /// the value, bounds contain their values, and the representative
    /// value stays inside its bucket.
    #[test]
    fn bucket_scheme_sound(v in prop_oneof![0u64..1024, 0u64..u64::MAX, Just(u64::MAX)]) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(bucket_lo(i) <= v);
        prop_assert_eq!(bucket_index(bucket_mid(i)), i);
        if v > 0 {
            prop_assert!(bucket_index(v - 1) <= i, "monotone");
        }
    }
}
