//! Property tests shared by all replacement policies.

use delta_policy::{lazy, GreedyDualSize, Lfu, Lru, ReplacementPolicy};
use delta_storage::ObjectId;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Request(u32, u64, u64),
    Touch(u32),
    Forget(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..30, 1u64..60, 0u64..100).prop_map(|(i, s, c)| Op::Request(i, s, c)),
            (0u32..30).prop_map(Op::Touch),
            (0u32..30).prop_map(Op::Forget),
        ],
        0..120,
    )
}

fn check_policy<P: ReplacementPolicy>(mut p: P, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut sizes: std::collections::HashMap<u32, u64> = Default::default();
    for op in ops {
        match *op {
            Op::Request(i, s, c) => {
                // A policy may keep an object's original size on repeat
                // requests; use a stable size per id to avoid ambiguity.
                let s = *sizes.entry(i).or_insert(s);
                let adm = p.request(ObjectId(i), s, c);
                for e in &adm.evicted {
                    prop_assert!(*e != ObjectId(i), "cannot evict the object being admitted");
                }
                if adm.admitted {
                    prop_assert!(p.contains(ObjectId(i)));
                }
            }
            Op::Touch(i) => p.touch(ObjectId(i)),
            Op::Forget(i) => {
                p.forget(ObjectId(i));
                prop_assert!(!p.contains(ObjectId(i)));
            }
        }
        // Core invariant: never exceed capacity.
        prop_assert!(p.used() <= p.capacity(), "capacity exceeded");
        // used() equals the sum of resident sizes.
        let total: u64 = p.resident().iter().map(|id| sizes[&id.0]).sum();
        prop_assert_eq!(p.used(), total, "used() out of sync with residents");
    }
    Ok(())
}

proptest! {
    #[test]
    fn gds_invariants(ops in arb_ops(), cap in 50u64..300) {
        check_policy(GreedyDualSize::new(cap), &ops)?;
    }

    #[test]
    fn lru_invariants(ops in arb_ops(), cap in 50u64..300) {
        check_policy(Lru::new(cap), &ops)?;
    }

    #[test]
    fn lfu_invariants(ops in arb_ops(), cap in 50u64..300) {
        check_policy(Lfu::new(cap), &ops)?;
    }

    /// The lazy batch plan is consistent: loads are disjoint from evicts,
    /// every eviction was resident before, every load is resident after,
    /// and replaying the plan against a set reproduces the policy's
    /// resident set.
    #[test]
    fn lazy_plan_consistency(
        pre in proptest::collection::vec((0u32..20, 10u64..50), 0..6),
        batch in proptest::collection::vec((20u32..40, 10u64..80, 1u64..200), 0..10),
        cap in 100u64..300,
    ) {
        let mut gds = GreedyDualSize::new(cap);
        for &(i, s) in &pre {
            gds.request(ObjectId(i), s, s);
        }
        let before: HashSet<ObjectId> = gds.resident().into_iter().collect();
        let cands: Vec<(ObjectId, u64, u64)> =
            batch.iter().map(|&(i, s, c)| (ObjectId(i), s, c)).collect();
        let plan = lazy::plan_batch(&mut gds, &cands);
        let after: HashSet<ObjectId> = gds.resident().into_iter().collect();

        for l in &plan.load {
            prop_assert!(!before.contains(l));
            prop_assert!(after.contains(l));
        }
        for e in &plan.evict {
            prop_assert!(before.contains(e));
            prop_assert!(!after.contains(e));
        }
        let loads: HashSet<_> = plan.load.iter().collect();
        let evicts: HashSet<_> = plan.evict.iter().collect();
        prop_assert!(loads.is_disjoint(&evicts));

        // Replay: before - evict + load == after.
        let mut replay = before.clone();
        for e in &plan.evict {
            replay.remove(e);
        }
        for l in &plan.load {
            replay.insert(*l);
        }
        prop_assert_eq!(replay, after);
    }
}
