//! Randomized bypass admission (Malik, Burns & Chaudhary, ICDE 2005).
//!
//! To minimize network traffic it is wrong to load an object on first
//! touch: the right rule is to keep *shipping* queries against an uncached
//! object until the shipped cost matches the load cost, and only then load
//! (\[24\] in the Delta paper). Tracking the accumulated cost per object
//! needs a counter on every object at every site; Delta instead uses a
//! memoryless randomized equivalent (§4, LoadManager): when a query
//! attributes cost `c` against an object with load cost `l`, the object
//! becomes a load candidate
//!
//! * immediately, if `c >= l`;
//! * with probability `c / l` otherwise.
//!
//! In expectation an object becomes a candidate exactly once its
//! attributed shipping cost has covered its load cost — with **zero**
//! per-object state.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Memoryless load-admission gate.
#[derive(Debug)]
pub struct RandomizedAdmission {
    rng: StdRng,
    trials: u64,
    admits: u64,
}

impl RandomizedAdmission {
    /// Creates a gate with a deterministic seed (experiments must be
    /// reproducible).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            trials: 0,
            admits: 0,
        }
    }

    /// Decides whether an object with load cost `load_cost` becomes a load
    /// candidate after a query attributed `attributed_cost` to it.
    pub fn admit(&mut self, attributed_cost: u64, load_cost: u64) -> bool {
        self.trials += 1;
        let yes = if attributed_cost >= load_cost {
            // Covers load_cost == 0 too: a free load is always admitted.
            true
        } else {
            let p = attributed_cost as f64 / load_cost as f64;
            self.rng.random_bool(p)
        };
        if yes {
            self.admits += 1;
        }
        yes
    }

    /// `(trials, admissions)` so far — for diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.trials, self.admits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cost_always_admits() {
        let mut g = RandomizedAdmission::new(1);
        for _ in 0..100 {
            assert!(g.admit(10, 10));
            assert!(g.admit(11, 10));
        }
    }

    #[test]
    fn zero_cost_never_admits_below_free_load() {
        let mut g = RandomizedAdmission::new(2);
        for _ in 0..100 {
            assert!(!g.admit(0, 10));
        }
    }

    #[test]
    fn zero_load_cost_admits() {
        let mut g = RandomizedAdmission::new(3);
        assert!(g.admit(0, 0));
    }

    #[test]
    fn admission_rate_matches_ratio() {
        // With c/l = 0.3, ~30% of trials admit (law of large numbers).
        let mut g = RandomizedAdmission::new(42);
        let n = 20_000;
        let mut hits = 0;
        for _ in 0..n {
            if g.admit(3, 10) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = RandomizedAdmission::new(7);
        let mut b = RandomizedAdmission::new(7);
        for i in 1..200u64 {
            assert_eq!(a.admit(i % 9, 10), b.admit(i % 9, 10));
        }
    }

    #[test]
    fn expected_cost_before_admission_near_load_cost() {
        // Repeatedly attribute cost 1 against load cost 50; measure the
        // mean attributed total before first admission ≈ 50.
        let mut g = RandomizedAdmission::new(99);
        let mut totals = Vec::new();
        for _ in 0..500 {
            let mut total = 0u64;
            loop {
                total += 1;
                if g.admit(1, 50) {
                    break;
                }
            }
            totals.push(total as f64);
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        assert!(
            (mean - 50.0).abs() < 7.0,
            "mean cost before admission {mean}"
        );
    }
}
