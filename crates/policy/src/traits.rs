//! The replacement-policy abstraction the LoadManager plugs into.
//!
//! The paper's LoadManager is parameterized by an object-caching algorithm
//! `A_obj` (Fig. 6) — Greedy-Dual-Size in their prototype. A policy here is
//! a *logical* cache: it tracks which objects it would keep and answers
//! admission requests with an eviction plan; the physical
//! `delta_storage::CacheStore` executes the plan.

use delta_storage::ObjectId;

/// Outcome of asking a policy to admit an object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Admission {
    /// Whether the object was admitted (it is now logically resident).
    pub admitted: bool,
    /// Objects the policy gave up to make room, in eviction order.
    pub evicted: Vec<ObjectId>,
}

/// A size- and cost-aware object replacement policy.
pub trait ReplacementPolicy {
    /// Requests that `id` (of `size` bytes, re-fetch cost `cost`) be made
    /// resident, evicting others if needed. If `id` is already resident
    /// this records an access (refreshing its priority) and returns an
    /// admitted result with no evictions.
    fn request(&mut self, id: ObjectId, size: u64, cost: u64) -> Admission;

    /// Records a cache hit on a resident object without admission
    /// semantics (refreshes recency/frequency state). Unknown ids are
    /// ignored.
    fn touch(&mut self, id: ObjectId);

    /// Removes an object because the outside world evicted it (e.g. the
    /// decision framework dropped it); keeps policy state in sync.
    fn forget(&mut self, id: ObjectId);

    /// Whether the policy currently considers `id` resident.
    fn contains(&self, id: ObjectId) -> bool;

    /// Logical bytes in residence.
    fn used(&self) -> u64;

    /// Capacity in bytes.
    fn capacity(&self) -> u64;

    /// Resident objects (unspecified order).
    fn resident(&self) -> Vec<ObjectId>;

    /// The object the policy would evict next, if any — used by callers
    /// that must shed space for reasons the policy cannot see (e.g.
    /// resident objects growing as updates are applied).
    fn victim(&self) -> Option<ObjectId>;
}
