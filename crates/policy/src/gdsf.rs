//! GDSF — Greedy-Dual-Size-Frequency (Cherkasova 1998) — and FIFO.
//!
//! Two more `A_obj` candidates for the ablation study around the paper's
//! Greedy-Dual-Size choice:
//!
//! * [`Gdsf`] extends GDS with an explicit access-frequency factor,
//!   `H = L + freq × cost / size`, the standard refinement used by web
//!   proxies (e.g. Squid). Frequency matters for Delta's workload because
//!   hotspot objects are re-queried many times between drifts.
//! * [`Fifo`] ignores everything but arrival order — the "no signal"
//!   floor an informed policy must beat.

use crate::traits::{Admission, ReplacementPolicy};
use delta_storage::ObjectId;
use std::collections::{HashMap, VecDeque};

#[derive(Clone, Copy, Debug)]
struct GdsfEntry {
    h: f64,
    size: u64,
    cost: u64,
    freq: u64,
    tick: u64,
}

/// Greedy-Dual-Size-Frequency replacement.
#[derive(Clone, Debug)]
pub struct Gdsf {
    capacity: u64,
    used: u64,
    inflation: f64,
    tick: u64,
    entries: HashMap<ObjectId, GdsfEntry>,
}

impl Gdsf {
    /// Creates a policy managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            inflation: 0.0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Access count of a resident object.
    pub fn frequency(&self, id: ObjectId) -> Option<u64> {
        self.entries.get(&id).map(|e| e.freq)
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn priority(inflation: f64, freq: u64, cost: u64, size: u64) -> f64 {
        inflation + freq as f64 * cost as f64 / size.max(1) as f64
    }

    fn victim_inner(&self) -> Option<ObjectId> {
        self.entries
            .iter()
            .min_by(|a, b| {
                a.1.h
                    .total_cmp(&b.1.h)
                    .then_with(|| a.1.tick.cmp(&b.1.tick))
                    .then_with(|| a.0.cmp(b.0))
            })
            .map(|(&id, _)| id)
    }
}

impl ReplacementPolicy for Gdsf {
    fn request(&mut self, id: ObjectId, size: u64, cost: u64) -> Admission {
        let tick = self.bump();
        if let Some(e) = self.entries.get_mut(&id) {
            e.freq += 1;
            e.cost = cost;
            e.h = Self::priority(self.inflation, e.freq, e.cost, e.size);
            e.tick = tick;
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if size > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self.victim_inner().expect("used > 0 implies a victim");
            let e = self.entries.remove(&v).expect("victim resident");
            self.used -= e.size;
            self.inflation = self.inflation.max(e.h);
            evicted.push(v);
        }
        let h = Self::priority(self.inflation, 1, cost, size);
        self.entries.insert(
            id,
            GdsfEntry {
                h,
                size,
                cost,
                freq: 1,
                tick,
            },
        );
        self.used += size;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn touch(&mut self, id: ObjectId) {
        let tick = self.bump();
        if let Some(e) = self.entries.get_mut(&id) {
            e.freq += 1;
            e.h = Self::priority(self.inflation, e.freq, e.cost, e.size);
            e.tick = tick;
        }
    }

    fn forget(&mut self, id: ObjectId) {
        if let Some(e) = self.entries.remove(&id) {
            self.used -= e.size;
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn resident(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    fn victim(&self) -> Option<ObjectId> {
        self.victim_inner()
    }
}

/// First-in-first-out replacement: evicts in admission order, learns
/// nothing from hits.
#[derive(Clone, Debug)]
pub struct Fifo {
    capacity: u64,
    used: u64,
    queue: VecDeque<ObjectId>,
    sizes: HashMap<ObjectId, u64>,
}

impl Fifo {
    /// Creates a policy managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            queue: VecDeque::new(),
            sizes: HashMap::new(),
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn request(&mut self, id: ObjectId, size: u64, _cost: u64) -> Admission {
        if self.sizes.contains_key(&id) {
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if size > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self.queue.pop_front().expect("used > 0 implies a victim");
            let s = self.sizes.remove(&v).expect("victim resident");
            self.used -= s;
            evicted.push(v);
        }
        self.queue.push_back(id);
        self.sizes.insert(id, size);
        self.used += size;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn touch(&mut self, _id: ObjectId) {
        // FIFO is access-oblivious by definition.
    }

    fn forget(&mut self, id: ObjectId) {
        if let Some(s) = self.sizes.remove(&id) {
            self.used -= s;
            self.queue.retain(|&o| o != id);
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.sizes.contains_key(&id)
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn resident(&self) -> Vec<ObjectId> {
        self.queue.iter().copied().collect()
    }

    fn victim(&self) -> Option<ObjectId> {
        self.queue.front().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn gdsf_prefers_frequent_objects() {
        let mut p = Gdsf::new(100);
        assert!(p.request(o(1), 50, 50).admitted);
        assert!(p.request(o(2), 50, 50).admitted);
        // Hammer object 1.
        for _ in 0..5 {
            p.touch(o(1));
        }
        assert_eq!(p.frequency(o(1)), Some(6));
        // Admitting a third object must evict the infrequent one.
        let a = p.request(o(3), 50, 50);
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(2)]);
        assert!(p.contains(o(1)));
    }

    #[test]
    fn gdsf_inflation_rises_monotonically() {
        let mut p = Gdsf::new(60);
        p.request(o(1), 30, 30);
        p.request(o(2), 30, 30);
        let l0 = p.inflation();
        p.request(o(3), 60, 60); // evicts both
        assert!(p.inflation() >= l0);
        assert!(p.contains(o(3)));
        assert_eq!(p.used(), 60);
    }

    #[test]
    fn gdsf_cheap_big_objects_evict_first() {
        let mut p = Gdsf::new(100);
        p.request(o(1), 80, 8); // cost/size = 0.1
        p.request(o(2), 20, 200); // cost/size = 10
        let a = p.request(o(3), 50, 50);
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(1)], "low-value big object goes first");
    }

    #[test]
    fn gdsf_oversized_object_rejected_without_churn() {
        let mut p = Gdsf::new(100);
        p.request(o(1), 60, 60);
        let a = p.request(o(2), 200, 200);
        assert!(!a.admitted);
        assert!(a.evicted.is_empty());
        assert!(p.contains(o(1)));
    }

    #[test]
    fn gdsf_forget_frees_space() {
        let mut p = Gdsf::new(100);
        p.request(o(1), 60, 60);
        p.forget(o(1));
        assert_eq!(p.used(), 0);
        assert!(!p.contains(o(1)));
        p.forget(o(1)); // idempotent
    }

    #[test]
    fn fifo_evicts_in_arrival_order_regardless_of_use() {
        let mut p = Fifo::new(100);
        p.request(o(1), 40, 1);
        p.request(o(2), 40, 1_000_000);
        for _ in 0..100 {
            p.touch(o(1)); // FIFO doesn't care
        }
        let a = p.request(o(3), 40, 1);
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(1)], "oldest goes first, hits ignored");
        assert_eq!(p.victim(), Some(o(2)));
    }

    #[test]
    fn fifo_accounting_is_exact() {
        let mut p = Fifo::new(100);
        p.request(o(1), 30, 1);
        p.request(o(2), 30, 1);
        assert_eq!(p.used(), 60);
        p.forget(o(1));
        assert_eq!(p.used(), 30);
        assert_eq!(p.resident(), vec![o(2)]);
        assert_eq!(p.capacity(), 100);
    }

    #[test]
    fn fifo_rehit_is_not_readmission() {
        let mut p = Fifo::new(100);
        p.request(o(1), 60, 1);
        let a = p.request(o(1), 60, 1);
        assert!(a.admitted);
        assert!(a.evicted.is_empty());
        assert_eq!(p.used(), 60, "no double counting");
    }
}
