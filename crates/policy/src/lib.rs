//! # delta-policy — object-cache replacement policies
//!
//! The cache-management building blocks of Delta's `LoadManager` (paper
//! §4, Fig. 6):
//!
//! * [`GreedyDualSize`] — the `A_obj` of the paper's prototype (Cao &
//!   Irani's cost/size-aware policy with inflation).
//! * [`lazy::plan_batch`] — the "lazy version of A_obj": runs a query's
//!   whole load-candidate subsequence through the policy and emits only the
//!   net loads/evictions, so nothing is fetched just to be evicted moments
//!   later.
//! * [`RandomizedAdmission`] — the memoryless bypass-caching gate: an
//!   object becomes a load candidate with probability
//!   `attributed_cost / load_cost`, making the expected shipped cost before
//!   loading equal to the load cost without per-object counters.
//! * [`Lru`] / [`Lfu`] / [`Gdsf`] / [`Fifo`] — comparators for ablation
//!   benchmarks (recency, frequency, frequency-weighted GDS, and the
//!   no-signal floor).
//!
//! ```
//! use delta_policy::{lazy, GreedyDualSize, ReplacementPolicy};
//! use delta_storage::ObjectId;
//!
//! let mut gds = GreedyDualSize::new(100);
//! let plan = lazy::plan_batch(&mut gds, &[
//!     (ObjectId(1), 100, 50),   // would be admitted...
//!     (ObjectId(2), 100, 500),  // ...then displaced by this one
//! ]);
//! assert_eq!(plan.load, vec![ObjectId(2)]); // o1 never touches the network
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bypass;
pub mod gds;
pub mod gdsf;
pub mod lazy;
pub mod lru;
pub mod traits;

pub use bypass::RandomizedAdmission;
pub use gds::GreedyDualSize;
pub use gdsf::{Fifo, Gdsf};
pub use lazy::{plan_batch, BatchPlan};
pub use lru::{Lfu, Lru};
pub use traits::{Admission, ReplacementPolicy};
