//! Greedy-Dual-Size (Cao & Irani 1997), the paper's `A_obj`.
//!
//! Every resident object carries a priority `H = L + cost/size` where `L`
//! is the global inflation value; on eviction `L` rises to the victim's
//! `H`. Accessing an object refreshes its `H` with the current `L`, which
//! blends recency with the cost/size ratio — for Delta, cost is the
//! object's load cost and size its bytes, so `cost/size ≈ 1` and GDS
//! degenerates gracefully toward size-aware LRU, exactly as the paper
//! wants for "usage in the cache measured from frequency and recency".

use crate::traits::{Admission, ReplacementPolicy};
use delta_storage::ObjectId;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct Entry {
    h: f64,
    size: u64,
    /// Insertion tick, used to break priority ties deterministically
    /// (oldest first).
    tick: u64,
}

/// Greedy-Dual-Size replacement.
#[derive(Clone, Debug)]
pub struct GreedyDualSize {
    capacity: u64,
    used: u64,
    inflation: f64,
    tick: u64,
    entries: HashMap<ObjectId, Entry>,
}

impl GreedyDualSize {
    /// Creates a policy managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            inflation: 0.0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Priority of a resident object.
    pub fn priority(&self, id: ObjectId) -> Option<f64> {
        self.entries.get(&id).map(|e| e.h)
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The resident object with the minimum `(H, tick)` — the next victim.
    fn victim_inner(&self) -> Option<ObjectId> {
        self.entries
            .iter()
            .min_by(|a, b| {
                a.1.h
                    .total_cmp(&b.1.h)
                    .then_with(|| a.1.tick.cmp(&b.1.tick))
                    .then_with(|| a.0.cmp(b.0))
            })
            .map(|(&id, _)| id)
    }
}

impl ReplacementPolicy for GreedyDualSize {
    fn request(&mut self, id: ObjectId, size: u64, cost: u64) -> Admission {
        if let Some(e) = self.entries.get_mut(&id) {
            // Hit: refresh H with current inflation.
            e.h = self.inflation + cost as f64 / size.max(1) as f64;
            let t = self.bump();
            self.entries.get_mut(&id).expect("present").tick = t;
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if size > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self
                .victim_inner()
                .expect("used > 0 implies a victim exists");
            let e = self.entries.remove(&v).expect("victim resident");
            self.used -= e.size;
            // Inflation rises to the evicted priority.
            self.inflation = self.inflation.max(e.h);
            evicted.push(v);
        }
        let h = self.inflation + cost as f64 / size.max(1) as f64;
        let tick = self.bump();
        self.entries.insert(id, Entry { h, size, tick });
        self.used += size;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn touch(&mut self, id: ObjectId) {
        if let Some(e) = self.entries.get(&id) {
            let (size, h_base) = (e.size, self.inflation);
            let cost_over_size = e.h - h_base; // keep prior ratio contribution
            let t = self.bump();
            let e = self.entries.get_mut(&id).expect("present");
            e.h = h_base + cost_over_size.max(1.0 / size.max(1) as f64);
            e.tick = t;
        }
    }

    fn forget(&mut self, id: ObjectId) {
        if let Some(e) = self.entries.remove(&id) {
            self.used -= e.size;
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn resident(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    fn victim(&self) -> Option<ObjectId> {
        self.victim_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn admits_until_full_then_evicts_lowest_h() {
        let mut g = GreedyDualSize::new(100);
        assert!(g.request(o(1), 40, 40).admitted); // H = 1
        assert!(g.request(o(2), 40, 80).admitted); // H = 2
        let a = g.request(o(3), 40, 120); // needs eviction; o1 has lowest H
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(1)]);
        assert!(g.contains(o(2)) && g.contains(o(3)));
        assert!(g.used() <= g.capacity());
    }

    #[test]
    fn hit_refreshes_priority() {
        let mut g = GreedyDualSize::new(100);
        g.request(o(1), 40, 40);
        g.request(o(2), 40, 40);
        // Touch o1 after inflation exists; then o2 should be the victim.
        g.request(o(3), 40, 40); // evicts o1 (oldest tie), L rises
        assert!(!g.contains(o(1)));
        g.request(o(2), 40, 40); // hit: refresh o2 above o3
        let a = g.request(o(4), 40, 40);
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(3)]);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut g = GreedyDualSize::new(100);
        let a = g.request(o(1), 200, 1000);
        assert!(!a.admitted);
        assert!(a.evicted.is_empty());
        assert_eq!(g.used(), 0);
    }

    #[test]
    fn inflation_is_monotone() {
        let mut g = GreedyDualSize::new(50);
        let mut last = 0.0;
        for i in 0..20 {
            g.request(o(i), 30, 30 + (i as u64 * 7) % 50);
            assert!(g.inflation() >= last);
            last = g.inflation();
        }
    }

    #[test]
    fn forget_frees_space() {
        let mut g = GreedyDualSize::new(100);
        g.request(o(1), 60, 60);
        g.forget(o(1));
        assert_eq!(g.used(), 0);
        assert!(g.request(o(2), 100, 1).admitted);
    }

    #[test]
    fn big_object_evicts_many() {
        let mut g = GreedyDualSize::new(100);
        for i in 0..5 {
            g.request(o(i), 20, 20);
        }
        let a = g.request(o(9), 90, 500);
        assert!(a.admitted);
        assert_eq!(
            a.evicted.len(),
            5,
            "all five small objects evicted: need 90 of 100"
        );
        assert_eq!(g.used(), 90);
    }
}
