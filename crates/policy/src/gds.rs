//! Greedy-Dual-Size (Cao & Irani 1997), the paper's `A_obj`.
//!
//! Every resident object carries a priority `H = L + cost/size` where `L`
//! is the global inflation value; on eviction `L` rises to the victim's
//! `H`. Accessing an object refreshes its `H` with the current `L`, which
//! blends recency with the cost/size ratio — for Delta, cost is the
//! object's load cost and size its bytes, so `cost/size ≈ 1` and GDS
//! degenerates gracefully toward size-aware LRU, exactly as the paper
//! wants for "usage in the cache measured from frequency and recency".
//!
//! ## Representation
//!
//! Object ids are dense catalog indices, so entries live in a slab
//! (`Vec<Option<Entry>>`) indexed by id — no hashing on the hot path —
//! and victim selection runs over an **indexed binary min-heap** ordered
//! by `(H, tick, id)`: peeking the next victim is O(1) and every
//! insert/update/remove is O(log n), replacing the former O(n) scan over
//! all residents. The heap's `pos` side-table maps id → heap slot so a
//! priority refresh re-sifts exactly one path.

use crate::traits::{Admission, ReplacementPolicy};
use delta_storage::ObjectId;

#[derive(Clone, Copy, Debug)]
struct Entry {
    h: f64,
    size: u64,
    /// Insertion tick, used to break priority ties deterministically
    /// (oldest first).
    tick: u64,
}

/// Sentinel for "not in the heap" in the `pos` side-table.
const ABSENT: u32 = u32::MAX;

/// Greedy-Dual-Size replacement.
#[derive(Clone, Debug)]
pub struct GreedyDualSize {
    capacity: u64,
    used: u64,
    inflation: f64,
    tick: u64,
    /// Dense slab indexed by object id; `None` = not resident.
    entries: Vec<Option<Entry>>,
    len: usize,
    /// Min-heap of resident ids ordered by `(h, tick, id)`.
    heap: Vec<u32>,
    /// `pos[id]` = index of `id` in `heap`, or [`ABSENT`].
    pos: Vec<u32>,
}

impl GreedyDualSize {
    /// Creates a policy managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            inflation: 0.0,
            tick: 0,
            entries: Vec::new(),
            len: 0,
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Priority of a resident object.
    pub fn priority(&self, id: ObjectId) -> Option<f64> {
        self.entry(id).map(|e| e.h)
    }

    #[inline]
    fn entry(&self, id: ObjectId) -> Option<&Entry> {
        self.entries.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Grows both slabs so `id` has a slot.
    fn ensure_slot(&mut self, id: ObjectId) {
        let i = id.index();
        if i >= self.entries.len() {
            self.entries.resize(i + 1, None);
            self.pos.resize(i + 1, ABSENT);
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    // ---- indexed heap primitives ----

    /// Whether resident `a` orders strictly before resident `b` in the
    /// victim order `(h, tick, id)`.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let ea = self.entries[a as usize].as_ref().expect("heap id resident");
        let eb = self.entries[b as usize].as_ref().expect("heap id resident");
        match ea.h.total_cmp(&eb.h) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => (ea.tick, a) < (eb.tick, b),
        }
    }

    #[inline]
    fn place(&mut self, slot: usize, id: u32) {
        self.heap[slot] = id;
        self.pos[id as usize] = slot as u32;
    }

    fn sift_up(&mut self, mut slot: usize) {
        let id = self.heap[slot];
        while slot > 0 {
            let parent = (slot - 1) / 2;
            let pid = self.heap[parent];
            if !self.before(id, pid) {
                break;
            }
            self.place(slot, pid);
            slot = parent;
        }
        self.place(slot, id);
    }

    fn sift_down(&mut self, mut slot: usize) {
        let id = self.heap[slot];
        let n = self.heap.len();
        loop {
            let mut child = 2 * slot + 1;
            if child >= n {
                break;
            }
            if child + 1 < n && self.before(self.heap[child + 1], self.heap[child]) {
                child += 1;
            }
            let cid = self.heap[child];
            if !self.before(cid, id) {
                break;
            }
            self.place(slot, cid);
            slot = child;
        }
        self.place(slot, id);
    }

    fn heap_push(&mut self, id: ObjectId) {
        let slot = self.heap.len();
        self.heap.push(id.0);
        self.pos[id.index()] = slot as u32;
        self.sift_up(slot);
    }

    /// Re-establishes heap order after `id`'s key changed either way.
    fn heap_update(&mut self, id: ObjectId) {
        let slot = self.pos[id.index()];
        debug_assert_ne!(slot, ABSENT);
        self.sift_up(slot as usize);
        let slot = self.pos[id.index()] as usize;
        self.sift_down(slot);
    }

    fn heap_remove(&mut self, id: ObjectId) {
        let slot = self.pos[id.index()] as usize;
        self.pos[id.index()] = ABSENT;
        let last = self.heap.len() - 1;
        if slot != last {
            let moved = self.heap[last];
            self.heap.truncate(last);
            self.place(slot, moved);
            self.sift_up(slot);
            let slot = self.pos[moved as usize] as usize;
            self.sift_down(slot);
        } else {
            self.heap.truncate(last);
        }
    }

    /// The resident object with the minimum `(H, tick)` — the next victim.
    fn victim_inner(&self) -> Option<ObjectId> {
        self.heap.first().map(|&id| ObjectId(id))
    }
}

impl ReplacementPolicy for GreedyDualSize {
    fn request(&mut self, id: ObjectId, size: u64, cost: u64) -> Admission {
        self.ensure_slot(id);
        if self.entries[id.index()].is_some() {
            // Hit: refresh H with current inflation.
            let h = self.inflation + cost as f64 / size.max(1) as f64;
            let t = self.bump();
            let e = self.entries[id.index()].as_mut().expect("present");
            e.h = h;
            e.tick = t;
            self.heap_update(id);
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if size > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self
                .victim_inner()
                .expect("used > 0 implies a victim exists");
            let e = self.entries[v.index()].take().expect("victim resident");
            self.len -= 1;
            self.heap_remove(v);
            self.used -= e.size;
            // Inflation rises to the evicted priority.
            self.inflation = self.inflation.max(e.h);
            evicted.push(v);
        }
        let h = self.inflation + cost as f64 / size.max(1) as f64;
        let tick = self.bump();
        self.entries[id.index()] = Some(Entry { h, size, tick });
        self.len += 1;
        self.heap_push(id);
        self.used += size;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn touch(&mut self, id: ObjectId) {
        if let Some(e) = self.entry(id) {
            let (size, h_base) = (e.size, self.inflation);
            let cost_over_size = e.h - h_base; // keep prior ratio contribution
            let t = self.bump();
            let e = self.entries[id.index()].as_mut().expect("present");
            e.h = h_base + cost_over_size.max(1.0 / size.max(1) as f64);
            e.tick = t;
            self.heap_update(id);
        }
    }

    fn forget(&mut self, id: ObjectId) {
        if let Some(e) = self.entries.get_mut(id.index()).and_then(Option::take) {
            self.len -= 1;
            self.heap_remove(id);
            self.used -= e.size;
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.entry(id).is_some()
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn resident(&self) -> Vec<ObjectId> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ObjectId(i as u32)))
            .collect()
    }

    fn victim(&self) -> Option<ObjectId> {
        self.victim_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn admits_until_full_then_evicts_lowest_h() {
        let mut g = GreedyDualSize::new(100);
        assert!(g.request(o(1), 40, 40).admitted); // H = 1
        assert!(g.request(o(2), 40, 80).admitted); // H = 2
        let a = g.request(o(3), 40, 120); // needs eviction; o1 has lowest H
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(1)]);
        assert!(g.contains(o(2)) && g.contains(o(3)));
        assert!(g.used() <= g.capacity());
    }

    #[test]
    fn hit_refreshes_priority() {
        let mut g = GreedyDualSize::new(100);
        g.request(o(1), 40, 40);
        g.request(o(2), 40, 40);
        // Touch o1 after inflation exists; then o2 should be the victim.
        g.request(o(3), 40, 40); // evicts o1 (oldest tie), L rises
        assert!(!g.contains(o(1)));
        g.request(o(2), 40, 40); // hit: refresh o2 above o3
        let a = g.request(o(4), 40, 40);
        assert!(a.admitted);
        assert_eq!(a.evicted, vec![o(3)]);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut g = GreedyDualSize::new(100);
        let a = g.request(o(1), 200, 1000);
        assert!(!a.admitted);
        assert!(a.evicted.is_empty());
        assert_eq!(g.used(), 0);
    }

    #[test]
    fn inflation_is_monotone() {
        let mut g = GreedyDualSize::new(50);
        let mut last = 0.0;
        for i in 0..20 {
            g.request(o(i), 30, 30 + (i as u64 * 7) % 50);
            assert!(g.inflation() >= last);
            last = g.inflation();
        }
    }

    #[test]
    fn forget_frees_space() {
        let mut g = GreedyDualSize::new(100);
        g.request(o(1), 60, 60);
        g.forget(o(1));
        assert_eq!(g.used(), 0);
        assert!(g.request(o(2), 100, 1).admitted);
    }

    #[test]
    fn big_object_evicts_many() {
        let mut g = GreedyDualSize::new(100);
        for i in 0..5 {
            g.request(o(i), 20, 20);
        }
        let a = g.request(o(9), 90, 500);
        assert!(a.admitted);
        assert_eq!(
            a.evicted.len(),
            5,
            "all five small objects evicted: need 90 of 100"
        );
        assert_eq!(g.used(), 90);
    }

    /// The indexed heap must stay consistent with the slab through a
    /// deterministic churn of admissions, hits, touches and forgets, and
    /// every victim it reports must equal the brute-force `(H, tick, id)`
    /// minimum over the live entries.
    #[test]
    fn heap_victim_matches_linear_scan_under_churn() {
        let mut g = GreedyDualSize::new(500);
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            let id = o((next() % 64) as u32);
            match next() % 4 {
                0 | 1 => {
                    let size = next() % 120 + 1;
                    let cost = next() % 200 + 1;
                    g.request(id, size, cost);
                }
                2 => g.touch(id),
                _ => g.forget(id),
            }
            // Brute-force the victim from the slab and compare.
            let scan = g
                .entries
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|e| (i as u32, e)))
                .min_by(|a, b| {
                    a.1.h
                        .total_cmp(&b.1.h)
                        .then_with(|| a.1.tick.cmp(&b.1.tick))
                        .then_with(|| a.0.cmp(&b.0))
                })
                .map(|(i, _)| ObjectId(i));
            assert_eq!(g.victim(), scan);
            assert_eq!(g.heap.len(), g.len, "heap and slab must agree on size");
        }
    }
}
