//! Size-aware LRU and LFU comparators.
//!
//! Not used by VCover itself, but the paper positions GDS against simpler
//! policies; these give the benchmark harness ablation points for the
//! LoadManager's choice of `A_obj`.

use crate::traits::{Admission, ReplacementPolicy};
use delta_storage::ObjectId;
use std::collections::HashMap;

/// Least-recently-used with byte capacity.
#[derive(Clone, Debug)]
pub struct Lru {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: HashMap<ObjectId, (u64, u64)>, // (last tick, size)
}

impl Lru {
    /// Creates an LRU policy managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn victim_inner(&self) -> Option<ObjectId> {
        self.entries
            .iter()
            .min_by_key(|(id, &(t, _))| (t, **id))
            .map(|(&id, _)| id)
    }
}

impl ReplacementPolicy for Lru {
    fn request(&mut self, id: ObjectId, size: u64, _cost: u64) -> Admission {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.0 = self.tick;
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if size > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self.victim_inner().expect("non-empty");
            let (_, s) = self.entries.remove(&v).expect("resident");
            self.used -= s;
            evicted.push(v);
        }
        self.entries.insert(id, (self.tick, size));
        self.used += size;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn touch(&mut self, id: ObjectId) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.0 = self.tick;
        }
    }

    fn forget(&mut self, id: ObjectId) {
        if let Some((_, s)) = self.entries.remove(&id) {
            self.used -= s;
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn resident(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    fn victim(&self) -> Option<ObjectId> {
        self.victim_inner()
    }
}

/// Least-frequently-used with byte capacity (ties broken by recency).
#[derive(Clone, Debug)]
pub struct Lfu {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: HashMap<ObjectId, (u64, u64, u64)>, // (count, last tick, size)
}

impl Lfu {
    /// Creates an LFU policy managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn victim_inner(&self) -> Option<ObjectId> {
        self.entries
            .iter()
            .min_by_key(|(id, &(c, t, _))| (c, t, **id))
            .map(|(&id, _)| id)
    }
}

impl ReplacementPolicy for Lfu {
    fn request(&mut self, id: ObjectId, size: u64, _cost: u64) -> Admission {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.0 += 1;
            e.1 = self.tick;
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        }
        if size > self.capacity {
            return Admission::default();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self.victim_inner().expect("non-empty");
            let (_, _, s) = self.entries.remove(&v).expect("resident");
            self.used -= s;
            evicted.push(v);
        }
        self.entries.insert(id, (1, self.tick, size));
        self.used += size;
        Admission {
            admitted: true,
            evicted,
        }
    }

    fn touch(&mut self, id: ObjectId) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.0 += 1;
            e.1 = self.tick;
        }
    }

    fn forget(&mut self, id: ObjectId) {
        if let Some((_, _, s)) = self.entries.remove(&id) {
            self.used -= s;
        }
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.entries.contains_key(&id)
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn resident(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    fn victim(&self) -> Option<ObjectId> {
        self.victim_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut l = Lru::new(100);
        l.request(o(1), 50, 0);
        l.request(o(2), 50, 0);
        l.touch(o(1)); // o2 now least recent
        let a = l.request(o(3), 50, 0);
        assert_eq!(a.evicted, vec![o(2)]);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut l = Lfu::new(100);
        l.request(o(1), 50, 0);
        l.request(o(2), 50, 0);
        l.touch(o(1));
        l.touch(o(1)); // o1 count 3, o2 count 1
        let a = l.request(o(3), 50, 0);
        assert_eq!(a.evicted, vec![o(2)]);
    }

    #[test]
    fn lru_hit_no_eviction() {
        let mut l = Lru::new(100);
        l.request(o(1), 100, 0);
        let a = l.request(o(1), 100, 0);
        assert!(a.admitted && a.evicted.is_empty());
        assert_eq!(l.used(), 100);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut l = Lru::new(75);
        for i in 0..50 {
            l.request(o(i), 10 + (i as u64 % 30), 0);
            assert!(l.used() <= l.capacity());
        }
        let mut f = Lfu::new(75);
        for i in 0..50 {
            f.request(o(i), 10 + (i as u64 % 30), 0);
            assert!(f.used() <= f.capacity());
        }
    }
}
