//! Property tests for the query frontend.

use delta_query::{analyze, parse, CmpOp, Predicate, Projection, Query, Schema, Shape};
use proptest::prelude::*;

fn arb_column() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "ra",
        "dec",
        "u",
        "g",
        "r",
        "i",
        "z",
        "type",
        "petroRad_r",
    ])
    .prop_map(str::to_string)
}

fn arb_attr_column() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["u", "g", "r", "i", "z", "petroRad_r"]).prop_map(str::to_string)
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0.0..360.0, -89.0..89.0, 0.01..30.0).prop_map(|(ra, dec, radius_deg)| Shape::Circle {
            ra,
            dec,
            radius_deg
        }),
        (0.0..300.0, -80.0..0.0, 0.1..59.0, 0.1..80.0).prop_map(|(ra_min, dec_min, dra, ddec)| {
            Shape::Rect {
                ra_min,
                dec_min,
                ra_max: ra_min + dra,
                dec_max: dec_min + ddec,
            }
        }),
        (0.0..360.0, -89.0..89.0, 0.001..0.5).prop_map(|(ra, dec, radius_deg)| {
            Shape::Neighbors {
                ra,
                dec,
                radius_deg,
            }
        }),
    ]
}

fn arb_attr_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (
            arb_attr_column(),
            prop::sample::select(vec![CmpOp::Lt, CmpOp::Gt, CmpOp::Le, CmpOp::Ge]),
            14.0..24.0f64
        )
            .prop_map(|(column, op, value)| Predicate::Compare { column, op, value }),
        (arb_attr_column(), 14.0..19.0f64, 0.1..5.0f64).prop_map(|(column, lo, w)| {
            Predicate::Between {
                column,
                lo,
                hi: lo + w,
            }
        }),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        arb_shape().prop_map(Predicate::Spatial),
        prop::collection::vec(arb_attr_predicate(), 2..4).prop_map(Predicate::AnyOf),
        (
            arb_attr_column(),
            prop::sample::select(vec![
                CmpOp::Eq,
                CmpOp::Lt,
                CmpOp::Gt,
                CmpOp::Le,
                CmpOp::Ge,
                CmpOp::Ne
            ]),
            14.0..24.0f64
        )
            .prop_map(|(column, op, value)| Predicate::Compare { column, op, value }),
        (arb_attr_column(), 14.0..19.0f64, 0.1..5.0f64).prop_map(|(column, lo, w)| {
            Predicate::Between {
                column,
                lo,
                hi: lo + w,
            }
        }),
    ]
}

fn arb_projection() -> impl Strategy<Value = Projection> {
    prop_oneof![
        Just(Projection::All),
        Just(Projection::Count),
        prop::collection::vec(arb_column(), 1..5).prop_map(|mut cols| {
            cols.dedup();
            Projection::Columns(cols)
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        arb_projection(),
        prop::option::of(1u64..100_000),
        prop::option::of(Just("p".to_string())),
        prop::collection::vec(arb_predicate(), 0..4),
        prop::option::of(0u64..10_000),
    )
        .prop_map(|(projection, top, alias, predicates, tolerance)| Query {
            projection,
            top,
            table: "PhotoObj".to_string(),
            alias,
            predicates,
            tolerance,
        })
}

proptest! {
    /// Rendering a query to SQL and parsing it back is the identity.
    #[test]
    fn display_parse_round_trip(q in arb_query()) {
        let sql = q.to_string();
        let parsed = parse(&sql).unwrap_or_else(|e| panic!("`{sql}` failed: {e}"));
        prop_assert_eq!(parsed, q);
    }

    /// The lexer and parser never panic, whatever the input.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC*") {
        let _ = parse(&s);
    }

    /// Parser is total on near-miss SQL-looking strings too.
    #[test]
    fn parser_total_on_sqlish_input(s in "(SELECT|FROM|WHERE|CIRCLE|[a-z]{1,8}|[0-9.]{1,6}|[(),*<>=]| ){0,20}") {
        let _ = parse(&s);
    }

    /// Every analyzable query has selectivity in (0, 1] and a positive
    /// row width under the SDSS schema.
    #[test]
    fn analysis_invariants(q in arb_query()) {
        let schema = Schema::sdss();
        if let Ok(a) = analyze(q, &schema) {
            prop_assert!(a.selectivity > 0.0 && a.selectivity <= 1.0);
            prop_assert!(a.row_width >= 8 || matches!(a.query.projection, Projection::Columns(_)));
            prop_assert!(delta_query::analyze::solid_angle(&a.region) > 0.0);
        }
    }

    /// Growing a cone's radius never shrinks its object footprint.
    #[test]
    fn footprint_monotone_in_radius(ra in 0.0..360.0f64, dec in -85.0..85.0f64, r1 in 0.1..5.0f64, grow in 1.0..4.0f64) {
        use delta_htm::Partition;
        use delta_storage::SpatialMapper;
        use delta_workload::SkyModel;
        use delta_query::Compiler;

        let mapper = SpatialMapper::new(Partition::adaptive(|t| t.solid_angle(), 68));
        let compiler = Compiler::new(Schema::sdss(), SkyModel::uniform(), mapper).with_samples(32);
        let small = compiler
            .compile(&format!("SELECT ra FROM PhotoObj WHERE CIRCLE({ra}, {dec}, {r1})"))
            .unwrap();
        let big = compiler
            .compile(&format!("SELECT ra FROM PhotoObj WHERE CIRCLE({ra}, {dec}, {})", r1 * grow))
            .unwrap();
        for o in &small.objects {
            prop_assert!(big.objects.contains(o), "object {o:?} lost when the cone grew");
        }
    }
}
