//! Abstract syntax tree for the SkyServer-style SQL subset.
//!
//! The grammar (§4 of the paper requires only that queries carry enough
//! structure to determine the objects `B(q)` they access and their
//! currency requirement `t(q)`):
//!
//! ```text
//! query      := SELECT select_list FROM table [WHERE conjunct (AND conjunct)*]
//!               [WITH TOLERANCE INT]
//! select_list:= [TOP INT] ('*' | COUNT '(' '*' ')' | column (',' column)*)
//! conjunct   := spatial | comparison | between
//!             | '(' simple (OR simple)* ')'          -- attribute disjunction
//! spatial    := CONTAINS '(' POINT '(' n ',' n ')' ',' shape ')'
//!             | shape
//! shape      := CIRCLE '(' n ',' n ',' n ')'
//!             | RECT '(' n ',' n ',' n ',' n ')'
//!             | NEIGHBORS '(' n ',' n ',' n ')'
//! comparison := column op n          op ∈ {=, <, >, <=, >=, <>}
//! between    := column BETWEEN n AND n
//! ```
//!
//! `CIRCLE`/`RECT`/`POINT` accept an optional leading `'J2000'` string
//! argument, as SkyServer's HTM functions do; it is ignored.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// What the query returns.
    pub projection: Projection,
    /// Row cap (`SELECT TOP n`).
    pub top: Option<u64>,
    /// Table name as written.
    pub table: String,
    /// Optional alias (`FROM PhotoObj p`).
    pub alias: Option<String>,
    /// Conjunctive WHERE predicates (empty = no WHERE clause).
    pub predicates: Vec<Predicate>,
    /// Currency requirement `t(q)` in event ticks (`WITH TOLERANCE n`);
    /// `None` means the system default (zero: fully current).
    pub tolerance: Option<u64>,
}

/// The SELECT list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Projection {
    /// `SELECT *` — every column.
    All,
    /// `SELECT COUNT(*)` — an aggregate with a tiny result.
    Count,
    /// An explicit column list.
    Columns(Vec<String>),
}

/// One conjunct of the WHERE clause.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// A spatial constraint.
    Spatial(Shape),
    /// `column op value`.
    Compare {
        /// Column name (alias-stripped).
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal value.
        value: f64,
    },
    /// `column BETWEEN lo AND hi`.
    Between {
        /// Column name (alias-stripped).
        column: String,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// A parenthesized disjunction of attribute predicates:
    /// `(p1 OR p2 OR ...)`. Spatial shapes are not allowed inside a
    /// disjunction (the analyzer rejects them); selectivities combine by
    /// inclusion–exclusion under independence.
    AnyOf(Vec<Predicate>),
}

/// A spatial footprint literal.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// `CIRCLE(ra, dec, radius_deg)` — a cone search.
    Circle {
        /// Center right ascension, degrees.
        ra: f64,
        /// Center declination, degrees.
        dec: f64,
        /// Angular radius, degrees.
        radius_deg: f64,
    },
    /// `RECT(ra_min, dec_min, ra_max, dec_max)` — an RA/Dec rectangle.
    Rect {
        /// Western edge, degrees.
        ra_min: f64,
        /// Southern edge, degrees.
        dec_min: f64,
        /// Eastern edge, degrees.
        ra_max: f64,
        /// Northern edge, degrees.
        dec_max: f64,
    },
    /// `NEIGHBORS(ra, dec, radius_deg)` — a spatial self-join
    /// neighbourhood search (SkyServer's `fGetNearbyObjEq` idiom).
    Neighbors {
        /// Center right ascension, degrees.
        ra: f64,
        /// Center declination, degrees.
        dec: f64,
        /// Pair-search radius, degrees.
        radius_deg: f64,
    },
}

/// Comparison operator of a [`Predicate::Compare`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<>` / `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "<>",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Circle {
                ra,
                dec,
                radius_deg,
            } => {
                write!(f, "CIRCLE({ra}, {dec}, {radius_deg})")
            }
            Shape::Rect {
                ra_min,
                dec_min,
                ra_max,
                dec_max,
            } => {
                write!(f, "RECT({ra_min}, {dec_min}, {ra_max}, {dec_max})")
            }
            Shape::Neighbors {
                ra,
                dec,
                radius_deg,
            } => {
                write!(f, "NEIGHBORS({ra}, {dec}, {radius_deg})")
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Spatial(s) => write!(f, "{s}"),
            Predicate::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Predicate::AnyOf(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::All => f.write_str("*"),
            Projection::Count => f.write_str("COUNT(*)"),
            Projection::Columns(cols) => f.write_str(&cols.join(", ")),
        }
    }
}

impl fmt::Display for Query {
    /// Renders the query back to parseable SQL (used by the round-trip
    /// property tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if let Some(n) = self.top {
            write!(f, "TOP {n} ")?;
        }
        write!(f, "{} FROM {}", self.projection, self.table)?;
        if let Some(a) = &self.alias {
            write!(f, " {a}")?;
        }
        if !self.predicates.is_empty() {
            f.write_str(" WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if let Some(t) = self.tolerance {
            write!(f, " WITH TOLERANCE {t}")?;
        }
        Ok(())
    }
}

impl Query {
    /// All column names referenced in the WHERE clause.
    pub fn referenced_columns(&self) -> Vec<&str> {
        self.predicates.iter().flat_map(collect_columns).collect()
    }

    /// Whether any predicate constrains the query spatially (including
    /// RA/Dec range predicates, which the analyzer turns into a
    /// rectangle).
    pub fn has_spatial_constraint(&self) -> bool {
        fn spatial(p: &Predicate) -> bool {
            match p {
                Predicate::Spatial(_) => true,
                Predicate::Compare { column, .. } | Predicate::Between { column, .. } => {
                    column.eq_ignore_ascii_case("ra") || column.eq_ignore_ascii_case("dec")
                }
                Predicate::AnyOf(ps) => ps.iter().any(spatial),
            }
        }
        self.predicates.iter().any(spatial)
    }
}

/// All column names referenced by one predicate (recursing into
/// disjunctions).
fn collect_columns(p: &Predicate) -> Vec<&str> {
    match p {
        Predicate::Compare { column, .. } | Predicate::Between { column, .. } => {
            vec![column.as_str()]
        }
        Predicate::Spatial(_) => Vec::new(),
        Predicate::AnyOf(ps) => ps.iter().flat_map(collect_columns).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query {
            projection: Projection::Columns(vec!["ra".into(), "dec".into(), "g".into()]),
            top: Some(100),
            table: "PhotoObj".into(),
            alias: Some("p".into()),
            predicates: vec![
                Predicate::Spatial(Shape::Circle {
                    ra: 185.0,
                    dec: 15.5,
                    radius_deg: 0.5,
                }),
                Predicate::Between {
                    column: "g".into(),
                    lo: 17.0,
                    hi: 19.5,
                },
                Predicate::Compare {
                    column: "type".into(),
                    op: CmpOp::Eq,
                    value: 6.0,
                },
            ],
            tolerance: Some(50),
        }
    }

    #[test]
    fn display_is_parseable_sql() {
        let q = sample();
        let sql = q.to_string();
        assert_eq!(
            sql,
            "SELECT TOP 100 ra, dec, g FROM PhotoObj p WHERE \
             CIRCLE(185, 15.5, 0.5) AND g BETWEEN 17 AND 19.5 AND type = 6 \
             WITH TOLERANCE 50"
        );
    }

    #[test]
    fn referenced_columns_skips_spatial() {
        let q = sample();
        assert_eq!(q.referenced_columns(), vec!["g", "type"]);
    }

    #[test]
    fn spatial_constraint_detection() {
        let mut q = sample();
        assert!(q.has_spatial_constraint());
        q.predicates.clear();
        assert!(!q.has_spatial_constraint());
        q.predicates.push(Predicate::Between {
            column: "ra".into(),
            lo: 10.0,
            hi: 20.0,
        });
        assert!(q.has_spatial_constraint());
    }
}
