//! Semantic analysis: validate a parsed query against the schema and
//! derive its spatial footprint, selectivity and workload classification.
//!
//! This is the front half of the "semantic framework that determines the
//! mapping between the query, q, and the data objects, B(q)" the paper
//! requires of any VCover implementation (§4): queries specify a spatial
//! region, objects are spatial partitions, so the footprint is what links
//! the two.

use crate::ast::{CmpOp, Predicate, Projection, Query, Shape};
use crate::error::AnalyzeError;
use crate::schema::{Schema, Table};
use delta_htm::Region;
use delta_workload::QueryKind;

/// Everything the middleware needs to know about a query, short of the
/// concrete object IDs (which depend on the partition; see
/// [`crate::Compiler`]).
#[derive(Clone, Debug)]
pub struct AnalyzedQuery {
    /// The validated parse tree.
    pub query: Query,
    /// The sky footprint the query touches.
    pub region: Region,
    /// Fraction of footprint rows surviving the non-spatial predicates,
    /// in `(0, 1]`.
    pub selectivity: f64,
    /// Bytes of one result row under the query's projection.
    pub row_width: u64,
    /// Row count cap (`TOP n`), if any.
    pub row_cap: Option<u64>,
    /// Workload classification, per the paper's §6.1 taxonomy.
    pub kind: QueryKind,
    /// Currency requirement `t(q)` in ticks (0 when unspecified).
    pub tolerance: u64,
}

/// Validates `query` against `schema` and derives its footprint.
///
/// # Errors
/// Returns [`AnalyzeError`] for unknown tables/columns, invalid geometry
/// (negative radius, out-of-range declination) or contradictory
/// predicates.
pub fn analyze(query: Query, schema: &Schema) -> Result<AnalyzedQuery, AnalyzeError> {
    let table = schema.table(&query.table)?;

    // Column validation for the projection.
    let row_width = match &query.projection {
        Projection::All => table.full_row_width(),
        Projection::Count => 8,
        Projection::Columns(cols) => table.projected_row_width(cols)?,
    };

    // Column validation + selectivity for the WHERE clause, plus the
    // spatial parts (explicit shapes and RA/Dec range predicates).
    let mut selectivity = 1.0f64;
    let mut shapes: Vec<Shape> = Vec::new();
    let mut ra_range: Option<(f64, f64)> = None;
    let mut dec_range: Option<(f64, f64)> = None;

    for p in &query.predicates {
        match p {
            Predicate::AnyOf(arms) => {
                selectivity *= disjunction_selectivity(table, arms)?;
            }
            Predicate::Spatial(s) => {
                validate_shape(s)?;
                shapes.push(*s);
            }
            Predicate::Between { column, lo, hi } => {
                let col = lookup(table, column)?;
                if is_ra(column) {
                    ra_range = Some(merge_range(ra_range, (*lo, *hi), column)?);
                } else if is_dec(column) {
                    dec_range = Some(merge_range(dec_range, (*lo, *hi), column)?);
                } else {
                    selectivity *= range_selectivity(col.min, col.max, *lo, *hi);
                }
            }
            Predicate::Compare { column, op, value } => {
                let col = lookup(table, column)?;
                if is_ra(column) || is_dec(column) {
                    let (lo, hi) = half_range(col.min, col.max, *op, *value);
                    if is_ra(column) {
                        ra_range = Some(merge_range(ra_range, (lo, hi), column)?);
                    } else {
                        dec_range = Some(merge_range(dec_range, (lo, hi), column)?);
                    }
                } else {
                    selectivity *= compare_selectivity(col.min, col.max, *op, *value);
                }
            }
        }
    }

    // RA/Dec range predicates form a rectangle footprint.
    if ra_range.is_some() || dec_range.is_some() {
        let (ra_min, ra_max) = ra_range.unwrap_or((0.0, 360.0));
        let (dec_min, dec_max) = dec_range.unwrap_or((-90.0, 90.0));
        validate_rect(ra_min, dec_min, ra_max, dec_max)?;
        shapes.push(Shape::Rect {
            ra_min,
            dec_min,
            ra_max,
            dec_max,
        });
    }

    // Conservative intersection of multiple footprints: keep the one with
    // the smallest solid angle (any sound cover of the true intersection
    // is a subset of each shape's cover; the smallest gives the tightest
    // B(q) we can produce without exact intersection geometry).
    let region = shapes
        .iter()
        .map(shape_region)
        .min_by(|a, b| solid_angle(a).total_cmp(&solid_angle(b)))
        .unwrap_or(Region::All);

    let kind = classify(&query, &shapes, &region);
    let selectivity = selectivity.clamp(1e-9, 1.0);
    Ok(AnalyzedQuery {
        tolerance: query.tolerance.unwrap_or(0),
        row_cap: query.top,
        query,
        region,
        selectivity,
        row_width,
        kind,
    })
}

/// Selectivity of `(p1 OR p2 OR ...)` over attribute predicates, by
/// inclusion–exclusion under independence: `1 - Π(1 - s_i)`.
///
/// # Errors
/// Rejects spatial shapes and RA/Dec constraints inside a disjunction —
/// a disjunctive footprint would need union regions, which the footprint
/// model (one conservative region per query) does not represent.
fn disjunction_selectivity(table: &Table, arms: &[Predicate]) -> Result<f64, AnalyzeError> {
    let mut miss = 1.0f64;
    for p in arms {
        let s = match p {
            Predicate::Spatial(_) => {
                return Err(AnalyzeError::InvalidGeometry(
                    "spatial shapes are not allowed inside OR groups".into(),
                ))
            }
            Predicate::AnyOf(inner) => disjunction_selectivity(table, inner)?,
            Predicate::Between { column, lo, hi } => {
                if is_ra(column) || is_dec(column) {
                    return Err(AnalyzeError::InvalidGeometry(
                        "RA/Dec constraints are not allowed inside OR groups".into(),
                    ));
                }
                let col = lookup(table, column)?;
                range_selectivity(col.min, col.max, *lo, *hi)
            }
            Predicate::Compare { column, op, value } => {
                if is_ra(column) || is_dec(column) {
                    return Err(AnalyzeError::InvalidGeometry(
                        "RA/Dec constraints are not allowed inside OR groups".into(),
                    ));
                }
                let col = lookup(table, column)?;
                compare_selectivity(col.min, col.max, *op, *value)
            }
        };
        miss *= 1.0 - s.clamp(0.0, 1.0);
    }
    Ok((1.0 - miss).clamp(1e-9, 1.0))
}

fn lookup<'t>(table: &'t Table, column: &str) -> Result<&'t crate::schema::Column, AnalyzeError> {
    table
        .column(column)
        .ok_or_else(|| AnalyzeError::UnknownColumn {
            column: column.to_string(),
            table: table.name.to_string(),
        })
}

fn is_ra(column: &str) -> bool {
    column.eq_ignore_ascii_case("ra")
}

fn is_dec(column: &str) -> bool {
    column.eq_ignore_ascii_case("dec")
}

fn merge_range(
    existing: Option<(f64, f64)>,
    new: (f64, f64),
    column: &str,
) -> Result<(f64, f64), AnalyzeError> {
    let merged = match existing {
        None => new,
        Some((lo, hi)) => (lo.max(new.0), hi.min(new.1)),
    };
    if merged.0 > merged.1 {
        return Err(AnalyzeError::EmptyPredicate(format!(
            "constraints on `{column}` have empty intersection"
        )));
    }
    Ok(merged)
}

fn half_range(min: f64, max: f64, op: CmpOp, value: f64) -> (f64, f64) {
    match op {
        CmpOp::Lt | CmpOp::Le => (min, value.min(max)),
        CmpOp::Gt | CmpOp::Ge => (value.max(min), max),
        CmpOp::Eq => (value, value),
        // `<>` on a continuous coordinate excludes a measure-zero set.
        CmpOp::Ne => (min, max),
    }
}

/// Fraction of a uniform `[min, max]` column surviving `BETWEEN lo AND hi`.
fn range_selectivity(min: f64, max: f64, lo: f64, hi: f64) -> f64 {
    let width = (max - min).max(f64::MIN_POSITIVE);
    let overlap = (hi.min(max) - lo.max(min)).max(0.0);
    (overlap / width).clamp(0.0, 1.0).max(1e-9)
}

/// Selectivity of `column op value` under a uniform value model.
fn compare_selectivity(min: f64, max: f64, op: CmpOp, value: f64) -> f64 {
    let width = (max - min).max(f64::MIN_POSITIVE);
    let frac_below = ((value - min) / width).clamp(0.0, 1.0);
    // Equality selects a "bucket": discrete codes (small ranges like
    // `type` 0..=9) select ~1/range; wide continuous columns select a
    // sliver.
    let eq_frac = (1.0 / width).clamp(1e-9, 1.0);
    match op {
        CmpOp::Lt | CmpOp::Le => frac_below.max(1e-9),
        CmpOp::Gt | CmpOp::Ge => (1.0 - frac_below).max(1e-9),
        CmpOp::Eq => eq_frac,
        CmpOp::Ne => (1.0 - eq_frac).max(1e-9),
    }
}

fn validate_shape(s: &Shape) -> Result<(), AnalyzeError> {
    match *s {
        Shape::Circle {
            ra,
            dec,
            radius_deg,
        }
        | Shape::Neighbors {
            ra,
            dec,
            radius_deg,
        } => {
            if !(0.0..=360.0).contains(&ra) {
                return Err(AnalyzeError::InvalidGeometry(format!(
                    "RA {ra} outside [0, 360]"
                )));
            }
            if !(-90.0..=90.0).contains(&dec) {
                return Err(AnalyzeError::InvalidGeometry(format!(
                    "Dec {dec} outside [-90, 90]"
                )));
            }
            if !(radius_deg > 0.0 && radius_deg <= 180.0) {
                return Err(AnalyzeError::InvalidGeometry(format!(
                    "radius {radius_deg} outside (0, 180]"
                )));
            }
            Ok(())
        }
        Shape::Rect {
            ra_min,
            dec_min,
            ra_max,
            dec_max,
        } => validate_rect(ra_min, dec_min, ra_max, dec_max),
    }
}

fn validate_rect(ra_min: f64, dec_min: f64, ra_max: f64, dec_max: f64) -> Result<(), AnalyzeError> {
    for ra in [ra_min, ra_max] {
        if !(0.0..=360.0).contains(&ra) {
            return Err(AnalyzeError::InvalidGeometry(format!(
                "RA {ra} outside [0, 360]"
            )));
        }
    }
    for dec in [dec_min, dec_max] {
        if !(-90.0..=90.0).contains(&dec) {
            return Err(AnalyzeError::InvalidGeometry(format!(
                "Dec {dec} outside [-90, 90]"
            )));
        }
    }
    if dec_min > dec_max {
        return Err(AnalyzeError::InvalidGeometry(format!(
            "Dec range inverted ({dec_min} > {dec_max})"
        )));
    }
    // RA may wrap (ra_min > ra_max means the range crosses RA = 0).
    Ok(())
}

fn shape_region(s: &Shape) -> Region {
    match *s {
        Shape::Circle {
            ra,
            dec,
            radius_deg,
        }
        | Shape::Neighbors {
            ra,
            dec,
            radius_deg,
        } => Region::cone_deg(ra, dec, radius_deg),
        Shape::Rect {
            ra_min,
            dec_min,
            ra_max,
            dec_max,
        } => Region::RaDecRect {
            ra_min,
            ra_max,
            dec_min,
            dec_max,
        },
    }
}

/// Solid angle of a region in steradians (exact for cones/rects, 4π for
/// the whole sky, band formula for scans).
pub fn solid_angle(r: &Region) -> f64 {
    use std::f64::consts::PI;
    match *r {
        Region::Cone { radius_rad, .. } => 2.0 * PI * (1.0 - radius_rad.cos()),
        Region::RaDecRect {
            ra_min,
            ra_max,
            dec_min,
            dec_max,
        } => {
            let dra = if ra_max >= ra_min {
                ra_max - ra_min
            } else {
                360.0 - ra_min + ra_max
            };
            dra.to_radians() * (dec_max.to_radians().sin() - dec_min.to_radians().sin()).abs()
        }
        Region::GreatCircleBand { half_width_rad, .. } => 4.0 * PI * half_width_rad.sin(),
        Region::All => 4.0 * PI,
    }
}

fn classify(query: &Query, shapes: &[Shape], region: &Region) -> QueryKind {
    if shapes.iter().any(|s| matches!(s, Shape::Neighbors { .. })) {
        return QueryKind::SelfJoin;
    }
    if query.projection == Projection::Count {
        return QueryKind::Aggregate;
    }
    // Point lookup on a key column.
    let key_lookup = query.predicates.iter().any(|p| {
        matches!(p, Predicate::Compare { column, op: CmpOp::Eq, .. }
                 if column.eq_ignore_ascii_case("objID")
                 || column.eq_ignore_ascii_case("specObjID")
                 || column.eq_ignore_ascii_case("htmID"))
    });
    if key_lookup {
        return QueryKind::Selection;
    }
    match region {
        Region::Cone { .. } => QueryKind::Cone,
        Region::RaDecRect { .. } => QueryKind::Range,
        Region::GreatCircleBand { .. } | Region::All => QueryKind::Scan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn analyzed(sql: &str) -> AnalyzedQuery {
        analyze(parse(sql).unwrap(), &Schema::sdss()).unwrap()
    }

    #[test]
    fn cone_query_gets_cone_region() {
        let a = analyzed("SELECT ra, dec FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 0.5)");
        assert!(matches!(a.region, Region::Cone { .. }));
        assert_eq!(a.kind, QueryKind::Cone);
        assert_eq!(a.row_width, 16);
        assert_eq!(a.tolerance, 0);
    }

    #[test]
    fn radec_betweens_become_rect() {
        let a = analyzed(
            "SELECT * FROM PhotoObj WHERE ra BETWEEN 180 AND 190 AND dec BETWEEN 10 AND 20",
        );
        match a.region {
            Region::RaDecRect {
                ra_min,
                ra_max,
                dec_min,
                dec_max,
            } => {
                assert_eq!(
                    (ra_min, ra_max, dec_min, dec_max),
                    (180.0, 190.0, 10.0, 20.0)
                );
            }
            other => panic!("expected rect, got {other:?}"),
        }
        assert_eq!(a.kind, QueryKind::Range);
        // Coordinate predicates must not contribute to attribute
        // selectivity: the footprint already accounts for them.
        assert!((a.selectivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smallest_shape_wins_for_multiple_footprints() {
        let a =
            analyzed("SELECT ra FROM PhotoObj WHERE RECT(0, -90, 360, 90) AND CIRCLE(10, 0, 0.1)");
        match a.region {
            Region::Cone { radius_rad, .. } => {
                assert!((radius_rad - 0.1f64.to_radians()).abs() < 1e-12)
            }
            other => panic!("expected the tight cone, got {other:?}"),
        }
    }

    #[test]
    fn selectivity_multiplies_across_attribute_predicates() {
        let a = analyzed("SELECT ra FROM PhotoObj WHERE g BETWEEN 17 AND 19 AND r < 19");
        // g: 2/10 of [14,24]; r: 5/10 below 19.
        assert!((a.selectivity - 0.2 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn count_star_is_aggregate_with_tiny_rows() {
        let a = analyzed("SELECT COUNT(*) FROM PhotoObj WHERE RECT(10, -5, 20, 5)");
        assert_eq!(a.kind, QueryKind::Aggregate);
        assert_eq!(a.row_width, 8);
    }

    #[test]
    fn neighbors_is_selfjoin() {
        let a = analyzed("SELECT * FROM PhotoObj WHERE NEIGHBORS(185.0, 15.3, 0.05)");
        assert_eq!(a.kind, QueryKind::SelfJoin);
    }

    #[test]
    fn objid_equality_is_selection() {
        let a = analyzed("SELECT * FROM PhotoObj WHERE objID = 1237648720693755918");
        assert_eq!(a.kind, QueryKind::Selection);
    }

    #[test]
    fn no_where_clause_is_all_sky_scan() {
        let a = analyzed("SELECT COUNT(*) FROM SpecObj");
        // Count outranks scan in classification.
        assert_eq!(a.kind, QueryKind::Aggregate);
        assert!(matches!(a.region, Region::All));
        let b = analyzed("SELECT ra FROM SpecObj");
        assert_eq!(b.kind, QueryKind::Scan);
    }

    #[test]
    fn unknown_column_rejected() {
        let err = analyze(
            parse("SELECT ra FROM PhotoObj WHERE warp < 3").unwrap(),
            &Schema::sdss(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::UnknownColumn { .. }));
    }

    #[test]
    fn contradictory_ranges_rejected() {
        let err = analyze(
            parse("SELECT ra FROM PhotoObj WHERE ra BETWEEN 10 AND 20 AND ra BETWEEN 30 AND 40")
                .unwrap(),
            &Schema::sdss(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::EmptyPredicate(_)));
    }

    #[test]
    fn negative_radius_rejected() {
        let err = analyze(
            parse("SELECT ra FROM PhotoObj WHERE CIRCLE(10, 10, -1)").unwrap(),
            &Schema::sdss(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::InvalidGeometry(_)));
    }

    #[test]
    fn solid_angles_are_sane() {
        use std::f64::consts::PI;
        assert!((solid_angle(&Region::All) - 4.0 * PI).abs() < 1e-12);
        let hemisphere = Region::RaDecRect {
            ra_min: 0.0,
            ra_max: 360.0,
            dec_min: 0.0,
            dec_max: 90.0,
        };
        assert!((solid_angle(&hemisphere) - 2.0 * PI).abs() < 1e-9);
        let tiny = solid_angle(&Region::cone_deg(0.0, 0.0, 0.01));
        assert!(tiny > 0.0 && tiny < 1e-4);
    }

    #[test]
    fn wrapping_ra_rect_allowed() {
        let a = analyzed("SELECT ra FROM PhotoObj WHERE RECT(350, -5, 10, 5)");
        let sa = solid_angle(&a.region);
        let direct = solid_angle(&Region::RaDecRect {
            ra_min: 0.0,
            ra_max: 20.0,
            dec_min: -5.0,
            dec_max: 5.0,
        });
        assert!(
            (sa - direct).abs() < 1e-9,
            "wrap-around covers 20 degrees of RA"
        );
    }
}
#[cfg(test)]
mod or_analysis_tests {
    use super::*;
    use crate::parse;

    #[test]
    fn disjunction_selectivity_uses_inclusion_exclusion() {
        // g < 19 selects 0.5 of [14,24]; r < 19 likewise. OR under
        // independence: 1 - 0.5*0.5 = 0.75.
        let a = analyze(
            parse("SELECT ra FROM PhotoObj WHERE (g < 19 OR r < 19)").unwrap(),
            &Schema::sdss(),
        )
        .unwrap();
        assert!((a.selectivity - 0.75).abs() < 1e-9, "got {}", a.selectivity);
    }

    #[test]
    fn disjunction_never_shrinks_below_strongest_arm() {
        let single = analyze(
            parse("SELECT ra FROM PhotoObj WHERE g < 16").unwrap(),
            &Schema::sdss(),
        )
        .unwrap();
        let or = analyze(
            parse("SELECT ra FROM PhotoObj WHERE (g < 16 OR r < 15)").unwrap(),
            &Schema::sdss(),
        )
        .unwrap();
        assert!(or.selectivity >= single.selectivity);
    }

    #[test]
    fn spatial_inside_or_rejected() {
        let err = analyze(
            parse("SELECT ra FROM PhotoObj WHERE (CIRCLE(1, 1, 1) OR g < 18)").unwrap(),
            &Schema::sdss(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::InvalidGeometry(_)));
    }

    #[test]
    fn radec_inside_or_rejected() {
        let err = analyze(
            parse("SELECT ra FROM PhotoObj WHERE (ra < 100 OR g < 18)").unwrap(),
            &Schema::sdss(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::InvalidGeometry(_)));
    }

    #[test]
    fn unknown_column_inside_or_rejected() {
        let err = analyze(
            parse("SELECT ra FROM PhotoObj WHERE (bogus < 18 OR g < 18)").unwrap(),
            &Schema::sdss(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::UnknownColumn { .. }));
    }
}
