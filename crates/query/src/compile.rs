//! Compilation: SQL text → a priced, object-mapped [`QueryEvent`].
//!
//! [`Compiler`] bundles the schema (validation and row widths), the sky
//! model (result-size estimation) and the spatial mapper (footprint →
//! `B(q)`), completing the semantic framework of §4: given a query string
//! it produces exactly the event the decoupling framework consumes.

use crate::analyze::{analyze, AnalyzedQuery};
use crate::error::QueryError;
use crate::estimate::{Estimator, SizeEstimate};
use crate::parser::parse;
use crate::schema::Schema;
use delta_storage::{ObjectId, SpatialMapper};
use delta_workload::{QueryEvent, SkyModel};

/// A compiled query: the analysis plus the concrete object set and price.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// The analyzed query (footprint, selectivity, classification).
    pub analyzed: AnalyzedQuery,
    /// The data objects the query accesses — the paper's `B(q)`.
    pub objects: Vec<ObjectId>,
    /// The estimated result size — the paper's ν(q).
    pub estimate: SizeEstimate,
}

impl CompiledQuery {
    /// Materializes the trace event at sequence number `seq`.
    pub fn into_event(self, seq: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: self.objects,
            result_bytes: self.estimate.bytes,
            tolerance: self.analyzed.tolerance,
            kind: self.analyzed.kind,
        }
    }
}

/// The query frontend: compiles SQL text into middleware events.
///
/// ```
/// use delta_query::{Compiler, Schema};
/// use delta_htm::Partition;
/// use delta_storage::SpatialMapper;
/// use delta_workload::SkyModel;
///
/// let sky = SkyModel::sdss_like(7, 12);
/// let mapper = SpatialMapper::new(Partition::adaptive(|t| t.solid_angle(), 68));
/// let compiler = Compiler::new(Schema::sdss(), sky, mapper);
/// let q = compiler.compile(
///     "SELECT ra, dec, g FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 0.5) WITH TOLERANCE 10",
/// )?;
/// assert!(!q.objects.is_empty());
/// assert!(q.estimate.bytes > 0);
/// # Ok::<(), delta_query::QueryError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Compiler {
    schema: Schema,
    sky: SkyModel,
    mapper: SpatialMapper,
    samples: usize,
}

// The server hands one compiler clone to every connection thread; keep
// the frontend shippable across threads by construction.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Compiler>();
};

impl Compiler {
    /// Creates a compiler over a schema, sky model and object partition.
    pub fn new(schema: Schema, sky: SkyModel, mapper: SpatialMapper) -> Self {
        Self {
            schema,
            sky,
            mapper,
            samples: 512,
        }
    }

    /// Overrides the density-integration sample budget (default 512).
    ///
    /// # Panics
    /// Panics if `samples` is zero.
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample budget must be positive");
        self.samples = samples;
        self
    }

    /// The schema queries are validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The spatial mapper resolving footprints to objects.
    pub fn mapper(&self) -> &SpatialMapper {
        &self.mapper
    }

    /// Compiles one SQL query.
    ///
    /// # Errors
    /// Returns [`QueryError`] when the text does not parse or does not
    /// validate against the schema.
    pub fn compile(&self, sql: &str) -> Result<CompiledQuery, QueryError> {
        let parsed = parse(sql)?;
        let analyzed = analyze(parsed, &self.schema)?;
        let table = self.schema.table(&analyzed.query.table)?;
        let estimator = Estimator::with_samples(&self.sky, self.samples);
        let estimate = estimator.estimate(&analyzed, table);
        let objects = self.mapper.objects_for(&analyzed.region);
        Ok(CompiledQuery {
            analyzed,
            objects,
            estimate,
        })
    }

    /// Compiles one SQL query straight to the trace event at sequence
    /// number `seq` — the one-call path wire servers use.
    ///
    /// # Errors
    /// Returns [`QueryError`] when the text does not parse or does not
    /// validate against the schema.
    pub fn compile_event(&self, sql: &str, seq: u64) -> Result<QueryEvent, QueryError> {
        Ok(self.compile(sql)?.into_event(seq))
    }

    /// Compiles a batch of queries, assigning consecutive sequence
    /// numbers starting at `first_seq`.
    ///
    /// # Errors
    /// Fails on the first query that does not compile, reporting its
    /// index alongside the error.
    pub fn compile_batch(
        &self,
        sqls: &[&str],
        first_seq: u64,
    ) -> Result<Vec<QueryEvent>, (usize, QueryError)> {
        sqls.iter()
            .enumerate()
            .map(|(i, sql)| {
                self.compile(sql)
                    .map(|c| c.into_event(first_seq + i as u64))
                    .map_err(|e| (i, e))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_htm::Partition;
    use delta_workload::QueryKind;

    fn compiler() -> Compiler {
        let sky = SkyModel::sdss_like(7, 12);
        let mapper = SpatialMapper::new(Partition::adaptive(|t| t.solid_angle(), 68));
        Compiler::new(Schema::sdss(), sky, mapper).with_samples(256)
    }

    #[test]
    fn cone_query_maps_to_objects() {
        let c = compiler();
        let q = c
            .compile("SELECT ra FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 0.5)")
            .unwrap();
        assert!(!q.objects.is_empty());
        assert!(
            q.objects.len() < 68,
            "a half-degree cone is not the whole sky"
        );
        assert_eq!(q.analyzed.kind, QueryKind::Cone);
    }

    #[test]
    fn footprint_objects_contain_the_center() {
        let c = compiler();
        let q = c
            .compile("SELECT ra FROM PhotoObj WHERE CIRCLE(200.0, -40.0, 1.0)")
            .unwrap();
        let center = c
            .mapper()
            .object_at(delta_htm::Vec3::from_radec_deg(200.0, -40.0));
        assert!(q.objects.contains(&center));
    }

    #[test]
    fn all_sky_scan_touches_everything() {
        let c = compiler();
        let q = c.compile("SELECT ra FROM PhotoObj").unwrap();
        assert_eq!(q.objects.len(), 68);
        assert_eq!(q.analyzed.kind, QueryKind::Scan);
    }

    #[test]
    fn tolerance_flows_into_event() {
        let c = compiler();
        let ev = c
            .compile("SELECT ra FROM PhotoObj WHERE CIRCLE(10, 10, 1) WITH TOLERANCE 42")
            .unwrap()
            .into_event(1000);
        assert_eq!(ev.seq, 1000);
        assert_eq!(ev.tolerance, 42);
        assert!(ev.result_bytes > 0);
    }

    #[test]
    fn batch_compilation_sequences_events() {
        let c = compiler();
        let evs = c
            .compile_batch(
                &[
                    "SELECT ra FROM PhotoObj WHERE CIRCLE(10, 10, 1)",
                    "SELECT COUNT(*) FROM PhotoObj WHERE RECT(10, -5, 20, 5)",
                ],
                5,
            )
            .unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 5);
        assert_eq!(evs[1].seq, 6);
        assert_eq!(evs[1].kind, QueryKind::Aggregate);
    }

    #[test]
    fn batch_reports_failing_index() {
        let c = compiler();
        let err = c
            .compile_batch(&["SELECT ra FROM PhotoObj", "SELECT zap FROM PhotoObj"], 0)
            .unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let c = compiler();
        assert!(matches!(c.compile("SELEC oops"), Err(QueryError::Parse(_))));
        assert!(matches!(
            c.compile("SELECT ra FROM NoTable"),
            Err(QueryError::Analyze(_))
        ));
    }

    #[test]
    fn wider_cone_costs_more() {
        let c = compiler();
        let narrow = c
            .compile("SELECT * FROM PhotoObj WHERE CIRCLE(185, 15, 0.2)")
            .unwrap()
            .estimate;
        let wide = c
            .compile("SELECT * FROM PhotoObj WHERE CIRCLE(185, 15, 2.0)")
            .unwrap()
            .estimate;
        assert!(wide.bytes > narrow.bytes);
    }
}
