//! Lexer for the SkyServer-style SQL subset.
//!
//! Keywords are case-insensitive, as in SQL. Identifiers keep their
//! original spelling (SDSS column names are case-sensitive only by
//! convention; we compare case-insensitively in the schema layer).

use crate::error::{ParseError, Span};
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Case-insensitive SQL keyword.
    Keyword(Keyword),
    /// Identifier (table, column or alias name).
    Ident(String),
    /// Numeric literal (integers are parsed as floats; the parser
    /// re-validates integrality where the grammar requires it).
    Number(f64),
    /// Single-quoted string literal (used for coordinate-system tags like
    /// `'J2000'`, which we accept and ignore, as SkyServer does).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `.` (qualified names such as `p.ra`)
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<>` or `!=`
    Ne,
    /// End of input.
    Eof,
}

/// The reserved words of the subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Top,
    Count,
    From,
    Where,
    And,
    Or,
    Between,
    With,
    Tolerance,
    Contains,
    Point,
    Circle,
    Rect,
    As,
    Neighbors,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "TOP" => Keyword::Top,
            "COUNT" => Keyword::Count,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "BETWEEN" => Keyword::Between,
            "WITH" => Keyword::With,
            "TOLERANCE" => Keyword::Tolerance,
            "CONTAINS" => Keyword::Contains,
            "POINT" => Keyword::Point,
            "CIRCLE" => Keyword::Circle,
            "RECT" => Keyword::Rect,
            "AS" => Keyword::As,
            "NEIGHBORS" => Keyword::Neighbors,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
            Token::Star => write!(f, "`*`"),
            Token::Dot => write!(f, "`.`"),
            Token::Eq => write!(f, "`=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Gt => write!(f, "`>`"),
            Token::Le => write!(f, "`<=`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Ne => write!(f, "`<>`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus the byte range it came from (for error reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Source byte range.
    pub span: Span,
}

/// Tokenizes `input` into a vector ending with [`Token::Eof`].
///
/// # Errors
/// Returns [`ParseError`] on unterminated strings, malformed numbers or
/// characters outside the subset.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(tok(Token::LParen, start, i + 1));
                i += 1;
            }
            ')' => {
                out.push(tok(Token::RParen, start, i + 1));
                i += 1;
            }
            ',' => {
                out.push(tok(Token::Comma, start, i + 1));
                i += 1;
            }
            '*' => {
                out.push(tok(Token::Star, start, i + 1));
                i += 1;
            }
            '.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                out.push(tok(Token::Dot, start, i + 1));
                i += 1;
            }
            '=' => {
                out.push(tok(Token::Eq, start, i + 1));
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(tok(Token::Ne, start, i + 2));
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(tok(Token::Le, start, i + 2));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(tok(Token::Ne, start, i + 2));
                    i += 2;
                } else {
                    out.push(tok(Token::Lt, start, i + 1));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(tok(Token::Ge, start, i + 2));
                    i += 2;
                } else {
                    out.push(tok(Token::Gt, start, i + 1));
                    i += 1;
                }
            }
            '\'' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span {
                            start,
                            end: bytes.len(),
                        },
                    ));
                }
                out.push(tok(Token::Str(input[i + 1..j].to_string()), start, j + 1));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' || c == '+' || c == '.')
                    && i + 1 < bytes.len()
                    && (bytes[i + 1].is_ascii_digit() || bytes[i + 1] == b'.') =>
            {
                let mut j = i + 1;
                let mut seen_e = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() || d == '.' {
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_e {
                        seen_e = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] == b'-' || bytes[j] == b'+') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let n: f64 = text.parse().map_err(|_| {
                    ParseError::new(
                        format!("malformed numeric literal `{text}`"),
                        Span { start, end: j },
                    )
                })?;
                out.push(tok(Token::Number(n), start, j));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                match Keyword::from_str(word) {
                    Some(k) => out.push(tok(Token::Keyword(k), start, j)),
                    None => out.push(tok(Token::Ident(word.to_string()), start, j)),
                }
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span {
                        start,
                        end: start + 1,
                    },
                ));
            }
        }
    }
    out.push(tok(Token::Eof, input.len(), input.len()));
    Ok(out)
}

fn tok(token: Token, start: usize, end: usize) -> SpannedToken {
    SpannedToken {
        token,
        span: Span { start, end },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select SELECT SeLeCt"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Select),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_with_signs_and_exponents() {
        assert_eq!(
            kinds("1 2.5 -0.75 1e3 2.5E-2 .5"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(-0.75),
                Token::Number(1000.0),
                Token::Number(0.025),
                Token::Number(0.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= < > <= >= <> !="),
            vec![
                Token::Eq,
                Token::Lt,
                Token::Gt,
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Eof
            ]
        );
    }

    #[test]
    fn qualified_identifier() {
        assert_eq!(
            kinds("p.ra"),
            vec![
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("ra".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn string_literal_and_comment() {
        assert_eq!(
            kinds("'J2000' -- trailing comment\n42"),
            vec![Token::Str("J2000".into()), Token::Number(42.0), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("select ;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn spans_point_into_source() {
        let toks = tokenize("select ra").unwrap();
        assert_eq!(toks[0].span, Span { start: 0, end: 6 });
        assert_eq!(toks[1].span, Span { start: 7, end: 9 });
    }
}
