//! Recursive-descent parser for the SkyServer-style SQL subset.

use crate::ast::{CmpOp, Predicate, Projection, Query, Shape};
use crate::error::{ParseError, Span};
use crate::token::{tokenize, Keyword, SpannedToken, Token};

/// Parses one query.
///
/// # Errors
/// Returns [`ParseError`] with a source span when the text is not a valid
/// query of the subset.
///
/// ```
/// let q = delta_query::parse(
///     "SELECT ra, dec FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 0.25) AND g < 20",
/// )?;
/// assert_eq!(q.table, "PhotoObj");
/// assert_eq!(q.predicates.len(), 2);
/// # Ok::<(), delta_query::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &Token::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {k:?}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {t}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Token::Eof => Ok(()),
            other => Err(ParseError::new(
                format!("unexpected trailing {other}"),
                self.span(),
            )),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(ParseError::new(
                format!("expected number, found {other}"),
                self.span(),
            )),
        }
    }

    fn unsigned_int(&mut self, what: &str) -> Result<u64, ParseError> {
        let span = self.span();
        let n = self.number()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(ParseError::new(
                format!("{what} must be a non-negative integer, got `{n}`"),
                span,
            ));
        }
        Ok(n as u64)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::new(
                format!("expected {what}, found {other}"),
                self.span(),
            )),
        }
    }

    /// A column reference, optionally alias-qualified (`p.ra` → `ra`).
    fn column(&mut self) -> Result<String, ParseError> {
        let first = self.ident("column name")?;
        if self.peek() == &Token::Dot {
            self.bump();
            self.ident("column name after `.`")
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let top = if self.eat_keyword(Keyword::Top) {
            Some(self.unsigned_int("TOP count")?)
        } else {
            None
        };
        let projection = self.projection()?;
        self.expect_keyword(Keyword::From)?;
        let table = self.ident("table name")?;
        let alias = match self.peek().clone() {
            Token::Ident(a) => {
                self.bump();
                Some(a)
            }
            Token::Keyword(Keyword::As) => {
                self.bump();
                Some(self.ident("alias after AS")?)
            }
            _ => None,
        };
        let mut predicates = Vec::new();
        if self.eat_keyword(Keyword::Where) {
            predicates.push(self.conjunct()?);
            while self.eat_keyword(Keyword::And) {
                predicates.push(self.conjunct()?);
            }
        }
        let tolerance = if self.eat_keyword(Keyword::With) {
            self.expect_keyword(Keyword::Tolerance)?;
            Some(self.unsigned_int("TOLERANCE")?)
        } else {
            None
        };
        Ok(Query {
            projection,
            top,
            table,
            alias,
            predicates,
            tolerance,
        })
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        match self.peek().clone() {
            Token::Star => {
                self.bump();
                Ok(Projection::All)
            }
            Token::Keyword(Keyword::Count) => {
                self.bump();
                self.expect(Token::LParen)?;
                self.expect(Token::Star)?;
                self.expect(Token::RParen)?;
                Ok(Projection::Count)
            }
            _ => {
                let mut cols = vec![self.column()?];
                while self.peek() == &Token::Comma {
                    self.bump();
                    cols.push(self.column()?);
                }
                Ok(Projection::Columns(cols))
            }
        }
    }

    fn conjunct(&mut self) -> Result<Predicate, ParseError> {
        if self.peek() == &Token::LParen {
            // Parenthesized disjunction group: ( p OR p [OR p ...] ).
            self.bump();
            let mut arms = vec![self.simple_predicate()?];
            while self.eat_keyword(Keyword::Or) {
                arms.push(self.simple_predicate()?);
            }
            self.expect(Token::RParen)?;
            return Ok(if arms.len() == 1 {
                arms.pop().expect("one arm")
            } else {
                Predicate::AnyOf(arms)
            });
        }
        self.simple_predicate()
    }

    fn simple_predicate(&mut self) -> Result<Predicate, ParseError> {
        match self.peek().clone() {
            Token::Keyword(Keyword::Contains) => {
                self.bump();
                self.expect(Token::LParen)?;
                // POINT(...) is descriptive only: the shape that follows
                // defines the footprint, matching SkyServer usage.
                self.point()?;
                self.expect(Token::Comma)?;
                let shape = self.shape()?;
                self.expect(Token::RParen)?;
                // SkyServer writes `CONTAINS(...) = 1`; accept and ignore.
                if self.peek() == &Token::Eq {
                    self.bump();
                    self.number()?;
                }
                Ok(Predicate::Spatial(shape))
            }
            Token::Keyword(Keyword::Circle)
            | Token::Keyword(Keyword::Rect)
            | Token::Keyword(Keyword::Neighbors) => Ok(Predicate::Spatial(self.shape()?)),
            _ => {
                let column = self.column()?;
                if self.eat_keyword(Keyword::Between) {
                    let span = self.span();
                    let lo = self.number()?;
                    self.expect_keyword(Keyword::And)?;
                    let hi = self.number()?;
                    if lo > hi {
                        return Err(ParseError::new(
                            format!("BETWEEN bounds are inverted ({lo} > {hi})"),
                            span,
                        ));
                    }
                    Ok(Predicate::Between { column, lo, hi })
                } else {
                    let op = self.cmp_op()?;
                    let value = self.number()?;
                    Ok(Predicate::Compare { column, op, value })
                }
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Lt => CmpOp::Lt,
            Token::Gt => CmpOp::Gt,
            Token::Le => CmpOp::Le,
            Token::Ge => CmpOp::Ge,
            Token::Ne => CmpOp::Ne,
            other => {
                return Err(ParseError::new(
                    format!("expected comparison operator, found {other}"),
                    self.span(),
                ))
            }
        };
        self.bump();
        Ok(op)
    }

    fn point(&mut self) -> Result<(f64, f64), ParseError> {
        self.expect_keyword(Keyword::Point)?;
        self.expect(Token::LParen)?;
        self.skip_frame_tag();
        let ra = self.number()?;
        self.expect(Token::Comma)?;
        let dec = self.number()?;
        self.expect(Token::RParen)?;
        Ok((ra, dec))
    }

    /// Optional leading `'J2000',` coordinate-frame tag inside geometry
    /// functions, as in SkyServer.
    fn skip_frame_tag(&mut self) {
        if let Token::Str(_) = self.peek() {
            self.bump();
            if self.peek() == &Token::Comma {
                self.bump();
            }
        }
    }

    fn shape(&mut self) -> Result<Shape, ParseError> {
        match self.bump() {
            Token::Keyword(Keyword::Circle) => {
                self.expect(Token::LParen)?;
                self.skip_frame_tag();
                let ra = self.number()?;
                self.expect(Token::Comma)?;
                let dec = self.number()?;
                self.expect(Token::Comma)?;
                let radius_deg = self.number()?;
                self.expect(Token::RParen)?;
                Ok(Shape::Circle {
                    ra,
                    dec,
                    radius_deg,
                })
            }
            Token::Keyword(Keyword::Rect) => {
                self.expect(Token::LParen)?;
                self.skip_frame_tag();
                let ra_min = self.number()?;
                self.expect(Token::Comma)?;
                let dec_min = self.number()?;
                self.expect(Token::Comma)?;
                let ra_max = self.number()?;
                self.expect(Token::Comma)?;
                let dec_max = self.number()?;
                self.expect(Token::RParen)?;
                Ok(Shape::Rect {
                    ra_min,
                    dec_min,
                    ra_max,
                    dec_max,
                })
            }
            Token::Keyword(Keyword::Neighbors) => {
                self.expect(Token::LParen)?;
                self.skip_frame_tag();
                let ra = self.number()?;
                self.expect(Token::Comma)?;
                let dec = self.number()?;
                self.expect(Token::Comma)?;
                let radius_deg = self.number()?;
                self.expect(Token::RParen)?;
                Ok(Shape::Neighbors {
                    ra,
                    dec,
                    radius_deg,
                })
            }
            other => Err(ParseError::new(
                format!("expected CIRCLE, RECT or NEIGHBORS, found {other}"),
                self.span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("SELECT * FROM PhotoObj").unwrap();
        assert_eq!(q.projection, Projection::All);
        assert_eq!(q.table, "PhotoObj");
        assert!(q.predicates.is_empty());
        assert_eq!(q.tolerance, None);
    }

    #[test]
    fn full_query() {
        let q = parse(
            "SELECT TOP 50 p.ra, p.dec, p.g FROM PhotoObj AS p \
             WHERE CONTAINS(POINT('J2000', 185.0, 15.3), CIRCLE('J2000', 185.0, 15.3, 0.25)) = 1 \
             AND p.g BETWEEN 17 AND 20 AND p.type = 6 WITH TOLERANCE 100",
        )
        .unwrap();
        assert_eq!(q.top, Some(50));
        assert_eq!(q.alias.as_deref(), Some("p"));
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.tolerance, Some(100));
        assert!(matches!(
            q.predicates[0],
            Predicate::Spatial(Shape::Circle { .. })
        ));
    }

    #[test]
    fn count_star() {
        let q = parse("SELECT COUNT(*) FROM PhotoObj WHERE RECT(10, -5, 20, 5)").unwrap();
        assert_eq!(q.projection, Projection::Count);
        assert!(matches!(
            q.predicates[0],
            Predicate::Spatial(Shape::Rect { .. })
        ));
    }

    #[test]
    fn neighbors_shape() {
        let q = parse("SELECT * FROM PhotoObj WHERE NEIGHBORS(185.0, 15.3, 0.05)").unwrap();
        assert!(matches!(
            q.predicates[0],
            Predicate::Spatial(Shape::Neighbors { .. })
        ));
    }

    #[test]
    fn bare_circle_without_contains() {
        let q = parse("SELECT ra FROM PhotoObj WHERE CIRCLE(1.0, 2.0, 3.0)").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::Spatial(Shape::Circle {
                ra: 1.0,
                dec: 2.0,
                radius_deg: 3.0
            })
        );
    }

    #[test]
    fn comparison_operators_all_parse() {
        for (text, op) in [
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<>", CmpOp::Ne),
            ("!=", CmpOp::Ne),
        ] {
            let q = parse(&format!("SELECT ra FROM PhotoObj WHERE g {text} 20")).unwrap();
            assert_eq!(
                q.predicates[0],
                Predicate::Compare {
                    column: "g".into(),
                    op,
                    value: 20.0
                },
                "operator {text}"
            );
        }
    }

    #[test]
    fn inverted_between_rejected() {
        let err = parse("SELECT ra FROM PhotoObj WHERE g BETWEEN 20 AND 10").unwrap_err();
        assert!(err.to_string().contains("inverted"));
    }

    #[test]
    fn fractional_top_rejected() {
        let err = parse("SELECT TOP 1.5 ra FROM PhotoObj").unwrap_err();
        assert!(err.to_string().contains("non-negative integer"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse("SELECT * FROM PhotoObj garbage garbage").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse("SELECT ra WHERE g < 10").is_err());
    }

    #[test]
    fn negative_coordinates_parse() {
        let q = parse("SELECT * FROM PhotoObj WHERE CIRCLE(310.25, -12.5, 0.1)").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::Spatial(Shape::Circle {
                ra: 310.25,
                dec: -12.5,
                radius_deg: 0.1
            })
        );
    }

    #[test]
    fn display_round_trips() {
        let texts = [
            "SELECT * FROM PhotoObj",
            "SELECT COUNT(*) FROM PhotoObj WHERE RECT(10, -5, 20, 5)",
            "SELECT TOP 10 ra, dec FROM PhotoObj p WHERE CIRCLE(1, 2, 3) AND g < 20 \
             WITH TOLERANCE 7",
        ];
        for t in texts {
            let q1 = parse(t).unwrap();
            let q2 = parse(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "round-trip of `{t}`");
        }
    }
}
#[cfg(test)]
mod or_tests {
    use super::*;

    #[test]
    fn disjunction_group_parses() {
        let q = parse(
            "SELECT ra FROM PhotoObj WHERE CIRCLE(10, 10, 1) AND (g < 18 OR r < 17 OR i < 16)",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        match &q.predicates[1] {
            Predicate::AnyOf(arms) => assert_eq!(arms.len(), 3),
            other => panic!("expected AnyOf, got {other:?}"),
        }
    }

    #[test]
    fn single_arm_parentheses_collapse() {
        let q = parse("SELECT ra FROM PhotoObj WHERE (g < 18)").unwrap();
        assert!(matches!(q.predicates[0], Predicate::Compare { .. }));
    }

    #[test]
    fn disjunction_round_trips_through_display() {
        let sql = "SELECT ra FROM PhotoObj WHERE (g < 18 OR r BETWEEN 15 AND 17)";
        let q1 = parse(sql).unwrap();
        let q2 = parse(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn unclosed_group_rejected() {
        assert!(parse("SELECT ra FROM PhotoObj WHERE (g < 18 OR r < 17").is_err());
    }
}
