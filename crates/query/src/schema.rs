//! Logical schema: tables, columns, row widths and value ranges.
//!
//! The Delta paper runs against the SDSS `PhotoObj` table — "data about
//! each astronomical body including its spatial location and about 700
//! other physical attributes", roughly 1 TB (§6.1). The schema here
//! supplies exactly what the frontend needs from that world: column
//! existence (validation), per-column byte widths (result-size
//! estimation) and value ranges (selectivity estimation).

use crate::error::AnalyzeError;

/// A column of a table.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Column name (matched case-insensitively).
    pub name: &'static str,
    /// Bytes per value in a shipped result row.
    pub width: u32,
    /// Smallest value the column takes (for selectivity).
    pub min: f64,
    /// Largest value the column takes.
    pub max: f64,
}

/// A table of the schema.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (matched case-insensitively).
    pub name: &'static str,
    /// Declared columns. `PhotoObj`'s "700 other attributes" beyond these
    /// are modeled by [`Table::hidden_width`].
    pub columns: Vec<Column>,
    /// Extra bytes per row for `SELECT *` beyond the declared columns,
    /// standing in for the long tail of physical attributes.
    pub hidden_width: u32,
    /// Total number of rows in the table (for cardinality estimates).
    pub rows: u64,
}

impl Table {
    /// Looks up a column case-insensitively.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Bytes of one full row (`SELECT *`).
    pub fn full_row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.width as u64).sum::<u64>() + self.hidden_width as u64
    }

    /// Bytes of one row restricted to `cols`.
    ///
    /// # Errors
    /// Returns [`AnalyzeError::UnknownColumn`] if any name is not in the
    /// table.
    pub fn projected_row_width(&self, cols: &[String]) -> Result<u64, AnalyzeError> {
        let mut w = 0u64;
        for c in cols {
            let col = self.column(c).ok_or_else(|| AnalyzeError::UnknownColumn {
                column: c.clone(),
                table: self.name.to_string(),
            })?;
            w += col.width as u64;
        }
        Ok(w)
    }
}

/// The schema: a set of tables.
#[derive(Clone, Debug)]
pub struct Schema {
    tables: Vec<Table>,
}

impl Schema {
    /// A schema with the given tables.
    pub fn new(tables: Vec<Table>) -> Self {
        Self { tables }
    }

    /// The SDSS-like default schema the paper's workload runs against:
    /// `PhotoObj` (primary photometric table; 98 % of trace queries) and
    /// `SpecObj` (spectroscopic detections; SkyServer's second most
    /// queried table).
    pub fn sdss() -> Self {
        let photoobj = Table {
            name: "PhotoObj",
            columns: vec![
                col("objID", 8, 0.0, 1.0e18),
                col("ra", 8, 0.0, 360.0),
                col("dec", 8, -90.0, 90.0),
                // ugriz PSF magnitudes: SDSS detection limits roughly 14–24.
                col("u", 4, 14.0, 24.0),
                col("g", 4, 14.0, 24.0),
                col("r", 4, 14.0, 24.0),
                col("i", 4, 14.0, 24.0),
                col("z", 4, 14.0, 24.0),
                // Morphological type code: 0..=9 (3 = galaxy, 6 = star).
                col("type", 4, 0.0, 9.0),
                col("flags", 8, 0.0, 1.0e18),
                col("psfMag_r", 4, 14.0, 24.0),
                col("petroRad_r", 4, 0.0, 60.0),
                col("extinction_r", 4, 0.0, 2.0),
                col("run", 4, 0.0, 9000.0),
                col("camcol", 4, 1.0, 6.0),
                col("field", 4, 0.0, 1000.0),
                col("mjd", 8, 50000.0, 60000.0),
                col("htmID", 8, 0.0, 1.0e18),
            ],
            // ~700 attributes at ~4 bytes each beyond the declared ones.
            hidden_width: 2800,
            // ~300M photometric objects (DR7-era PhotoObj).
            rows: 300_000_000,
        };
        let specobj = Table {
            name: "SpecObj",
            columns: vec![
                col("specObjID", 8, 0.0, 1.0e18),
                col("ra", 8, 0.0, 360.0),
                col("dec", 8, -90.0, 90.0),
                col("z", 4, -0.01, 7.0),
                col("zErr", 4, 0.0, 1.0),
                col("class", 4, 0.0, 3.0),
                col("mjd", 8, 50000.0, 60000.0),
            ],
            hidden_width: 400,
            rows: 1_600_000,
        };
        Self::new(vec![photoobj, specobj])
    }

    /// Looks up a table case-insensitively.
    ///
    /// # Errors
    /// Returns [`AnalyzeError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<&Table, AnalyzeError> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| AnalyzeError::UnknownTable(name.to_string()))
    }

    /// Iterates over the tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }
}

impl Default for Schema {
    fn default() -> Self {
        Self::sdss()
    }
}

fn col(name: &'static str, width: u32, min: f64, max: f64) -> Column {
    Column {
        name,
        width,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photoobj_lookup_is_case_insensitive() {
        let s = Schema::sdss();
        assert!(s.table("photoobj").is_ok());
        assert!(s.table("PHOTOOBJ").is_ok());
        assert!(matches!(
            s.table("NoSuch"),
            Err(AnalyzeError::UnknownTable(_))
        ));
    }

    #[test]
    fn column_lookup_and_width() {
        let s = Schema::sdss();
        let t = s.table("PhotoObj").unwrap();
        assert!(t.column("RA").is_some());
        assert!(t.column("nope").is_none());
        let w = t
            .projected_row_width(&["ra".into(), "dec".into(), "g".into()])
            .unwrap();
        assert_eq!(w, 8 + 8 + 4);
        assert!(
            t.full_row_width() > 2800,
            "hidden attributes dominate SELECT *"
        );
    }

    #[test]
    fn unknown_projection_column_is_an_error() {
        let s = Schema::sdss();
        let t = s.table("PhotoObj").unwrap();
        let err = t
            .projected_row_width(&["ra".into(), "bogus".into()])
            .unwrap_err();
        assert!(matches!(err, AnalyzeError::UnknownColumn { .. }));
    }

    #[test]
    fn magnitude_ranges_are_sane() {
        let s = Schema::sdss();
        let t = s.table("PhotoObj").unwrap();
        for band in ["u", "g", "r", "i", "z"] {
            let c = t.column(band).unwrap();
            assert!(c.min < c.max, "band {band}");
        }
    }
}
