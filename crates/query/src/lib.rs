//! # delta-query — the SQL semantic frontend for Delta
//!
//! §4 of the paper notes that "an implementation of VCover requires a
//! semantic framework that determines the mapping between the query, q,
//! and the data objects, B(q), it accesses … in astronomy, queries
//! specify a spatial region and objects are also spatially partitioned."
//! This crate is that framework: a parser and analyzer for the
//! SkyServer-style SQL subset the SDSS trace consists of, producing for
//! each query text
//!
//! * the **footprint** (a [`delta_htm::Region`]),
//! * the **object set** `B(q)` under a given HTM partition,
//! * an estimated **result size** ν(q) (density-integrated cardinality ×
//!   projected row width),
//! * the **currency requirement** `t(q)` (`WITH TOLERANCE n`), and
//! * the workload **classification** of §6.1 (cone / range / self-join /
//!   aggregate / scan / selection).
//!
//! ```
//! use delta_query::{Compiler, Schema};
//! use delta_htm::Partition;
//! use delta_storage::SpatialMapper;
//! use delta_workload::SkyModel;
//!
//! let compiler = Compiler::new(
//!     Schema::sdss(),
//!     SkyModel::sdss_like(7, 12),
//!     SpatialMapper::new(Partition::adaptive(|t| t.solid_angle(), 68)),
//! );
//! let event = compiler
//!     .compile("SELECT TOP 100 ra, dec, g FROM PhotoObj \
//!               WHERE CONTAINS(POINT('J2000', 185.0, 15.3), CIRCLE('J2000', 185.0, 15.3, 0.25)) = 1 \
//!               AND g BETWEEN 17 AND 20 WITH TOLERANCE 50")?
//!     .into_event(0);
//! assert_eq!(event.tolerance, 50);
//! # Ok::<(), delta_query::QueryError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod compile;
pub mod error;
pub mod estimate;
pub mod parser;
pub mod schema;
pub mod token;

pub use analyze::{analyze, AnalyzedQuery};
pub use ast::{CmpOp, Predicate, Projection, Query, Shape};
/// The name the service layer knows the frontend by: a per-connection,
/// `Send` + `Clone` SQL → [`delta_workload::QueryEvent`] compiler.
pub use compile::Compiler as QueryCompiler;
pub use compile::{CompiledQuery, Compiler};
pub use error::{AnalyzeError, ParseError, QueryError};
pub use estimate::{Estimator, SizeEstimate};
pub use parser::parse;
pub use schema::{Column, Schema, Table};
