//! Result-size estimation: how many bytes would this query ship?
//!
//! The cache's decision framework prices a query at ν(q) — the size of its
//! result (§3). A real deployment knows result sizes only after execution;
//! the middleware therefore *estimates* them from the sky-density model
//! (the same black-box cardinality problem the authors treat in their
//! earlier work \[25\]). The estimator integrates the inhomogeneous sky
//! density over the query footprint with a deterministic low-discrepancy
//! sample, multiplies by attribute selectivity and the projected row
//! width, and applies any `TOP n` cap.

use crate::analyze::{solid_angle, AnalyzedQuery};
use crate::schema::Table;
use delta_htm::{Region, Vec3};
use delta_workload::SkyModel;
use std::f64::consts::PI;

/// Golden-angle increment for low-discrepancy sphere sampling.
const GOLDEN_ANGLE: f64 = 2.399963229728653;

/// Fixed per-result protocol overhead (headers, column metadata).
pub const RESULT_HEADER_BYTES: u64 = 256;

/// A deterministic density integrator over a [`SkyModel`].
#[derive(Clone, Debug)]
pub struct Estimator<'a> {
    sky: &'a SkyModel,
    samples: usize,
    sphere_mean: f64,
}

/// The estimator's output for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeEstimate {
    /// Estimated result rows (after selectivity and `TOP`).
    pub rows: u64,
    /// Estimated shipped bytes ν(q), including protocol overhead.
    pub bytes: u64,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator with the default sample budget.
    pub fn new(sky: &'a SkyModel) -> Self {
        Self::with_samples(sky, 512)
    }

    /// Creates an estimator taking `samples` density probes per region.
    ///
    /// # Panics
    /// Panics if `samples` is zero.
    pub fn with_samples(sky: &'a SkyModel, samples: usize) -> Self {
        assert!(samples > 0, "estimator needs at least one sample");
        let sphere_mean = mean_density(sky, &Region::All, samples);
        Self {
            sky,
            samples,
            sphere_mean,
        }
    }

    /// Mean sky density over `region` (deterministic).
    pub fn mean_density(&self, region: &Region) -> f64 {
        mean_density(self.sky, region, self.samples)
    }

    /// Fraction of the sky's total mass inside `region`, in `[0, 1]`.
    pub fn sky_fraction(&self, region: &Region) -> f64 {
        let total = self.sphere_mean * 4.0 * PI;
        if total <= 0.0 {
            return 0.0;
        }
        let mass = self.mean_density(region) * solid_angle(region);
        (mass / total).clamp(0.0, 1.0)
    }

    /// Estimates rows and bytes for an analyzed query against its table.
    pub fn estimate(&self, a: &AnalyzedQuery, table: &Table) -> SizeEstimate {
        let footprint_rows = table.rows as f64 * self.sky_fraction(&a.region);
        let mut rows = footprint_rows * a.selectivity;
        // A self-join inspects pairs within the radius; its result scales
        // superlinearly with local density. Model the pair blow-up as a
        // density-dependent multiplier (bounded: the radius is small).
        if a.kind == delta_workload::QueryKind::SelfJoin {
            let local = self.mean_density(&a.region) / self.sphere_mean.max(f64::MIN_POSITIVE);
            rows *= (1.0 + local).min(16.0);
        }
        if a.query.projection == crate::ast::Projection::Count {
            rows = 1.0;
        }
        if let Some(cap) = a.row_cap {
            rows = rows.min(cap as f64);
        }
        let rows = rows.round().max(0.0) as u64;
        let bytes = RESULT_HEADER_BYTES + rows.saturating_mul(a.row_width);
        SizeEstimate { rows, bytes }
    }
}

/// Deterministic mean density over a region: probes `samples`
/// low-discrepancy points inside the region and averages the model
/// density there.
fn mean_density(sky: &SkyModel, region: &Region, samples: usize) -> f64 {
    let mut sum = 0.0;
    let n = samples.max(1);
    for k in 0..n {
        sum += sky.density_at(sample_point(region, k, n));
    }
    sum / n as f64
}

/// The `k`-th of `n` low-discrepancy points inside `region`.
fn sample_point(region: &Region, k: usize, n: usize) -> Vec3 {
    let u = (k as f64 + 0.5) / n as f64; // stratified in [0, 1)
    let phi = GOLDEN_ANGLE * k as f64;
    match *region {
        Region::All => {
            // Fibonacci sphere: z uniform in [-1, 1].
            let z = 1.0 - 2.0 * u;
            point_at_z_phi(Vec3::new(0.0, 0.0, 1.0), z, phi)
        }
        Region::Cone { center, radius_rad } => {
            // Uniform over the cap: cos θ uniform in [cos r, 1].
            let cos_t = 1.0 - u * (1.0 - radius_rad.cos());
            point_at_z_phi(center, cos_t, phi)
        }
        Region::RaDecRect {
            ra_min,
            ra_max,
            dec_min,
            dec_max,
        } => {
            let dra = if ra_max >= ra_min {
                ra_max - ra_min
            } else {
                360.0 - ra_min + ra_max
            };
            let ra = (ra_min + u * dra).rem_euclid(360.0);
            // Uniform over area: sin(dec) uniform.
            let s_lo = dec_min.to_radians().sin();
            let s_hi = dec_max.to_radians().sin();
            let frac = (phi / (2.0 * PI)).fract();
            let dec = (s_lo + frac * (s_hi - s_lo))
                .clamp(-1.0, 1.0)
                .asin()
                .to_degrees();
            Vec3::from_radec_deg(ra, dec)
        }
        Region::GreatCircleBand {
            pole,
            half_width_rad,
        } => {
            // Uniform over the band: distance from the circle's plane
            // (dot with pole) uniform in [-sin w, sin w].
            let s = half_width_rad.sin();
            let z = -s + 2.0 * s * u;
            point_at_z_phi(pole, z, phi)
        }
    }
}

/// The point at polar coordinate (`cos θ = z`, azimuth `phi`) around
/// `axis`.
fn point_at_z_phi(axis: Vec3, z: f64, phi: f64) -> Vec3 {
    let axis = axis.normalized();
    // Any vector not parallel to the axis.
    let aux = if axis.dot(Vec3::new(1.0, 0.0, 0.0)).abs() < 0.9 {
        Vec3::new(1.0, 0.0, 0.0)
    } else {
        Vec3::new(0.0, 1.0, 0.0)
    };
    let u = axis.cross(aux).normalized();
    let v = axis.cross(u).normalized();
    let z = z.clamp(-1.0, 1.0);
    let sin_t = (1.0 - z * z).sqrt();
    Vec3::new(
        axis.x * z + (u.x * phi.cos() + v.x * phi.sin()) * sin_t,
        axis.y * z + (u.y * phi.cos() + v.y * phi.sin()) * sin_t,
        axis.z * z + (u.z * phi.cos() + v.z * phi.sin()) * sin_t,
    )
    .normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parse;
    use crate::schema::Schema;

    fn estimate(sql: &str, sky: &SkyModel) -> SizeEstimate {
        let schema = Schema::sdss();
        let a = analyze(parse(sql).unwrap(), &schema).unwrap();
        let table = schema.table(&a.query.table).unwrap();
        Estimator::new(sky).estimate(&a, table)
    }

    #[test]
    fn all_sky_fraction_is_one() {
        let sky = SkyModel::sdss_like(7, 12);
        let e = Estimator::new(&sky);
        assert!((e.sky_fraction(&Region::All) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bigger_cones_capture_more_mass() {
        let sky = SkyModel::sdss_like(7, 12);
        let e = Estimator::new(&sky);
        let small = e.sky_fraction(&Region::cone_deg(185.0, 15.0, 0.5));
        let large = e.sky_fraction(&Region::cone_deg(185.0, 15.0, 5.0));
        assert!(small < large, "small {small} vs large {large}");
        assert!(small > 0.0);
    }

    #[test]
    fn uniform_sky_cone_fraction_matches_area() {
        let sky = SkyModel::uniform();
        let e = Estimator::with_samples(&sky, 2048);
        let r = Region::cone_deg(100.0, -30.0, 10.0);
        let expect = solid_angle(&r) / (4.0 * PI);
        let got = e.sky_fraction(&r);
        assert!((got - expect).abs() < 1e-6, "got {got}, want {expect}");
    }

    #[test]
    fn narrower_projection_ships_fewer_bytes() {
        let sky = SkyModel::sdss_like(7, 12);
        let wide = estimate("SELECT * FROM PhotoObj WHERE CIRCLE(185, 15, 1.0)", &sky);
        let narrow = estimate("SELECT ra FROM PhotoObj WHERE CIRCLE(185, 15, 1.0)", &sky);
        assert_eq!(wide.rows, narrow.rows);
        assert!(wide.bytes > narrow.bytes);
    }

    #[test]
    fn top_caps_rows() {
        let sky = SkyModel::sdss_like(7, 12);
        let capped = estimate(
            "SELECT TOP 10 ra FROM PhotoObj WHERE CIRCLE(185, 15, 2.0)",
            &sky,
        );
        assert!(capped.rows <= 10);
        assert_eq!(capped.bytes, RESULT_HEADER_BYTES + capped.rows * 8);
    }

    #[test]
    fn count_is_one_row() {
        let sky = SkyModel::sdss_like(7, 12);
        let c = estimate(
            "SELECT COUNT(*) FROM PhotoObj WHERE RECT(10, -5, 20, 5)",
            &sky,
        );
        assert_eq!(c.rows, 1);
        assert_eq!(c.bytes, RESULT_HEADER_BYTES + 8);
    }

    #[test]
    fn selectivity_scales_rows() {
        let sky = SkyModel::uniform();
        let all = estimate("SELECT ra FROM PhotoObj WHERE CIRCLE(185, 15, 2.0)", &sky);
        let cut = estimate(
            "SELECT ra FROM PhotoObj WHERE CIRCLE(185, 15, 2.0) AND g BETWEEN 14 AND 19",
            &sky,
        );
        assert!(cut.rows < all.rows);
        // g BETWEEN 14 AND 19 is half the [14, 24] range.
        let ratio = cut.rows as f64 / all.rows.max(1) as f64;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn selfjoin_amplifies_in_dense_regions() {
        let sky = SkyModel::sdss_like(7, 12);
        let e = Estimator::new(&sky);
        // Find a dense direction: probe blob centers via densities.
        let schema = Schema::sdss();
        let plain = analyze(
            parse("SELECT ra FROM PhotoObj WHERE CIRCLE(185, 15, 0.2)").unwrap(),
            &schema,
        )
        .unwrap();
        let join = analyze(
            parse("SELECT ra FROM PhotoObj WHERE NEIGHBORS(185, 15, 0.2)").unwrap(),
            &schema,
        )
        .unwrap();
        let t = schema.table("PhotoObj").unwrap();
        assert!(e.estimate(&join, t).rows >= e.estimate(&plain, t).rows);
    }

    #[test]
    fn estimates_are_deterministic() {
        let sky = SkyModel::sdss_like(3, 8);
        let a = estimate("SELECT * FROM PhotoObj WHERE CIRCLE(42, 7, 1.5)", &sky);
        let b = estimate("SELECT * FROM PhotoObj WHERE CIRCLE(42, 7, 1.5)", &sky);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_points_stay_in_region() {
        let regions = [
            Region::cone_deg(10.0, 20.0, 3.0),
            Region::RaDecRect {
                ra_min: 100.0,
                ra_max: 140.0,
                dec_min: -10.0,
                dec_max: 30.0,
            },
            Region::All,
        ];
        for r in &regions {
            for k in 0..256 {
                let p = sample_point(r, k, 256);
                assert!(r.contains(p), "point {k} escaped {r:?}");
                assert!((p.norm() - 1.0).abs() < 1e-9);
            }
        }
    }
}
