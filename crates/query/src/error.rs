//! Error types for the query frontend.

use std::fmt;

/// A byte range in the query source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First byte of the offending text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A zero-width span at a position.
    pub fn at(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }
}

/// Error raised while lexing or parsing a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates an error with a message and source span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at byte {}..{}",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for ParseError {}

/// Error raised while semantically analyzing a parsed query against the
/// schema (unknown tables/columns, type mismatches, invalid geometry).
#[derive(Clone, Debug, PartialEq)]
pub enum AnalyzeError {
    /// The FROM table is not in the schema.
    UnknownTable(String),
    /// A referenced column is not in the table.
    UnknownColumn {
        /// The column name as written.
        column: String,
        /// The table searched.
        table: String,
    },
    /// A geometric argument is out of range (e.g. negative radius).
    InvalidGeometry(String),
    /// The query carries contradictory constraints (e.g. an empty BETWEEN).
    EmptyPredicate(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            AnalyzeError::UnknownColumn { column, table } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            AnalyzeError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
            AnalyzeError::EmptyPredicate(m) => write!(f, "empty predicate: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Any error the frontend can produce for a query text.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed.
    Analyze(AnalyzeError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Analyze(e) => write!(f, "analyze error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Parse(e) => Some(e),
            QueryError::Analyze(e) => Some(e),
        }
    }
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<AnalyzeError> for QueryError {
    fn from(e: AnalyzeError) -> Self {
        QueryError::Analyze(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let p = ParseError::new("boom", Span { start: 3, end: 5 });
        assert_eq!(p.to_string(), "boom at byte 3..5");
        let a = AnalyzeError::UnknownColumn {
            column: "zz".into(),
            table: "PhotoObj".into(),
        };
        assert_eq!(a.to_string(), "unknown column `zz` in table `PhotoObj`");
        let q: QueryError = a.into();
        assert!(q.to_string().starts_with("analyze error"));
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let q: QueryError = ParseError::new("x", Span::at(0)).into();
        assert!(q.source().is_some());
    }
}
