//! The epoll reactor front door: a few event-loop threads multiplexing
//! every connection, replacing thread-per-connection at the edge.
//!
//! ## Shape
//!
//! An accept thread hands fresh sockets round-robin to `N` reactor
//! threads over channels. Each reactor owns a [`Poller`] (level-
//! triggered epoll), a [`Slab`] of connections whose keys double as
//! epoll tokens, and a [`TimerWheel`] of stall deadlines. One iteration:
//! wait for readiness (bounded by the 25 ms poll tick so the shutdown
//! flag and timers stay live), pump every ready connection, adopt queued
//! sockets, fire expired deadlines.
//!
//! ## The per-connection state machine
//!
//! Each connection reuses the exact buffer discipline of the threaded
//! front ([`crate::connection`]): a flat read buffer compacted and
//! grown/shrunk by [`prepare_read_buffer`], and a coalesced write buffer
//! flushed only when the loop would otherwise block. A pump serves
//! every complete frame that has arrived, then flushes; a partial write
//! parks the remainder (`wpos`) and arms write interest — readiness, not
//! blocking, picks it back up.
//!
//! ## Deadlines (the half-open fix)
//!
//! A connection is on the stall clock whenever it is **mid-frame** (sent
//! part of a request and went quiet) or has an **undrained response**.
//! Progress re-arms the deadline; `stall_limit` without progress reaps
//! the connection and counts it under `conn.stall_drops`. Idling at a
//! frame boundary is free — that is just a connection with nothing to
//! say. On shutdown, boundary-idle connections close immediately and
//! everything else gets one stall grace period, mirroring the threaded
//! front.
//!
//! ## Invariants
//!
//! * Frames are served in arrival order per connection; responses are
//!   appended in the same order — identical to the threaded front, so
//!   ledgers are byte-identical under either door.
//! * Read interest is dropped while more than `WRITE_COALESCE_BYTES`
//!   of response is undrained (backpressure), so a client that stops
//!   reading cannot balloon the write buffer.
//! * A handler error flushes the responses already earned before the
//!   connection drops — executed requests' acks never vanish.

use crate::connection::{
    append_oversize_reply, buffered_frame_len, classify_drop, drop_cause, drop_error,
    prepare_read_buffer, ClosureHandler, DropCause, FrameHandler, LoopBackend, NoBackend,
    WireTelemetry, POLL, READ_BUF, WRITE_COALESCE_BYTES,
};
use delta_reactor::{Events, Interest, Poller, Slab, TimerKey, TimerWheel};
use delta_telemetry::{Counter, Histogram, Telemetry};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A per-connection frame handler: payload in, response frames appended
/// to the write buffer, `true` to close after the flush.
pub(crate) type Handler = Box<dyn FnMut(&[u8], &mut Vec<u8>) -> io::Result<bool> + Send>;

/// Builds one [`Handler`] per accepted connection (each gets its own
/// mutable per-connection state, e.g. a SQL compiler clone).
pub(crate) type HandlerFactory = Arc<dyn Fn() -> Handler + Send + Sync>;

/// Builds one suspension-capable [`FrameHandler`] per connection.
pub(crate) type FrameFactory = Arc<dyn Fn() -> Box<dyn FrameHandler> + Send + Sync>;

/// Builds one [`LoopBackend`] per reactor event loop. The backend gets
/// a handle on the loop's poller so it can register its own sockets
/// under [`BACKEND_TOKEN`]-tagged tokens.
pub(crate) type BackendFactory = Arc<dyn Fn(Arc<Poller>) -> Box<dyn LoopBackend> + Send + Sync>;

/// High bit of an epoll token: set on every descriptor a [`LoopBackend`]
/// registers, clear on client connections (slab keys), so one poller
/// multiplexes both without collisions.
pub(crate) const BACKEND_TOKEN: usize = 1 << (usize::BITS - 1);

/// Token of the accept thread's wake pipe: one byte lands here whenever
/// a socket was queued for adoption, so a reactor parked in
/// `poller.wait` picks up new connections immediately instead of on the
/// next `POLL` timeout (up to 25 ms later — a whole pipeline window's
/// worth of stall on the connection's first frames).
const WAKE_TOKEN: usize = BACKEND_TOKEN - 1;

/// Wraps a plain closure factory as a [`FrameFactory`] — the path for
/// tiers whose handlers never suspend.
pub(crate) fn closure_factory(factory: HandlerFactory) -> FrameFactory {
    Arc::new(move || Box::new(ClosureHandler(factory())))
}

/// Reads per connection per wakeup before yielding to the rest of the
/// ready set. Level-triggered epoll re-notifies unread data, so a
/// firehose client costs fairness nothing — it just gets re-pumped next
/// iteration. Sized so a deep pipelined window drains in one wakeup
/// (each read pulls up to 64 KiB, several frames' worth): at 4 the
/// windowed bench paid an extra epoll round-trip every few frames and
/// lost ~15% against the thread-per-connection front.
const READS_PER_PUMP: usize = 16;

/// The reactor tier's own metrics, alongside the shared `conn.*` wire
/// counters.
#[derive(Clone)]
pub(crate) struct ReactorTelemetry {
    /// Sockets the accept thread handed to reactors.
    pub(crate) accepted: Arc<Counter>,
    /// Connections closed (any cause; deliberate drops also count under
    /// their `conn.*` counter).
    pub(crate) closed: Arc<Counter>,
    /// `epoll_wait` returns.
    pub(crate) wakeups: Arc<Counter>,
    /// Ready-set size per wakeup that had any readiness.
    pub(crate) ready_per_wakeup: Arc<Histogram>,
    /// Frames served across the ready set per non-empty wakeup.
    pub(crate) frames_per_wakeup: Arc<Histogram>,
}

impl ReactorTelemetry {
    /// Resolves the reactor handles from a tier's registry.
    pub(crate) fn register(t: &Telemetry) -> ReactorTelemetry {
        ReactorTelemetry {
            accepted: t.counter("reactor.accepted"),
            closed: t.counter("reactor.closed"),
            wakeups: t.counter("reactor.wakeups"),
            ready_per_wakeup: t.histogram("reactor.ready_per_wakeup"),
            frames_per_wakeup: t.histogram("reactor.frames_per_wakeup"),
        }
    }
}

/// Resolves a configured thread count: `0` means automatic — a few
/// loops, never more than the machine offers. Event loops multiplex, so
/// a handful covers tens of thousands of connections.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(1, 4)
}

/// Everything a reactor front door needs besides the listener; bundled
/// so the server and router tiers construct it identically.
pub(crate) struct ReactorFront {
    /// Tier name for thread names and traces (`delta-server`, ...).
    pub(crate) name: &'static str,
    /// Configured event-loop threads (`0` = automatic).
    pub(crate) threads: usize,
    /// The tier's shutdown flag.
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Shared wire counters (`conn.*`).
    pub(crate) wire: WireTelemetry,
    /// Reactor metrics (`reactor.*`).
    pub(crate) rtel: ReactorTelemetry,
    /// Reap limit for stalled connections.
    pub(crate) stall_limit: Duration,
    /// Builds one handler per connection.
    pub(crate) factory: FrameFactory,
    /// Builds one backend per event loop (`None` = no internal events).
    pub(crate) backend: Option<BackendFactory>,
}

impl ReactorFront {
    /// Runs the front door on the calling (accept) thread: spawns the
    /// reactor loops, distributes accepted sockets round-robin, and on
    /// shutdown waits for every loop to drain its connections.
    /// `listener` must already be nonblocking.
    pub(crate) fn run(self, listener: TcpListener) {
        let threads = resolve_threads(self.threads);
        let mut senders = Vec::with_capacity(threads);
        let mut wakers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            // The adoption channel can't wake a parked `poller.wait`, so
            // each loop also watches one end of a nonblocking socket
            // pair; the accept thread pokes it after every handoff.
            let (wake_tx, wake_rx) = UnixStream::pair().expect("create reactor wake pipe");
            wake_tx
                .set_nonblocking(true)
                .and(wake_rx.set_nonblocking(true))
                .expect("nonblocking wake pipe");
            wakers.push(wake_tx);
            let name = self.name;
            let shutdown = Arc::clone(&self.shutdown);
            let wire = self.wire.clone();
            let rtel = self.rtel.clone();
            let stall_limit = self.stall_limit;
            let factory = Arc::clone(&self.factory);
            let backend = self.backend.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{name}-reactor-{i}"))
                .spawn(move || {
                    reactor_loop(
                        rx,
                        wake_rx,
                        name,
                        shutdown,
                        wire,
                        rtel,
                        stall_limit,
                        factory,
                        backend,
                    )
                })
                .expect("spawn reactor thread");
            handles.push(handle);
        }
        let mut next = 0usize;
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.rtel.accepted.inc();
                    // A reactor only disappears with the process; a
                    // failed send means we're past caring about this
                    // socket.
                    let slot = next % senders.len();
                    let _ = senders[slot].send(stream);
                    // Wake the loop out of its poll wait; a full pipe
                    // (WouldBlock) already guarantees a pending wake.
                    let _ = (&wakers[slot]).write(&[1u8]);
                    next += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => {
                    eprintln!("{}: accept error: {e}", self.name);
                    std::thread::sleep(POLL);
                }
            }
        }
        // Hang up the channels so draining reactors stop expecting
        // sockets, then wait for every connection to finish or stall
        // out.
        drop(senders);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    handler: Box<dyn FrameHandler>,
    peer: String,
    rbuf: Vec<u8>,
    start: usize,
    end: usize,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written; `wpos < wbuf.len()` is an
    /// in-flight partial flush.
    wpos: usize,
    interest: Interest,
    timer: Option<TimerKey>,
    /// Input is done (served a `Shutdown`, or the peer half-closed);
    /// close as soon as the write buffer drains.
    closing: bool,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn mid_frame(&self) -> bool {
        self.end > self.start
    }

    /// Whether this connection is on the stall clock.
    fn on_clock(&self) -> bool {
        self.mid_frame() || self.pending_write()
    }

    fn backpressured(&self) -> bool {
        self.wbuf.len() - self.wpos >= WRITE_COALESCE_BYTES
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing && !self.backpressured(),
            writable: self.pending_write(),
        }
    }
}

/// What one pump of a connection did.
struct Pump {
    /// Keep the connection open (false = clean close now).
    keep: bool,
    /// Any bytes moved in either direction (re-arms the stall clock).
    progressed: bool,
    /// Frames served.
    frames: u64,
}

/// Ships as much of the write buffer as the socket accepts, returning
/// the bytes written. A completed buffer counts one coalesced flush,
/// mirroring the threaded front's metering.
fn try_flush(conn: &mut Conn, wire: &WireTelemetry) -> io::Result<usize> {
    let mut shipped = 0usize;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.wpos += n;
                shipped += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if conn.wpos > 0 && conn.wpos == conn.wbuf.len() {
        wire.flushes.inc();
        wire.bytes_out.add(conn.wbuf.len() as u64);
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(shipped)
}

/// Advances one connection as far as the socket allows: flush what was
/// pending, then alternate serving buffered frames and reading, stopping
/// at `WouldBlock`, backpressure, handler saturation, or the per-pump
/// read bound.
fn pump(
    conn: &mut Conn,
    key: usize,
    wire: &WireTelemetry,
    backend: &mut dyn LoopBackend,
) -> io::Result<Pump> {
    let mut progressed = try_flush(conn, wire)? > 0;
    let mut frames = 0u64;
    if conn.closing {
        return Ok(Pump {
            keep: conn.pending_write(),
            progressed,
            frames,
        });
    }
    'io: for read_round in 0..=READS_PER_PUMP {
        // Serve every complete frame already buffered. Counters batch
        // per drain, like the threaded front.
        let mut frames_this_read = 0u64;
        loop {
            if conn.backpressured() || conn.handler.saturated() {
                // Stop consuming input until the peer drains responses
                // (or resumptions drain the handler's pending queue);
                // readiness will pump us again.
                break 'io;
            }
            let total = match buffered_frame_len(&conn.rbuf[conn.start..conn.end]) {
                Ok(Some(total)) => total,
                Ok(None) => break,
                Err(e) => {
                    if drop_cause(&e) == Some(DropCause::Oversize) {
                        append_oversize_reply(&mut conn.wbuf, &e);
                    }
                    let _ = try_flush(conn, wire);
                    return Err(e);
                }
            };
            let payload = &conn.rbuf[conn.start + 4..conn.start + total];
            let close = match conn.handler.on_frame(key, payload, &mut conn.wbuf, backend) {
                Ok(close) => close,
                Err(e) => {
                    // Flush the acks already earned by executed
                    // requests before the error takes the connection.
                    let _ = try_flush(conn, wire);
                    return Err(e);
                }
            };
            conn.start += total;
            frames_this_read += 1;
            if close {
                conn.closing = true;
                break;
            }
        }
        if frames_this_read > 0 {
            frames += frames_this_read;
            progressed = true;
            wire.frames_in.add(frames_this_read);
            wire.frames_out.add(frames_this_read);
            wire.frames_per_read.record(frames_this_read);
        }
        if conn.closing || read_round == READS_PER_PUMP {
            break;
        }
        prepare_read_buffer(&mut conn.rbuf, &mut conn.start, &mut conn.end);
        match (&conn.stream).read(&mut conn.rbuf[conn.end..]) {
            Ok(0) => {
                if conn.end == conn.start {
                    // EOF at a frame boundary: clean. Anything still in
                    // the write buffer ships before the close.
                    conn.closing = true;
                    break;
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                conn.end += n;
                progressed = true;
                wire.bytes_in.add(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // About to go back to waiting: ship the coalesced responses. A
    // closing connection is kept only while responses remain undrained.
    progressed |= try_flush(conn, wire)? > 0;
    Ok(Pump {
        keep: !conn.closing || conn.pending_write(),
        progressed,
        frames,
    })
}

/// One reactor event loop: owns its connections end to end.
#[allow(clippy::too_many_arguments)]
fn reactor_loop(
    rx: Receiver<TcpStream>,
    wake: UnixStream,
    name: &'static str,
    shutdown: Arc<AtomicBool>,
    wire: WireTelemetry,
    rtel: ReactorTelemetry,
    stall_limit: Duration,
    factory: FrameFactory,
    backend_factory: Option<BackendFactory>,
) {
    let poller = Arc::new(Poller::new().expect("create epoll instance"));
    poller
        .add(&wake, WAKE_TOKEN, Interest::READ)
        .expect("register reactor wake pipe");
    let mut backend: Box<dyn LoopBackend> = match &backend_factory {
        Some(make) => make(Arc::clone(&poller)),
        None => Box::new(NoBackend),
    };
    let mut events = Events::with_capacity(1024);
    let mut conns: Slab<Conn> = Slab::new();
    // 512 × 25 ms ≈ 12.8 s of wheel span comfortably covers the default
    // 5 s stall limit; longer limits park and re-bucket.
    let mut wheel = TimerWheel::new(POLL, 512, Instant::now());
    let mut expired: Vec<usize> = Vec::new();
    let mut accepting = true;
    let mut draining = false;

    loop {
        let n = match poller.wait(&mut events, Some(POLL)) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{name}: reactor wait error: {e}");
                0
            }
        };
        rtel.wakeups.inc();
        if n > 0 {
            rtel.ready_per_wakeup.record(n as u64);
        }
        let now = Instant::now();
        let mut frames_this_wakeup = 0u64;
        for ev in events.iter() {
            let key = ev.token;
            if key == WAKE_TOKEN {
                // Drain every pending poke; the adoption loop below
                // picks up whatever sockets they announced.
                let mut sink = [0u8; 64];
                while matches!((&wake).read(&mut sink), Ok(n) if n > 0) {}
                continue;
            }
            if key & BACKEND_TOKEN != 0 {
                backend.on_event(key & !BACKEND_TOKEN, now);
                continue;
            }
            let Some(conn) = conns.get_mut(key) else {
                continue; // closed earlier this wakeup
            };
            match pump(conn, key, &wire, backend.as_mut()) {
                Ok(p) => {
                    frames_this_wakeup += p.frames;
                    let conn = conns.get_mut(key).unwrap();
                    let idle = !conn.on_clock() && !conn.closing && !conn.handler.suspended();
                    if !p.keep || (draining && idle) {
                        close_conn(
                            &poller,
                            &mut wheel,
                            &mut conns,
                            &rtel,
                            backend.as_mut(),
                            key,
                            None,
                        );
                    } else {
                        refresh(
                            &poller,
                            &mut wheel,
                            conns.get_mut(key).unwrap(),
                            key,
                            p.progressed,
                            now,
                            stall_limit,
                        );
                    }
                }
                Err(e) => {
                    let peer = conns.get(key).map(|c| c.peer.clone()).unwrap_or_default();
                    close_conn(
                        &poller,
                        &mut wheel,
                        &mut conns,
                        &rtel,
                        backend.as_mut(),
                        key,
                        Some(&e),
                    );
                    classify_drop(&e, &wire, &peer, stall_limit);
                }
            }
        }
        if n > 0 {
            rtel.frames_per_wakeup.record(frames_this_wakeup);
        }

        // Adopt queued sockets (dropped unserved once draining).
        while accepting {
            match rx.try_recv() {
                Ok(stream) => {
                    if draining {
                        continue;
                    }
                    register(&poller, &mut conns, &factory, stream, name);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    accepting = false;
                }
            }
        }

        // Fire stall deadlines.
        expired.clear();
        wheel.poll(now, &mut expired);
        for &key in &expired {
            let Some(conn) = conns.get_mut(key) else {
                continue;
            };
            conn.timer = None;
            let peer = conn.peer.clone();
            let e = drop_error(
                DropCause::Stall,
                format!("no progress for {stall_limit:?} (reactor deadline)"),
            );
            close_conn(
                &poller,
                &mut wheel,
                &mut conns,
                &rtel,
                backend.as_mut(),
                key,
                Some(&e),
            );
            classify_drop(&e, &wire, &peer, stall_limit);
        }

        // Backend deadlines (node timeouts), then resume suspended
        // connections whose internal work completed, then ship the
        // backend's coalesced writes — once per iteration, so every
        // sub-request enqueued this wakeup rides one flush per link.
        // A flush failure can itself complete suspended work (a dead
        // link fails its fan-outs), so resume once more; the second
        // flush is a no-op in the common case.
        backend.tick(now);
        for _ in 0..2 {
            resume_pass(
                &poller,
                &mut wheel,
                &mut conns,
                backend.as_mut(),
                &wire,
                &rtel,
                stall_limit,
                now,
                draining,
            );
            backend.flush(now);
        }

        // Shutdown: close boundary-idle connections now; everything else
        // gets one stall grace period (the deadline is already armed for
        // anything on the clock — arm the rest). A suspended connection
        // is not idle: its response is still owed.
        if !draining && shutdown.load(Ordering::SeqCst) {
            draining = true;
            for key in conns.keys() {
                // One last pump so requests that raced the flag are
                // served, mirroring the threaded drain.
                let conn = conns.get_mut(key).expect("live key");
                match pump(conn, key, &wire, backend.as_mut()) {
                    Ok(p) => {
                        let conn = conns.get_mut(key).unwrap();
                        let idle = !conn.on_clock() && !conn.closing && !conn.handler.suspended();
                        if !p.keep || idle {
                            close_conn(
                                &poller,
                                &mut wheel,
                                &mut conns,
                                &rtel,
                                backend.as_mut(),
                                key,
                                None,
                            );
                        } else {
                            refresh(&poller, &mut wheel, conn, key, true, now, stall_limit);
                        }
                    }
                    Err(e) => {
                        let peer = conns.get(key).map(|c| c.peer.clone()).unwrap_or_default();
                        close_conn(
                            &poller,
                            &mut wheel,
                            &mut conns,
                            &rtel,
                            backend.as_mut(),
                            key,
                            Some(&e),
                        );
                        classify_drop(&e, &wire, &peer, stall_limit);
                    }
                }
            }
            backend.flush(now);
        }
        if draining && conns.is_empty() && !accepting {
            return;
        }
    }
}

/// Resumes every connection whose suspended work completed: deliver the
/// completions via [`FrameHandler::on_resume`], then pump as usual so
/// the freshly appended responses flush and buffered input (parked by
/// handler saturation) is served.
#[allow(clippy::too_many_arguments)]
fn resume_pass(
    poller: &Poller,
    wheel: &mut TimerWheel,
    conns: &mut Slab<Conn>,
    backend: &mut dyn LoopBackend,
    wire: &WireTelemetry,
    rtel: &ReactorTelemetry,
    stall_limit: Duration,
    now: Instant,
    draining: bool,
) {
    let mut keys = backend.take_resumable();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let Some(conn) = conns.get_mut(key) else {
            continue; // closed before its work completed
        };
        match conn.handler.on_resume(key, &mut conn.wbuf, backend) {
            Ok(close) => {
                if close {
                    conn.closing = true;
                }
            }
            Err(e) => {
                // Same contract as a handler error in pump: flush the
                // responses already earned, then drop the connection.
                let _ = try_flush(conn, wire);
                let peer = conn.peer.clone();
                close_conn(poller, wheel, conns, rtel, backend, key, Some(&e));
                classify_drop(&e, wire, &peer, stall_limit);
                continue;
            }
        }
        match pump(conns.get_mut(key).unwrap(), key, wire, backend) {
            Ok(p) => {
                let conn = conns.get_mut(key).unwrap();
                let idle = !conn.on_clock() && !conn.closing && !conn.handler.suspended();
                if !p.keep || (draining && idle) {
                    close_conn(poller, wheel, conns, rtel, backend, key, None);
                } else {
                    refresh(poller, wheel, conn, key, p.progressed, now, stall_limit);
                }
            }
            Err(e) => {
                let peer = conns.get(key).map(|c| c.peer.clone()).unwrap_or_default();
                close_conn(poller, wheel, conns, rtel, backend, key, Some(&e));
                classify_drop(&e, wire, &peer, stall_limit);
            }
        }
    }
}

/// Adopts a fresh socket: nonblocking, registered for read interest, one
/// handler built for its lifetime.
fn register(
    poller: &Poller,
    conns: &mut Slab<Conn>,
    factory: &FrameFactory,
    stream: TcpStream,
    name: &str,
) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown peer>".to_string());
    if let Err(e) = stream.set_nonblocking(true).and(stream.set_nodelay(true)) {
        eprintln!("{name}: rejecting {peer}: {e}");
        return;
    }
    let key = conns.insert(Conn {
        stream,
        handler: factory(),
        peer,
        rbuf: vec![0u8; READ_BUF],
        start: 0,
        end: 0,
        wbuf: Vec::with_capacity(16 * 1024),
        wpos: 0,
        interest: Interest::READ,
        timer: None,
        closing: false,
    });
    let conn = conns.get(key).expect("just inserted");
    if let Err(e) = poller.add(&conn.stream, key, Interest::READ) {
        eprintln!("{name}: rejecting {}: {e}", conn.peer);
        conns.remove(key);
    }
}

/// Brings a connection's epoll interest and stall deadline in line with
/// its state: progress re-arms the clock, a clear clock disarms it.
fn refresh(
    poller: &Poller,
    wheel: &mut TimerWheel,
    conn: &mut Conn,
    key: usize,
    progressed: bool,
    now: Instant,
    stall_limit: Duration,
) {
    let want = conn.desired_interest();
    if want != conn.interest && poller.modify(&conn.stream, key, want).is_ok() {
        conn.interest = want;
    }
    let on_clock = conn.on_clock();
    match (on_clock, conn.timer) {
        (false, Some(t)) => {
            wheel.cancel(t);
            conn.timer = None;
        }
        (true, None) => {
            conn.timer = Some(wheel.insert(now + stall_limit, key));
        }
        (true, Some(t)) if progressed => {
            wheel.cancel(t);
            conn.timer = Some(wheel.insert(now + stall_limit, key));
        }
        _ => {}
    }
}

/// Removes a connection from the poller, wheel and slab. `err` is only
/// for deciding trace noise — deliberate drops were already classified
/// by the caller.
fn close_conn(
    poller: &Poller,
    wheel: &mut TimerWheel,
    conns: &mut Slab<Conn>,
    rtel: &ReactorTelemetry,
    backend: &mut dyn LoopBackend,
    key: usize,
    err: Option<&io::Error>,
) {
    let Some(conn) = conns.remove(key) else {
        return;
    };
    if let Some(t) = conn.timer {
        wheel.cancel(t);
    }
    let _ = poller.delete(&conn.stream);
    backend.conn_closed(key);
    rtel.closed.inc();
    if let Some(e) = err {
        let routine = drop_cause(e).is_some()
            || matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::BrokenPipe
            );
        if !routine {
            eprintln!("delta-reactor: dropping {}: {e}", conn.peer);
        }
    }
}
