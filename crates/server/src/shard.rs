//! Shard workers: one thread per shard, each driving its own
//! [`delta_core::Engine`] over a repository slice.
//!
//! A worker is the network driver of the same engine `delta_core::sim`
//! and `delta_core::deploy` run: updates invalidate before the policy
//! sees them, queries run under the satisfaction contract. Because a
//! shard only ever sees its own sub-catalog and sub-trace, its ledger is
//! *byte-identical* to an in-process simulation of that sub-trace — the
//! property the server integration and tri-modal tests pin down.
//!
//! Two behaviors are shard-specific:
//!
//! * The engine runs with a **clamped clock** (arrival order wins), so
//!   concurrent connections cannot violate the repository's per-object
//!   monotonicity. Under lockstep replay the clamp is a no-op.
//! * A policy that violates the satisfaction contract produces a typed
//!   [`ShardReply::QueryFailed`] — the worker thread stays up and keeps
//!   serving; the connection layer turns the failure into an error
//!   frame.
//!
//! When the server was started with a snapshot directory, the worker
//! writes its engine snapshot there on graceful shutdown, and
//! [`spawn_shard`] accepts a restored snapshot to resume warm.

use crate::config::PolicyKind;
use crate::protocol::ShardStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use delta_core::engine::write_snapshot;
use delta_core::{Engine, EngineOutcome, EngineSnapshot};
use delta_storage::ObjectCatalog;
use delta_workload::{Event, QueryEvent, UpdateEvent};
use std::path::PathBuf;
use std::thread::JoinHandle;

/// A request to one shard worker, carrying its reply channel.
pub enum ShardRequest {
    /// Apply an update (local object id).
    Update(UpdateEvent, Sender<ShardReply>),
    /// Serve a sub-query (local object ids, apportioned bytes).
    Query(QueryEvent, Sender<ShardReply>),
    /// Execute a coalesced sub-batch in order, replying once with all
    /// outcomes — one channel send each way regardless of batch size.
    Batch(Vec<ShardOp>, Sender<ShardReply>),
    /// Snapshot this shard's statistics.
    Stats(Sender<ShardReply>),
    /// Finish outstanding work, persist the engine snapshot (when
    /// configured), report final statistics, and exit.
    Shutdown(Sender<ShardReply>),
}

/// One operation inside a [`ShardRequest::Batch`], tagged with the index
/// of the client-batch item it came from so the connection thread can
/// reassemble per-item replies after the fan-out.
#[derive(Clone, Debug)]
pub enum ShardOp {
    /// Serve a sub-query (local object ids, apportioned bytes).
    Query {
        /// Index of the originating batch item.
        item: u32,
        /// The shard-local sub-query.
        event: QueryEvent,
    },
    /// Apply an update (local object id).
    Update {
        /// Index of the originating batch item.
        item: u32,
        /// The shard-local update.
        event: UpdateEvent,
    },
}

/// Outcome of one [`ShardOp`], in sub-batch order.
#[derive(Clone, Debug)]
pub enum OpOutcome {
    /// The sub-query was served.
    Query {
        /// Index of the originating batch item.
        item: u32,
        /// Whether it was answered from the shard cache (vs shipped).
        local: bool,
    },
    /// The sub-query violated the satisfaction contract.
    QueryFailed {
        /// Index of the originating batch item.
        item: u32,
        /// The rendered engine error.
        error: String,
    },
    /// The update was applied.
    Update {
        /// Index of the originating batch item.
        item: u32,
        /// The object's new version.
        version: u64,
    },
}

/// A shard worker's reply.
#[derive(Clone, Debug)]
pub enum ShardReply {
    /// The update was applied; the object is now at `version`.
    UpdateDone {
        /// Responding shard.
        shard: u16,
        /// New version of the updated object.
        version: u64,
    },
    /// The sub-query was served.
    QueryDone {
        /// Responding shard.
        shard: u16,
        /// Whether it was answered from the shard cache (vs shipped).
        local: bool,
    },
    /// The sub-query violated the satisfaction contract; the worker is
    /// still alive and serving.
    QueryFailed {
        /// Responding shard.
        shard: u16,
        /// The rendered engine error.
        error: String,
    },
    /// All outcomes of a [`ShardRequest::Batch`], in sub-batch order.
    BatchDone {
        /// Responding shard.
        shard: u16,
        /// One outcome per op.
        outcomes: Vec<OpOutcome>,
    },
    /// Statistics snapshot (also the final reply to `Shutdown`).
    Stats(ShardStats),
}

/// Handle to a running shard worker.
pub struct ShardHandle {
    /// Request channel into the worker.
    pub tx: Sender<ShardRequest>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// Asks the worker to finish and waits for it, returning its final
    /// statistics.
    pub fn shutdown(self) -> ShardStats {
        let (reply_tx, reply_rx) = unbounded();
        // A worker that already exited (e.g. panicked) just yields
        // default stats; join below will propagate the panic.
        let _ = self.tx.send(ShardRequest::Shutdown(reply_tx));
        let stats = match reply_rx.recv() {
            Ok(ShardReply::Stats(s)) => s,
            _ => ShardStats::default(),
        };
        self.join.join().expect("shard worker panicked");
        stats
    }
}

/// Everything a shard worker is born with.
pub struct ShardSpec {
    /// Shard index.
    pub shard: u16,
    /// The shard's sub-catalog.
    pub catalog: ObjectCatalog,
    /// Configured cache budget for this shard.
    pub cache_bytes: u64,
    /// Policy kind every shard runs.
    pub policy: PolicyKind,
    /// Seed for this shard's policy.
    pub seed: u64,
    /// A validated snapshot to resume from, if warm-restarting.
    pub restore: Option<EngineSnapshot>,
    /// Where to persist the engine snapshot on graceful shutdown.
    pub snapshot_path: Option<PathBuf>,
}

/// Spawns a shard worker from its spec.
pub fn spawn_shard(spec: ShardSpec) -> ShardHandle {
    let (tx, rx) = unbounded::<ShardRequest>();
    let name = format!("delta-shard-{}", spec.shard);
    let join = std::thread::Builder::new()
        .name(name)
        .spawn(move || run_shard(spec, rx))
        .expect("spawn shard worker");
    ShardHandle { tx, join }
}

fn run_shard(spec: ShardSpec, rx: Receiver<ShardRequest>) {
    let ShardSpec {
        shard,
        catalog,
        cache_bytes,
        policy: policy_kind,
        seed,
        restore,
        snapshot_path,
    } = spec;
    let policy = policy_kind.build(cache_bytes, seed);
    let mut engine = match restore {
        // Snapshots are validated at server start; a mismatch here means
        // the file changed underneath us — fail the thread loudly.
        Some(snap) => Engine::restore(policy, &catalog, &snap)
            .unwrap_or_else(|e| panic!("shard {shard}: snapshot restore failed: {e}"))
            .clamp_clock(true),
        None => {
            let mut e = Engine::new(policy, &catalog, cache_bytes).clamp_clock(true);
            e.init(None);
            e
        }
    };

    let serve_query = |engine: &mut Engine<'_>, q: QueryEvent| match engine.apply(&Event::Query(q))
    {
        Ok(EngineOutcome::Query { local, .. }) => Ok(local),
        Ok(other) => panic!("query produced {other:?}"),
        Err(e) => Err(format!("shard {shard}: {e}")),
    };
    let apply_update = |engine: &mut Engine<'_>, u: UpdateEvent| match engine
        .apply(&Event::Update(u))
        .expect("updates cannot violate the contract")
    {
        EngineOutcome::Update { version } => version,
        other => panic!("update produced {other:?}"),
    };

    while let Ok(req) = rx.recv() {
        match req {
            ShardRequest::Update(u, reply) => {
                let version = apply_update(&mut engine, u);
                let _ = reply.send(ShardReply::UpdateDone { shard, version });
            }
            ShardRequest::Query(q, reply) => {
                let _ = reply.send(match serve_query(&mut engine, q) {
                    Ok(local) => ShardReply::QueryDone { shard, local },
                    Err(error) => ShardReply::QueryFailed { shard, error },
                });
            }
            ShardRequest::Batch(ops, reply) => {
                let outcomes = ops
                    .into_iter()
                    .map(|op| match op {
                        ShardOp::Query { item, event } => match serve_query(&mut engine, event) {
                            Ok(local) => OpOutcome::Query { item, local },
                            Err(error) => OpOutcome::QueryFailed { item, error },
                        },
                        ShardOp::Update { item, event } => OpOutcome::Update {
                            item,
                            version: apply_update(&mut engine, event),
                        },
                    })
                    .collect();
                let _ = reply.send(ShardReply::BatchDone { shard, outcomes });
            }
            ShardRequest::Stats(reply) => {
                let _ = reply.send(ShardReply::Stats(stats(shard, policy_kind, &engine)));
            }
            ShardRequest::Shutdown(reply) => {
                if let Some(path) = &snapshot_path {
                    if let Err(e) = write_snapshot(path, &engine.snapshot()) {
                        eprintln!("delta-shard-{shard}: snapshot write failed: {e}");
                    }
                }
                let _ = reply.send(ShardReply::Stats(stats(shard, policy_kind, &engine)));
                return;
            }
        }
    }
}

fn stats(shard: u16, kind: PolicyKind, engine: &Engine<'_>) -> ShardStats {
    ShardStats {
        shard,
        policy: kind.policy_name().to_string(),
        metrics: engine.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::ObjectId;
    use delta_workload::QueryKind;

    fn query(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Selection,
        }
    }

    fn spawn(shard: u16, catalog: ObjectCatalog, cache: u64, policy: PolicyKind) -> ShardHandle {
        spawn_shard(ShardSpec {
            shard,
            catalog,
            cache_bytes: cache,
            policy,
            seed: if policy == PolicyKind::VCover { 9 } else { 1 },
            restore: None,
            snapshot_path: None,
        })
    }

    #[test]
    fn worker_processes_events_and_reports() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn(3, catalog, 1_000, PolicyKind::NoCache);
        let (reply_tx, reply_rx) = unbounded();

        handle
            .tx
            .send(ShardRequest::Update(
                UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
                reply_tx.clone(),
            ))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::UpdateDone { shard, version } => {
                assert_eq!((shard, version), (3, 1));
            }
            other => panic!("unexpected {other:?}"),
        }

        handle
            .tx
            .send(ShardRequest::Query(query(2, vec![0], 55), reply_tx.clone()))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryDone { shard, local } => {
                assert_eq!(shard, 3);
                assert!(!local, "NoCache always ships");
            }
            other => panic!("unexpected {other:?}"),
        }

        let final_stats = handle.shutdown();
        assert_eq!(final_stats.metrics.events(), 2);
        assert_eq!(final_stats.metrics.ledger.shipped_queries, 1);
        assert_eq!(final_stats.metrics.ledger.breakdown.query_ship.bytes(), 55);
        assert_eq!(final_stats.policy, "NoCache");
    }

    #[test]
    fn batched_ops_match_singles_byte_for_byte() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200, 300]);
        let ops = vec![
            ShardOp::Update {
                item: 0,
                event: UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
            },
            ShardOp::Query {
                item: 1,
                event: query(2, vec![0, 2], 55),
            },
            ShardOp::Update {
                item: 2,
                event: UpdateEvent {
                    seq: 3,
                    object: ObjectId(1),
                    bytes: 20,
                },
            },
            ShardOp::Query {
                item: 3,
                event: query(4, vec![1], 7),
            },
        ];

        // One frame per op.
        let singles = spawn(0, catalog.clone(), 500, PolicyKind::VCover);
        let (tx, rx) = unbounded();
        for op in ops.clone() {
            match op {
                ShardOp::Query { event, .. } => {
                    singles
                        .tx
                        .send(ShardRequest::Query(event, tx.clone()))
                        .unwrap();
                }
                ShardOp::Update { event, .. } => {
                    singles
                        .tx
                        .send(ShardRequest::Update(event, tx.clone()))
                        .unwrap();
                }
            }
            rx.recv().unwrap();
        }
        let want = singles.shutdown();

        // The same ops coalesced into one channel send.
        let batched = spawn(0, catalog, 500, PolicyKind::VCover);
        let (tx, rx) = unbounded();
        batched.tx.send(ShardRequest::Batch(ops, tx)).unwrap();
        match rx.recv().unwrap() {
            ShardReply::BatchDone { shard, outcomes } => {
                assert_eq!(shard, 0);
                assert_eq!(outcomes.len(), 4);
                assert!(matches!(
                    outcomes[0],
                    OpOutcome::Update {
                        item: 0,
                        version: 1
                    }
                ));
                assert!(matches!(outcomes[3], OpOutcome::Query { item: 3, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let got = batched.shutdown();
        assert_eq!(got.metrics, want.metrics);
    }

    #[test]
    fn replica_shard_mirrors_repository() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn(0, catalog, 1, PolicyKind::Replica);
        let (reply_tx, reply_rx) = unbounded();
        handle
            .tx
            .send(ShardRequest::Query(
                query(1, vec![0, 1], 999),
                reply_tx.clone(),
            ))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryDone { local, .. } => assert!(local, "replica answers locally"),
            other => panic!("unexpected {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.metrics.ledger.local_answers, 1);
        assert_eq!(
            stats.metrics.residents, 2,
            "replica preloads the whole sub-catalog"
        );
    }

    #[test]
    fn broken_policy_fails_typed_and_worker_survives() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn(0, catalog, 1_000, PolicyKind::Broken);
        let (reply_tx, reply_rx) = unbounded();
        handle
            .tx
            .send(ShardRequest::Query(query(1, vec![0], 5), reply_tx.clone()))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryFailed { shard, error } => {
                assert_eq!(shard, 0);
                assert!(error.contains("Broken"), "{error}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The worker is still alive and serves updates and batches.
        handle
            .tx
            .send(ShardRequest::Update(
                UpdateEvent {
                    seq: 2,
                    object: ObjectId(1),
                    bytes: 4,
                },
                reply_tx.clone(),
            ))
            .unwrap();
        assert!(matches!(
            reply_rx.recv().unwrap(),
            ShardReply::UpdateDone { version: 1, .. }
        ));
        let (tx, rx) = unbounded();
        handle
            .tx
            .send(ShardRequest::Batch(
                vec![
                    ShardOp::Query {
                        item: 0,
                        event: query(3, vec![0], 5),
                    },
                    ShardOp::Update {
                        item: 1,
                        event: UpdateEvent {
                            seq: 4,
                            object: ObjectId(1),
                            bytes: 1,
                        },
                    },
                ],
                tx,
            ))
            .unwrap();
        match rx.recv().unwrap() {
            ShardReply::BatchDone { outcomes, .. } => {
                assert!(matches!(
                    outcomes[0],
                    OpOutcome::QueryFailed { item: 0, .. }
                ));
                assert!(matches!(
                    outcomes[1],
                    OpOutcome::Update {
                        item: 1,
                        version: 2
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.metrics.updates, 2);
        assert_eq!(stats.metrics.queries, 0, "violated queries are not counted");
    }

    #[test]
    fn shutdown_snapshot_roundtrips_through_spawn() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let path = std::env::temp_dir().join(format!(
            "delta-shard-snap-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let handle = spawn_shard(ShardSpec {
            shard: 0,
            catalog: catalog.clone(),
            cache_bytes: 1_000,
            policy: PolicyKind::VCover,
            seed: 7,
            restore: None,
            snapshot_path: Some(path.clone()),
        });
        let (reply_tx, reply_rx) = unbounded();
        handle
            .tx
            .send(ShardRequest::Update(
                UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
                reply_tx.clone(),
            ))
            .unwrap();
        reply_rx.recv().unwrap();
        handle
            .tx
            .send(ShardRequest::Query(query(2, vec![0], 55), reply_tx.clone()))
            .unwrap();
        reply_rx.recv().unwrap();
        let first = handle.shutdown();

        // Resume from the written snapshot: metrics carry over exactly.
        let snap = delta_core::engine::read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let resumed = spawn_shard(ShardSpec {
            shard: 0,
            catalog,
            cache_bytes: 1_000,
            policy: PolicyKind::VCover,
            seed: 7,
            restore: Some(snap),
            snapshot_path: None,
        });
        let stats = resumed.shutdown();
        assert_eq!(stats.metrics, first.metrics);
    }
}
