//! Shard workers: one thread per shard, each owning a policy, a
//! repository slice and a cache store.
//!
//! A worker's event loop is the network twin of [`delta_core::simulate`]:
//! updates are applied to the repository and invalidate the cache before
//! the policy sees them; queries run under the same satisfaction contract
//! the simulator enforces. Because a shard only ever sees its own
//! sub-catalog and sub-trace, its ledger is *byte-identical* to an
//! in-process simulation of that sub-trace — the property the server
//! integration tests pin down.

use crate::config::PolicyKind;
use crate::protocol::ShardStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use delta_core::{CostLedger, SimContext};
use delta_storage::{CacheStore, ObjectCatalog, Repository};
use delta_workload::{QueryEvent, UpdateEvent};
use std::thread::JoinHandle;

/// A request to one shard worker, carrying its reply channel.
pub enum ShardRequest {
    /// Apply an update (local object id).
    Update(UpdateEvent, Sender<ShardReply>),
    /// Serve a sub-query (local object ids, apportioned bytes).
    Query(QueryEvent, Sender<ShardReply>),
    /// Snapshot this shard's statistics.
    Stats(Sender<ShardReply>),
    /// Finish outstanding work, report final statistics, and exit.
    Shutdown(Sender<ShardReply>),
}

/// A shard worker's reply.
#[derive(Clone, Debug)]
pub enum ShardReply {
    /// The update was applied; the object is now at `version`.
    UpdateDone {
        /// Responding shard.
        shard: u16,
        /// New version of the updated object.
        version: u64,
    },
    /// The sub-query was served.
    QueryDone {
        /// Responding shard.
        shard: u16,
        /// Whether it was answered from the shard cache (vs shipped).
        local: bool,
    },
    /// Statistics snapshot (also the final reply to `Shutdown`).
    Stats(ShardStats),
}

/// Handle to a running shard worker.
pub struct ShardHandle {
    /// Request channel into the worker.
    pub tx: Sender<ShardRequest>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// Asks the worker to finish and waits for it, returning its final
    /// statistics.
    pub fn shutdown(self) -> ShardStats {
        let (reply_tx, reply_rx) = unbounded();
        // A worker that already exited (e.g. panicked) just yields
        // default stats; join below will propagate the panic.
        let _ = self.tx.send(ShardRequest::Shutdown(reply_tx));
        let stats = match reply_rx.recv() {
            Ok(ShardReply::Stats(s)) => s,
            _ => ShardStats::default(),
        };
        self.join.join().expect("shard worker panicked");
        stats
    }
}

/// Spawns shard worker `shard` over its sub-catalog.
pub fn spawn_shard(
    shard: u16,
    catalog: ObjectCatalog,
    cache_bytes: u64,
    policy_kind: PolicyKind,
    seed: u64,
) -> ShardHandle {
    let (tx, rx) = unbounded::<ShardRequest>();
    let join = std::thread::Builder::new()
        .name(format!("delta-shard-{shard}"))
        .spawn(move || run_shard(shard, catalog, cache_bytes, policy_kind, seed, rx))
        .expect("spawn shard worker");
    ShardHandle { tx, join }
}

fn run_shard(
    shard: u16,
    catalog: ObjectCatalog,
    cache_bytes: u64,
    policy_kind: PolicyKind,
    seed: u64,
    rx: Receiver<ShardRequest>,
) {
    let mut policy = policy_kind.build(cache_bytes, seed);
    let mut repo = Repository::new(catalog.clone());
    let capacity = policy.preferred_capacity(&catalog, cache_bytes);
    let mut cache = CacheStore::new(capacity);
    let mut ledger = CostLedger::default();
    let mut events = 0u64;
    // The repository requires per-object monotone update sequences, and
    // the staleness contract requires a query's horizon to cover every
    // already-applied update. A single lockstep connection preserves
    // trace order, but concurrent connections may deliver events out of
    // order; clamp every timestamp to the shard's clock so arrival order
    // becomes the authoritative order (as in any real ingest pipeline).
    // Under lockstep replay the clamp is a no-op, so simulator
    // equivalence is untouched.
    let mut max_seq = 0u64;

    {
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
        policy.init(&mut ctx);
    }

    let stats = |events: u64, cache: &CacheStore, ledger: &CostLedger| ShardStats {
        shard,
        policy: policy_name_of(policy_kind),
        events,
        cache_capacity: cache.capacity(),
        cache_used: cache.used(),
        residents: cache.len() as u64,
        ledger: ledger.clone(),
    };

    while let Ok(req) = rx.recv() {
        match req {
            ShardRequest::Update(u, reply) => {
                let seq = u.seq.max(max_seq);
                max_seq = seq;
                let u = UpdateEvent { seq, ..u };
                let version = repo.apply_update(u.object, u.bytes, seq);
                cache.invalidate(u.object);
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
                policy.on_update(&u, &mut ctx);
                events += 1;
                let _ = reply.send(ShardReply::UpdateDone { shard, version });
            }
            ShardRequest::Query(q, reply) => {
                let now = q.seq.max(max_seq);
                max_seq = now;
                let q = QueryEvent { seq: now, ..q };
                let local_before = ledger.local_answers;
                {
                    let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, now);
                    policy.on_query(&q, &mut ctx);
                    assert!(
                        ctx.satisfied(),
                        "policy {} neither shipped nor answered query at seq {} on shard {shard}",
                        policy.name(),
                        q.seq
                    );
                }
                events += 1;
                let local = ledger.local_answers > local_before;
                let _ = reply.send(ShardReply::QueryDone { shard, local });
            }
            ShardRequest::Stats(reply) => {
                let _ = reply.send(ShardReply::Stats(stats(events, &cache, &ledger)));
            }
            ShardRequest::Shutdown(reply) => {
                let _ = reply.send(ShardReply::Stats(stats(events, &cache, &ledger)));
                return;
            }
        }
    }
}

fn policy_name_of(kind: PolicyKind) -> String {
    // Stable names matching the policies' own `name()` strings.
    match kind {
        PolicyKind::VCover => "VCover".to_string(),
        PolicyKind::Benefit => "Benefit".to_string(),
        PolicyKind::NoCache => "NoCache".to_string(),
        PolicyKind::Replica => "Replica".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::ObjectId;
    use delta_workload::QueryKind;

    fn query(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Selection,
        }
    }

    #[test]
    fn worker_processes_events_and_reports() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn_shard(3, catalog, 1_000, PolicyKind::NoCache, 1);
        let (reply_tx, reply_rx) = unbounded();

        handle
            .tx
            .send(ShardRequest::Update(
                UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
                reply_tx.clone(),
            ))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::UpdateDone { shard, version } => {
                assert_eq!((shard, version), (3, 1));
            }
            other => panic!("unexpected {other:?}"),
        }

        handle
            .tx
            .send(ShardRequest::Query(query(2, vec![0], 55), reply_tx.clone()))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryDone { shard, local } => {
                assert_eq!(shard, 3);
                assert!(!local, "NoCache always ships");
            }
            other => panic!("unexpected {other:?}"),
        }

        let final_stats = handle.shutdown();
        assert_eq!(final_stats.events, 2);
        assert_eq!(final_stats.ledger.shipped_queries, 1);
        assert_eq!(final_stats.ledger.breakdown.query_ship.bytes(), 55);
        assert_eq!(final_stats.policy, "NoCache");
    }

    #[test]
    fn replica_shard_mirrors_repository() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn_shard(0, catalog, 1, PolicyKind::Replica, 1);
        let (reply_tx, reply_rx) = unbounded();
        handle
            .tx
            .send(ShardRequest::Query(
                query(1, vec![0, 1], 999),
                reply_tx.clone(),
            ))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryDone { local, .. } => assert!(local, "replica answers locally"),
            other => panic!("unexpected {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.ledger.local_answers, 1);
        assert_eq!(stats.residents, 2, "replica preloads the whole sub-catalog");
    }
}
