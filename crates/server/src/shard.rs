//! Shard workers: one thread per shard, each owning a policy, a
//! repository slice and a cache store.
//!
//! A worker's event loop is the network twin of [`delta_core::simulate`]:
//! updates are applied to the repository and invalidate the cache before
//! the policy sees them; queries run under the same satisfaction contract
//! the simulator enforces. Because a shard only ever sees its own
//! sub-catalog and sub-trace, its ledger is *byte-identical* to an
//! in-process simulation of that sub-trace — the property the server
//! integration tests pin down.

use crate::config::PolicyKind;
use crate::protocol::ShardStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use delta_core::{CostLedger, SimContext};
use delta_storage::{CacheStore, ObjectCatalog, Repository};
use delta_workload::{QueryEvent, UpdateEvent};
use std::thread::JoinHandle;

/// A request to one shard worker, carrying its reply channel.
pub enum ShardRequest {
    /// Apply an update (local object id).
    Update(UpdateEvent, Sender<ShardReply>),
    /// Serve a sub-query (local object ids, apportioned bytes).
    Query(QueryEvent, Sender<ShardReply>),
    /// Execute a coalesced sub-batch in order, replying once with all
    /// outcomes — one channel send each way regardless of batch size.
    Batch(Vec<ShardOp>, Sender<ShardReply>),
    /// Snapshot this shard's statistics.
    Stats(Sender<ShardReply>),
    /// Finish outstanding work, report final statistics, and exit.
    Shutdown(Sender<ShardReply>),
}

/// One operation inside a [`ShardRequest::Batch`], tagged with the index
/// of the client-batch item it came from so the connection thread can
/// reassemble per-item replies after the fan-out.
#[derive(Clone, Debug)]
pub enum ShardOp {
    /// Serve a sub-query (local object ids, apportioned bytes).
    Query {
        /// Index of the originating batch item.
        item: u32,
        /// The shard-local sub-query.
        event: QueryEvent,
    },
    /// Apply an update (local object id).
    Update {
        /// Index of the originating batch item.
        item: u32,
        /// The shard-local update.
        event: UpdateEvent,
    },
}

/// Outcome of one [`ShardOp`], in sub-batch order.
#[derive(Clone, Copy, Debug)]
pub enum OpOutcome {
    /// The sub-query was served.
    Query {
        /// Index of the originating batch item.
        item: u32,
        /// Whether it was answered from the shard cache (vs shipped).
        local: bool,
    },
    /// The update was applied.
    Update {
        /// Index of the originating batch item.
        item: u32,
        /// The object's new version.
        version: u64,
    },
}

/// A shard worker's reply.
#[derive(Clone, Debug)]
pub enum ShardReply {
    /// The update was applied; the object is now at `version`.
    UpdateDone {
        /// Responding shard.
        shard: u16,
        /// New version of the updated object.
        version: u64,
    },
    /// The sub-query was served.
    QueryDone {
        /// Responding shard.
        shard: u16,
        /// Whether it was answered from the shard cache (vs shipped).
        local: bool,
    },
    /// All outcomes of a [`ShardRequest::Batch`], in sub-batch order.
    BatchDone {
        /// Responding shard.
        shard: u16,
        /// One outcome per op.
        outcomes: Vec<OpOutcome>,
    },
    /// Statistics snapshot (also the final reply to `Shutdown`).
    Stats(ShardStats),
}

/// Handle to a running shard worker.
pub struct ShardHandle {
    /// Request channel into the worker.
    pub tx: Sender<ShardRequest>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// Asks the worker to finish and waits for it, returning its final
    /// statistics.
    pub fn shutdown(self) -> ShardStats {
        let (reply_tx, reply_rx) = unbounded();
        // A worker that already exited (e.g. panicked) just yields
        // default stats; join below will propagate the panic.
        let _ = self.tx.send(ShardRequest::Shutdown(reply_tx));
        let stats = match reply_rx.recv() {
            Ok(ShardReply::Stats(s)) => s,
            _ => ShardStats::default(),
        };
        self.join.join().expect("shard worker panicked");
        stats
    }
}

/// Spawns shard worker `shard` over its sub-catalog.
pub fn spawn_shard(
    shard: u16,
    catalog: ObjectCatalog,
    cache_bytes: u64,
    policy_kind: PolicyKind,
    seed: u64,
) -> ShardHandle {
    let (tx, rx) = unbounded::<ShardRequest>();
    let join = std::thread::Builder::new()
        .name(format!("delta-shard-{shard}"))
        .spawn(move || run_shard(shard, catalog, cache_bytes, policy_kind, seed, rx))
        .expect("spawn shard worker");
    ShardHandle { tx, join }
}

/// The mutable world one worker owns. Single events and batch ops go
/// through the same two methods, so a coalesced sub-batch is, by
/// construction, byte-identical to the same ops sent one frame each.
struct ShardState {
    shard: u16,
    policy: Box<dyn delta_core::CachingPolicy + Send>,
    repo: Repository,
    cache: CacheStore,
    ledger: CostLedger,
    events: u64,
    // The repository requires per-object monotone update sequences, and
    // the staleness contract requires a query's horizon to cover every
    // already-applied update. A single lockstep connection preserves
    // trace order, but concurrent connections may deliver events out of
    // order; clamp every timestamp to the shard's clock so arrival order
    // becomes the authoritative order (as in any real ingest pipeline).
    // Under lockstep replay the clamp is a no-op, so simulator
    // equivalence is untouched.
    max_seq: u64,
}

impl ShardState {
    fn apply_update(&mut self, u: UpdateEvent) -> u64 {
        let seq = u.seq.max(self.max_seq);
        self.max_seq = seq;
        let u = UpdateEvent { seq, ..u };
        let version = self.repo.apply_update(u.object, u.bytes, seq);
        self.cache.invalidate(u.object);
        let mut ctx = SimContext::new(&mut self.repo, &mut self.cache, &mut self.ledger, seq);
        self.policy.on_update(&u, &mut ctx);
        self.events += 1;
        version
    }

    fn serve_query(&mut self, q: QueryEvent) -> bool {
        let now = q.seq.max(self.max_seq);
        self.max_seq = now;
        let q = QueryEvent { seq: now, ..q };
        let local_before = self.ledger.local_answers;
        {
            let mut ctx = SimContext::new(&mut self.repo, &mut self.cache, &mut self.ledger, now);
            self.policy.on_query(&q, &mut ctx);
            assert!(
                ctx.satisfied(),
                "policy {} neither shipped nor answered query at seq {} on shard {}",
                self.policy.name(),
                q.seq,
                self.shard
            );
        }
        self.events += 1;
        self.ledger.local_answers > local_before
    }

    fn stats(&self, policy_kind: PolicyKind) -> ShardStats {
        ShardStats {
            shard: self.shard,
            policy: policy_name_of(policy_kind),
            events: self.events,
            cache_capacity: self.cache.capacity(),
            cache_used: self.cache.used(),
            residents: self.cache.len() as u64,
            ledger: self.ledger.clone(),
        }
    }
}

fn run_shard(
    shard: u16,
    catalog: ObjectCatalog,
    cache_bytes: u64,
    policy_kind: PolicyKind,
    seed: u64,
    rx: Receiver<ShardRequest>,
) {
    let mut policy = policy_kind.build(cache_bytes, seed);
    let mut repo = Repository::new(catalog.clone());
    let capacity = policy.preferred_capacity(&catalog, cache_bytes);
    let mut cache = CacheStore::new(capacity);
    let mut ledger = CostLedger::default();
    {
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
        policy.init(&mut ctx);
    }
    let mut state = ShardState {
        shard,
        policy,
        repo,
        cache,
        ledger,
        events: 0,
        max_seq: 0,
    };

    while let Ok(req) = rx.recv() {
        match req {
            ShardRequest::Update(u, reply) => {
                let version = state.apply_update(u);
                let _ = reply.send(ShardReply::UpdateDone { shard, version });
            }
            ShardRequest::Query(q, reply) => {
                let local = state.serve_query(q);
                let _ = reply.send(ShardReply::QueryDone { shard, local });
            }
            ShardRequest::Batch(ops, reply) => {
                let outcomes = ops
                    .into_iter()
                    .map(|op| match op {
                        ShardOp::Query { item, event } => OpOutcome::Query {
                            item,
                            local: state.serve_query(event),
                        },
                        ShardOp::Update { item, event } => OpOutcome::Update {
                            item,
                            version: state.apply_update(event),
                        },
                    })
                    .collect();
                let _ = reply.send(ShardReply::BatchDone { shard, outcomes });
            }
            ShardRequest::Stats(reply) => {
                let _ = reply.send(ShardReply::Stats(state.stats(policy_kind)));
            }
            ShardRequest::Shutdown(reply) => {
                let _ = reply.send(ShardReply::Stats(state.stats(policy_kind)));
                return;
            }
        }
    }
}

fn policy_name_of(kind: PolicyKind) -> String {
    // Stable names matching the policies' own `name()` strings.
    match kind {
        PolicyKind::VCover => "VCover".to_string(),
        PolicyKind::Benefit => "Benefit".to_string(),
        PolicyKind::NoCache => "NoCache".to_string(),
        PolicyKind::Replica => "Replica".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::ObjectId;
    use delta_workload::QueryKind;

    fn query(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Selection,
        }
    }

    #[test]
    fn worker_processes_events_and_reports() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn_shard(3, catalog, 1_000, PolicyKind::NoCache, 1);
        let (reply_tx, reply_rx) = unbounded();

        handle
            .tx
            .send(ShardRequest::Update(
                UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
                reply_tx.clone(),
            ))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::UpdateDone { shard, version } => {
                assert_eq!((shard, version), (3, 1));
            }
            other => panic!("unexpected {other:?}"),
        }

        handle
            .tx
            .send(ShardRequest::Query(query(2, vec![0], 55), reply_tx.clone()))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryDone { shard, local } => {
                assert_eq!(shard, 3);
                assert!(!local, "NoCache always ships");
            }
            other => panic!("unexpected {other:?}"),
        }

        let final_stats = handle.shutdown();
        assert_eq!(final_stats.events, 2);
        assert_eq!(final_stats.ledger.shipped_queries, 1);
        assert_eq!(final_stats.ledger.breakdown.query_ship.bytes(), 55);
        assert_eq!(final_stats.policy, "NoCache");
    }

    #[test]
    fn batched_ops_match_singles_byte_for_byte() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200, 300]);
        let ops = vec![
            ShardOp::Update {
                item: 0,
                event: UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
            },
            ShardOp::Query {
                item: 1,
                event: query(2, vec![0, 2], 55),
            },
            ShardOp::Update {
                item: 2,
                event: UpdateEvent {
                    seq: 3,
                    object: ObjectId(1),
                    bytes: 20,
                },
            },
            ShardOp::Query {
                item: 3,
                event: query(4, vec![1], 7),
            },
        ];

        // One frame per op.
        let singles = spawn_shard(0, catalog.clone(), 500, PolicyKind::VCover, 9);
        let (tx, rx) = unbounded();
        for op in ops.clone() {
            match op {
                ShardOp::Query { event, .. } => {
                    singles
                        .tx
                        .send(ShardRequest::Query(event, tx.clone()))
                        .unwrap();
                }
                ShardOp::Update { event, .. } => {
                    singles
                        .tx
                        .send(ShardRequest::Update(event, tx.clone()))
                        .unwrap();
                }
            }
            rx.recv().unwrap();
        }
        let want = singles.shutdown();

        // The same ops coalesced into one channel send.
        let batched = spawn_shard(0, catalog, 500, PolicyKind::VCover, 9);
        let (tx, rx) = unbounded();
        batched.tx.send(ShardRequest::Batch(ops, tx)).unwrap();
        match rx.recv().unwrap() {
            ShardReply::BatchDone { shard, outcomes } => {
                assert_eq!(shard, 0);
                assert_eq!(outcomes.len(), 4);
                assert!(matches!(
                    outcomes[0],
                    OpOutcome::Update {
                        item: 0,
                        version: 1
                    }
                ));
                assert!(matches!(outcomes[3], OpOutcome::Query { item: 3, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let got = batched.shutdown();
        assert_eq!(got.ledger, want.ledger);
        assert_eq!(got.events, want.events);
        assert_eq!(got.residents, want.residents);
    }

    #[test]
    fn replica_shard_mirrors_repository() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let handle = spawn_shard(0, catalog, 1, PolicyKind::Replica, 1);
        let (reply_tx, reply_rx) = unbounded();
        handle
            .tx
            .send(ShardRequest::Query(
                query(1, vec![0, 1], 999),
                reply_tx.clone(),
            ))
            .unwrap();
        match reply_rx.recv().unwrap() {
            ShardReply::QueryDone { local, .. } => assert!(local, "replica answers locally"),
            other => panic!("unexpected {other:?}"),
        }
        let stats = handle.shutdown();
        assert_eq!(stats.ledger.local_answers, 1);
        assert_eq!(stats.residents, 2, "replica preloads the whole sub-catalog");
    }
}
