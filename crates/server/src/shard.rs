//! Shard cores: one lock-protected [`delta_core::Engine`] per shard,
//! executed *inline* by the connection threads.
//!
//! A shard core is the network driver of the same engine
//! `delta_core::sim` and `delta_core::deploy` run: updates invalidate
//! before the policy sees them, queries run under the satisfaction
//! contract. Because a shard only ever sees its own sub-catalog and
//! sub-trace, its ledger is *byte-identical* to an in-process simulation
//! of that sub-trace — the property the server integration and tri-modal
//! tests pin.
//!
//! Earlier revisions ran one worker thread per shard and ferried every
//! event through a crossbeam channel pair. On the latency-bound lockstep
//! path that cost two thread handoffs per event (four context switches
//! on a loaded box) for microseconds of engine work. The cores are now
//! plain `Mutex<Engine>` values the connection threads lock directly:
//! per-shard serialization (the correctness requirement) is the mutex,
//! cross-connection parallelism is connections locking different shards,
//! and the per-event channel wakeups are gone. A [`ShardOp`] sub-batch
//! still executes under a single lock acquisition, so a batched replay
//! remains one serialization unit per shard exactly as the channel
//! design's coalesced sends were.
//!
//! Two behaviors are shard-specific:
//!
//! * The engine runs with a **clamped clock** (arrival order wins), so
//!   concurrent connections cannot violate the repository's per-object
//!   monotonicity. Under lockstep replay the clamp is a no-op.
//! * A policy that violates the satisfaction contract produces a typed
//!   error the connection layer turns into an error frame — the shard
//!   stays up and keeps serving.
//!
//! When the server was started with a snapshot directory, the core
//! writes its engine snapshot on [`ShardCore::shutdown`], and
//! [`ShardCore::new`] accepts a restored snapshot to resume warm.

use crate::config::PolicyKind;
use crate::protocol::{BatchItem, ShardStats};
use crate::replication::ReplState;
use delta_core::engine::write_snapshot;
use delta_core::PolicyInstruments;
use delta_core::{CachingPolicy, Engine, EngineOutcome, EngineSnapshot};
use delta_storage::ObjectCatalog;
use delta_telemetry::{Counter, Gauge, Histogram, Telemetry};
use delta_workload::{Event, QueryEvent, UpdateEvent};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The engine type a shard core guards: `'static` policy, `Send` so the
/// core can be shared across connection threads.
type ShardEngine = Engine<'static, dyn CachingPolicy + Send>;

/// One operation inside a coalesced sub-batch, tagged with the index of
/// the client-batch item it came from so the connection thread can
/// reassemble per-item replies after the fan-out.
#[derive(Clone, Debug)]
pub enum ShardOp {
    /// Serve a sub-query (local object ids, apportioned bytes).
    Query {
        /// Index of the originating batch item.
        item: u32,
        /// The shard-local sub-query.
        event: QueryEvent,
    },
    /// Apply an update (local object id).
    Update {
        /// Index of the originating batch item.
        item: u32,
        /// The shard-local update.
        event: UpdateEvent,
    },
}

/// Outcome of one [`ShardOp`], in sub-batch order.
#[derive(Clone, Debug)]
pub enum OpOutcome {
    /// The sub-query was served.
    Query {
        /// Index of the originating batch item.
        item: u32,
        /// Whether it was answered from the shard cache (vs shipped).
        local: bool,
    },
    /// The sub-query violated the satisfaction contract.
    QueryFailed {
        /// Index of the originating batch item.
        item: u32,
        /// The rendered engine error.
        error: String,
    },
    /// The update was applied.
    Update {
        /// Index of the originating batch item.
        item: u32,
        /// The object's new version.
        version: u64,
    },
}

/// The class an operation is timed under — which request kind put it
/// on the shard. Sub-queries compiled from SQL time as [`OpClass::Sql`];
/// coalesced sub-batches (client `Batch` and router `NodeOps`) time as
/// [`OpClass::Batch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// A wire `Query` sub-query.
    Query,
    /// A wire `Update`.
    Update,
    /// A server-side compiled SQL query.
    Sql,
    /// An op inside a coalesced sub-batch.
    Batch,
}

/// Where a shard core records how long ops wait for the engine lock and
/// how long `Engine::apply` itself runs, split per [`OpClass`]. Each
/// core gets *private* histogram instances
/// ([`Telemetry::histogram_handle`]), so hot shards never contend on
/// each other's buckets; the node snapshot merges them back together
/// under the shared names. Strictly observational: timing never feeds
/// back into engine decisions, so ledgers are byte-identical with or
/// without it.
pub struct ShardTelemetry {
    classes: [OpTimers; 4],
    /// Handles for the policy's internal solver (`um.*` metrics),
    /// attached to the policy at core construction. Histogram/counter
    /// instances are per-core private like the timers; the graph-size
    /// gauges are node-shared (single-instance semantics).
    um: PolicyInstruments,
}

struct OpTimers {
    lock_wait: Arc<Histogram>,
    apply: Arc<Histogram>,
}

impl ShardTelemetry {
    /// Registers one core's private handles in a node registry.
    pub fn register(t: &Telemetry) -> ShardTelemetry {
        let timers = |class: &str| OpTimers {
            lock_wait: t.histogram_handle(&format!("shard.lock_wait_ns.{class}")),
            apply: t.histogram_handle(&format!("shard.apply_ns.{class}")),
        };
        ShardTelemetry {
            classes: [
                timers("query"),
                timers("update"),
                timers("sql"),
                timers("batch"),
            ],
            um: PolicyInstruments {
                solve_ns: t.histogram_handle("um.solve_ns"),
                graph_nodes: t.gauge("um.graph_nodes"),
                graph_edges: t.gauge("um.graph_edges"),
                solves: t.counter_handle("um.solves"),
            },
        }
    }

    /// Free-standing handles attached to no registry — for tests and
    /// tools that construct cores directly.
    pub fn detached() -> ShardTelemetry {
        let timers = || OpTimers {
            lock_wait: Arc::new(Histogram::new()),
            apply: Arc::new(Histogram::new()),
        };
        ShardTelemetry {
            classes: [timers(), timers(), timers(), timers()],
            um: PolicyInstruments {
                solve_ns: Arc::new(Histogram::new()),
                graph_nodes: Arc::new(Gauge::default()),
                graph_edges: Arc::new(Gauge::default()),
                solves: Arc::new(Counter::default()),
            },
        }
    }

    fn timers(&self, class: OpClass) -> &OpTimers {
        &self.classes[match class {
            OpClass::Query => 0,
            OpClass::Update => 1,
            OpClass::Sql => 2,
            OpClass::Batch => 3,
        }]
    }
}

/// Everything a shard core is born with.
pub struct ShardSpec {
    /// Shard index.
    pub shard: u16,
    /// The shard's sub-catalog.
    pub catalog: ObjectCatalog,
    /// Configured cache budget for this shard.
    pub cache_bytes: u64,
    /// Policy kind every shard runs.
    pub policy: PolicyKind,
    /// Seed for this shard's policy.
    pub seed: u64,
    /// A validated snapshot to resume from, if warm-restarting.
    pub restore: Option<EngineSnapshot>,
    /// Where to persist the engine snapshot on graceful shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Where this core records lock-wait and apply latencies.
    pub telemetry: ShardTelemetry,
}

/// One shard: a lock-protected engine plus its identity and snapshot
/// destination. Connection threads call the methods directly.
pub struct ShardCore {
    shard: u16,
    policy: PolicyKind,
    snapshot_path: Option<PathBuf>,
    engine: Mutex<ShardEngine>,
    telemetry: ShardTelemetry,
    /// When this core is a replicated primary: the applied-event log
    /// it ships to backups. Appends happen inside the engine-lock
    /// window that applied the event, so log order is apply order.
    repl: Option<Arc<ReplState>>,
    /// Promotion fence: events with `seq <= fence` were applied by the
    /// previous primary before failover and must not re-execute. Zero
    /// (sequence numbers start at 1) everywhere except on a promoted
    /// core, and immutable once the core serves — set before the slot
    /// is published, read without synchronization concerns.
    fence: u64,
}

impl ShardCore {
    /// Builds (or warm-restores) the shard engine from its spec.
    ///
    /// # Panics
    /// Panics if a restore snapshot fails validation — the server
    /// validates snapshots before constructing cores, so a failure here
    /// means the world changed underneath us.
    pub fn new(spec: ShardSpec) -> ShardCore {
        let ShardSpec {
            shard,
            catalog,
            cache_bytes,
            policy: policy_kind,
            seed,
            restore,
            snapshot_path,
            telemetry,
        } = spec;
        let mut policy = policy_kind.build(cache_bytes, seed);
        policy.attach_instruments(telemetry.um.clone());
        let engine = match restore {
            Some(snap) => Engine::restore(policy, &catalog, &snap)
                .unwrap_or_else(|e| panic!("shard {shard}: snapshot restore failed: {e}"))
                .clamp_clock(true),
            None => {
                let mut e = Engine::new(policy, &catalog, cache_bytes).clamp_clock(true);
                e.init(None);
                e
            }
        };
        ShardCore {
            shard,
            policy: policy_kind,
            snapshot_path,
            engine: Mutex::new(engine),
            telemetry,
            repl: None,
            fence: 0,
        }
    }

    /// Shard index.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Attaches the replication log this primary ships to backups.
    /// Called before the core is published to connection threads.
    pub fn set_repl(&mut self, repl: Arc<ReplState>) {
        self.repl = Some(repl);
    }

    /// The replication log, when this core is a replicated primary.
    pub fn repl(&self) -> Option<&Arc<ReplState>> {
        self.repl.as_ref()
    }

    /// The promotion fence: the highest sequence number the previous
    /// primary applied before this core took over (zero when the core
    /// was never promoted).
    pub fn fence(&self) -> u64 {
        self.fence
    }

    /// Applied events (the engine's event count) — the replication
    /// offset this core stands at.
    pub fn events(&self) -> u64 {
        self.lock().events()
    }

    /// The bootstrap a backup of this shard needs, captured atomically
    /// against the apply path: the current applied-event offset plus
    /// the engine snapshot — or `None` for a zero-event core, telling
    /// the backup to build a fresh twin (running policy init) so its
    /// replay lineage is byte-identical rather than snapshot-shaped.
    pub fn bootstrap_state(&self) -> (u64, Option<EngineSnapshot>) {
        let engine = self.lock();
        let events = engine.events();
        if events == 0 {
            (0, None)
        } else {
            (events, Some(engine.snapshot()))
        }
    }

    /// Turns a caught-up backup core into a serving primary: fences
    /// every sequence number the old primary already applied (so a
    /// client retrying through the failover gets the typed
    /// `ALREADY_APPLIED` instead of a double-apply), adopts this
    /// node's snapshot destination, and starts its own replication
    /// log. Returns the rebuilt core and the offset it serves from.
    pub fn into_primary(
        self,
        snapshot_path: Option<PathBuf>,
        repl: Option<Arc<ReplState>>,
    ) -> (ShardCore, u64) {
        let (fence, offset) = {
            let engine = self.lock();
            (engine.clock(), engine.events())
        };
        (
            ShardCore {
                snapshot_path,
                repl,
                fence,
                ..self
            },
            offset,
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardEngine> {
        // A poisoned mutex means a connection thread panicked mid-apply;
        // the engine state can no longer be trusted — fail loudly.
        self.engine.lock().expect("shard engine poisoned")
    }

    /// Applies one update, returning the object's new version.
    pub fn apply_update(&self, u: UpdateEvent) -> u64 {
        let t0 = Instant::now();
        let mut engine = self.lock();
        let waited = t0.elapsed();
        let t1 = Instant::now();
        let version = apply_update(&mut engine, u);
        if let Some(repl) = &self.repl {
            repl.append(BatchItem::Update(u));
        }
        let applied = t1.elapsed();
        drop(engine);
        let timers = self.telemetry.timers(OpClass::Update);
        timers.lock_wait.record_duration(waited);
        timers.apply.record_duration(applied);
        version
    }

    /// Serves one sub-query: `Ok(local)` on success, the rendered engine
    /// error when the policy violated the satisfaction contract (the
    /// shard stays up either way).
    pub fn serve_query(&self, q: QueryEvent) -> Result<bool, String> {
        self.serve_query_as(q, OpClass::Query)
    }

    /// [`ShardCore::serve_query`] timed under an explicit class — how
    /// compiled SQL attributes its shard time to `sql` rather than
    /// `query`.
    pub fn serve_query_as(&self, q: QueryEvent, class: OpClass) -> Result<bool, String> {
        let t0 = Instant::now();
        let mut engine = self.lock();
        let waited = t0.elapsed();
        let t1 = Instant::now();
        // Replicate the query before handing its ownership to the
        // engine; violated queries apply no event, so their clone is
        // dropped, not logged.
        let logged = self.repl.as_ref().map(|_| BatchItem::Query(q.clone()));
        let result = serve_query(self.shard, &mut engine, q);
        if let (Some(repl), Some(item), Ok(_)) = (&self.repl, logged, &result) {
            repl.append(item);
        }
        let applied = t1.elapsed();
        drop(engine);
        let timers = self.telemetry.timers(class);
        timers.lock_wait.record_duration(waited);
        timers.apply.record_duration(applied);
        result
    }

    /// Executes a coalesced sub-batch in order under ONE lock
    /// acquisition — the whole sub-batch is a single serialization unit,
    /// exactly like the former worker's coalesced channel send. The
    /// lock wait is recorded once (the batch waits as a unit); each
    /// op's `Engine::apply` time is recorded individually, all under
    /// [`OpClass::Batch`].
    pub fn run_batch(&self, ops: Vec<ShardOp>) -> Vec<OpOutcome> {
        let timers = self.telemetry.timers(OpClass::Batch);
        let t0 = Instant::now();
        let mut engine = self.lock();
        timers.lock_wait.record_duration(t0.elapsed());
        ops.into_iter()
            .map(|op| {
                let t1 = Instant::now();
                let outcome = match op {
                    ShardOp::Query { item, event } => {
                        let logged = self.repl.as_ref().map(|_| BatchItem::Query(event.clone()));
                        match serve_query(self.shard, &mut engine, event) {
                            Ok(local) => {
                                if let (Some(repl), Some(logged)) = (&self.repl, logged) {
                                    repl.append(logged);
                                }
                                OpOutcome::Query { item, local }
                            }
                            Err(error) => OpOutcome::QueryFailed { item, error },
                        }
                    }
                    ShardOp::Update { item, event } => {
                        let version = apply_update(&mut engine, event);
                        if let Some(repl) = &self.repl {
                            repl.append(BatchItem::Update(event));
                        }
                        OpOutcome::Update { item, version }
                    }
                };
                timers.apply.record_duration(t1.elapsed());
                outcome
            })
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ShardStats {
        stats(self.shard, self.policy, &self.lock())
    }

    /// Captures the engine snapshot without disturbing the core — the
    /// first half of a migration, taken while the core is still hosted
    /// so the caller can refuse an unmigratable snapshot (e.g. one too
    /// large for a wire frame) with the shard intact.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.lock().snapshot()
    }

    /// Discards the core after its state left this node: removes any
    /// on-disk snapshot file — the shard no longer lives here, so a cold
    /// restart of this node must not resurrect it.
    pub fn discard(self) {
        if let Some(path) = &self.snapshot_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Consumes the core for migration to another node: returns the
    /// engine snapshot and removes any on-disk snapshot file. Prefer
    /// [`ShardCore::snapshot`] + [`ShardCore::discard`] when the caller
    /// must validate the snapshot before committing to the detach.
    pub fn detach(self) -> EngineSnapshot {
        let snap = self.snapshot();
        self.discard();
        snap
    }

    /// Persists the engine snapshot (when configured) and reports final
    /// statistics. Called by the server after every connection drained.
    pub fn shutdown(&self) -> ShardStats {
        let engine = self.lock();
        if let Some(path) = &self.snapshot_path {
            if let Err(e) = write_snapshot(path, &engine.snapshot()) {
                eprintln!("delta-shard-{}: snapshot write failed: {e}", self.shard);
            }
        }
        stats(self.shard, self.policy, &engine)
    }
}

fn serve_query(shard: u16, engine: &mut ShardEngine, q: QueryEvent) -> Result<bool, String> {
    match engine.apply(&Event::Query(q)) {
        Ok(EngineOutcome::Query { local, .. }) => Ok(local),
        Ok(other) => panic!("query produced {other:?}"),
        Err(e) => Err(format!("shard {shard}: {e}")),
    }
}

fn apply_update(engine: &mut ShardEngine, u: UpdateEvent) -> u64 {
    match engine
        .apply(&Event::Update(u))
        .expect("updates cannot violate the contract")
    {
        EngineOutcome::Update { version } => version,
        other => panic!("update produced {other:?}"),
    }
}

fn stats(shard: u16, kind: PolicyKind, engine: &ShardEngine) -> ShardStats {
    ShardStats {
        shard,
        policy: kind.policy_name().to_string(),
        metrics: engine.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::ObjectId;
    use delta_workload::QueryKind;

    fn query(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Selection,
        }
    }

    fn core(shard: u16, catalog: ObjectCatalog, cache: u64, policy: PolicyKind) -> ShardCore {
        ShardCore::new(ShardSpec {
            shard,
            catalog,
            cache_bytes: cache,
            policy,
            seed: if policy == PolicyKind::VCover { 9 } else { 1 },
            restore: None,
            snapshot_path: None,
            telemetry: ShardTelemetry::detached(),
        })
    }

    #[test]
    fn core_processes_events_and_reports() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let core = core(3, catalog, 1_000, PolicyKind::NoCache);

        assert_eq!(
            core.apply_update(UpdateEvent {
                seq: 1,
                object: ObjectId(0),
                bytes: 10,
            }),
            1
        );
        assert_eq!(
            core.serve_query(query(2, vec![0], 55)),
            Ok(false),
            "NoCache always ships"
        );

        let final_stats = core.shutdown();
        assert_eq!(final_stats.metrics.events(), 2);
        assert_eq!(final_stats.metrics.ledger.shipped_queries, 1);
        assert_eq!(final_stats.metrics.ledger.breakdown.query_ship.bytes(), 55);
        assert_eq!(final_stats.policy, "NoCache");
    }

    #[test]
    fn batched_ops_match_singles_byte_for_byte() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200, 300]);
        let ops = vec![
            ShardOp::Update {
                item: 0,
                event: UpdateEvent {
                    seq: 1,
                    object: ObjectId(0),
                    bytes: 10,
                },
            },
            ShardOp::Query {
                item: 1,
                event: query(2, vec![0, 2], 55),
            },
            ShardOp::Update {
                item: 2,
                event: UpdateEvent {
                    seq: 3,
                    object: ObjectId(1),
                    bytes: 20,
                },
            },
            ShardOp::Query {
                item: 3,
                event: query(4, vec![1], 7),
            },
        ];

        // One call per op.
        let singles = core(0, catalog.clone(), 500, PolicyKind::VCover);
        for op in ops.clone() {
            match op {
                ShardOp::Query { event, .. } => {
                    let _ = singles.serve_query(event);
                }
                ShardOp::Update { event, .. } => {
                    singles.apply_update(event);
                }
            }
        }
        let want = singles.shutdown();

        // The same ops coalesced under one lock acquisition.
        let batched = core(0, catalog, 500, PolicyKind::VCover);
        let outcomes = batched.run_batch(ops);
        assert_eq!(outcomes.len(), 4);
        assert!(matches!(
            outcomes[0],
            OpOutcome::Update {
                item: 0,
                version: 1
            }
        ));
        assert!(matches!(outcomes[3], OpOutcome::Query { item: 3, .. }));
        let got = batched.shutdown();
        assert_eq!(got.metrics, want.metrics);
    }

    #[test]
    fn replica_shard_mirrors_repository() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let core = core(0, catalog, 1, PolicyKind::Replica);
        assert_eq!(
            core.serve_query(query(1, vec![0, 1], 999)),
            Ok(true),
            "replica answers locally"
        );
        let stats = core.shutdown();
        assert_eq!(stats.metrics.ledger.local_answers, 1);
        assert_eq!(
            stats.metrics.residents, 2,
            "replica preloads the whole sub-catalog"
        );
    }

    #[test]
    fn broken_policy_fails_typed_and_core_survives() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let core = core(0, catalog, 1_000, PolicyKind::Broken);
        let err = core.serve_query(query(1, vec![0], 5)).unwrap_err();
        assert!(err.contains("Broken"), "{err}");
        // The core is still alive and serves updates and batches.
        assert_eq!(
            core.apply_update(UpdateEvent {
                seq: 2,
                object: ObjectId(1),
                bytes: 4,
            }),
            1
        );
        let outcomes = core.run_batch(vec![
            ShardOp::Query {
                item: 0,
                event: query(3, vec![0], 5),
            },
            ShardOp::Update {
                item: 1,
                event: UpdateEvent {
                    seq: 4,
                    object: ObjectId(1),
                    bytes: 1,
                },
            },
        ]);
        assert!(matches!(
            outcomes[0],
            OpOutcome::QueryFailed { item: 0, .. }
        ));
        assert!(matches!(
            outcomes[1],
            OpOutcome::Update {
                item: 1,
                version: 2
            }
        ));
        let stats = core.shutdown();
        assert_eq!(stats.metrics.updates, 2);
        assert_eq!(stats.metrics.queries, 0, "violated queries are not counted");
    }

    #[test]
    fn detach_carries_full_engine_state_and_clears_the_snapshot_file() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let path = std::env::temp_dir().join(format!(
            "delta-shard-detach-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, b"stale\n").unwrap();
        let first = ShardCore::new(ShardSpec {
            shard: 3,
            catalog: catalog.clone(),
            cache_bytes: 1_000,
            policy: PolicyKind::VCover,
            seed: 7,
            restore: None,
            snapshot_path: Some(path.clone()),
            telemetry: ShardTelemetry::detached(),
        });
        first.apply_update(UpdateEvent {
            seq: 1,
            object: ObjectId(0),
            bytes: 10,
        });
        first.serve_query(query(2, vec![0], 55)).unwrap();
        let want = first.stats();
        let snap = first.detach();
        assert!(
            !path.exists(),
            "detach must remove the snapshot file so a cold restart cannot resurrect the shard"
        );
        // The new owner restores an identical engine.
        let resumed = ShardCore::new(ShardSpec {
            shard: 3,
            catalog,
            cache_bytes: 1_000,
            policy: PolicyKind::VCover,
            seed: 7,
            restore: Some(snap),
            snapshot_path: None,
            telemetry: ShardTelemetry::detached(),
        });
        assert_eq!(resumed.stats().metrics, want.metrics);
    }

    #[test]
    fn shutdown_snapshot_roundtrips_through_new() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let path = std::env::temp_dir().join(format!(
            "delta-shard-snap-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let first = ShardCore::new(ShardSpec {
            shard: 0,
            catalog: catalog.clone(),
            cache_bytes: 1_000,
            policy: PolicyKind::VCover,
            seed: 7,
            restore: None,
            snapshot_path: Some(path.clone()),
            telemetry: ShardTelemetry::detached(),
        });
        first.apply_update(UpdateEvent {
            seq: 1,
            object: ObjectId(0),
            bytes: 10,
        });
        first.serve_query(query(2, vec![0], 55)).unwrap();
        let first = first.shutdown();

        // Resume from the written snapshot: metrics carry over exactly.
        let snap = delta_core::engine::read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let resumed = ShardCore::new(ShardSpec {
            shard: 0,
            catalog,
            cache_bytes: 1_000,
            policy: PolicyKind::VCover,
            seed: 7,
            restore: Some(snap),
            snapshot_path: None,
            telemetry: ShardTelemetry::detached(),
        });
        let stats = resumed.shutdown();
        assert_eq!(stats.metrics, first.metrics);
    }
}
