//! The delta-server wire protocol.
//!
//! Frames are length-prefixed binary: a 4-byte big-endian payload length,
//! then a 1-byte opcode, then opcode-specific fields (integers big-endian,
//! strings length-prefixed UTF-8). The event-shaped request kinds —
//! `Query`, `Update`, `Stats` and `Shutdown` — mirror the event model of
//! the in-process simulator so a trace replay over TCP exercises exactly
//! the decisions `sim::simulate` makes. On top of those, three kinds make
//! the wire a real query interface:
//!
//! * [`Request::Sql`] carries raw SQL text; the server compiles it with a
//!   per-connection [`delta_query::QueryCompiler`] into the access set
//!   `B(q)` and serves it like any query. Compile failures come back as
//!   the typed [`Response::SqlRejected`], carrying the
//!   [`delta_query::QueryError`] stage, span and message.
//! * [`Request::Batch`] packs many query/update events into one frame;
//!   the server coalesces each shard's sub-events into a single channel
//!   send, amortizing the fan-out/join cost, and replies with one
//!   [`Response::BatchOk`] holding a per-item reply in item order.
//! * [`Request::Tagged`] wraps any other request with a caller-chosen
//!   correlation id the server echoes on the [`Response::Tagged`] reply —
//!   what lets a pipelined client keep a bounded window of frames in
//!   flight and match replies even if a future server reorders them.
//!
//! The protocol is synchronous per connection: every request frame gets
//! exactly one response frame, in order. Concurrency comes from running
//! many connections (the server fans each request out to its shards) and
//! from pipelining tagged frames within one.

use delta_core::{CostLedger, EngineMetrics};
use delta_storage::ObjectId;
use delta_telemetry::{HistogramSnapshot, TelemetrySnapshot};
use delta_workload::{QueryEvent, QueryKind, UpdateEvent};
use std::io::{self, Read, Write};

/// Protocol version; bumped on incompatible frame changes.
/// Version 2 added `Sql`, `Batch` and `Tagged` frames (pure additions:
/// version-1 frames are unchanged on the wire). Version 3 reshaped the
/// `StatsOk` per-shard payload around the engine's uniform
/// [`EngineMetrics`] (adds query/update/tolerance-served counters).
/// Version 4 adds the cluster vocabulary (pure additions again): the
/// `Hello` node handshake carrying a **routing epoch**, pre-split
/// `NodeOps` frames the router sends to shard-hosting nodes, the
/// `DetachShard`/`AttachShard`/`SetEpoch` resharding admin verbs, the
/// router-level `Reshard` request, and the typed `WrongEpoch` redirect a
/// stale-mapped client receives instead of a wrong answer. Version 5 adds
/// the observability verb (pure additions once more): `Telemetry` asks a
/// peer for its [`delta_telemetry::TelemetrySnapshot`] — wall-clock
/// latency histograms and wire counters, strictly outside the
/// deterministic engine state — and `TelemetryOk` carries it back;
/// routers answer with the cluster-wide merge. Version 6 adds the
/// replication vocabulary (pure additions): `Replicate` streams a
/// suffix of a primary shard's applied event log to a backup (acked
/// with the backup's new offset in `ReplicaOk`), `ReplicaBootstrap`
/// (re)seeds a backup — empty state means "build a fresh twin and
/// replay from offset zero", otherwise the blob is the same snapshot
/// JSONL resharding ships — `ReplicaStatus`/`ReplicaStatusOk` report a
/// node's backup shards and offsets, and `Promote`/`PromoteOk` turn a
/// backup into a serving primary, fencing already-applied sequence
/// numbers behind the typed `ALREADY_APPLIED` batch error so client
/// retries across a failover are exactly-once per event.
pub const PROTOCOL_VERSION: u8 = 6;

/// Upper bound on a frame payload, to fail fast on corrupt length words.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

const OP_QUERY: u8 = 0x01;
const OP_UPDATE: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_SQL: u8 = 0x05;
const OP_BATCH: u8 = 0x06;
const OP_HELLO: u8 = 0x07;
const OP_NODE_OPS: u8 = 0x08;
const OP_DETACH_SHARD: u8 = 0x09;
const OP_ATTACH_SHARD: u8 = 0x0A;
const OP_SET_EPOCH: u8 = 0x0B;
const OP_RESHARD: u8 = 0x0C;
const OP_TELEMETRY: u8 = 0x0D;
const OP_REPLICATE: u8 = 0x0E;
const OP_REPLICA_BOOTSTRAP: u8 = 0x0F;
const OP_TAGGED: u8 = 0x10;
const OP_REPLICA_STATUS: u8 = 0x11;
const OP_PROMOTE: u8 = 0x12;
const OP_QUERY_OK: u8 = 0x81;
const OP_UPDATE_OK: u8 = 0x82;
const OP_STATS_OK: u8 = 0x83;
const OP_SHUTDOWN_OK: u8 = 0x84;
const OP_SQL_OK: u8 = 0x85;
const OP_SQL_REJECTED: u8 = 0x86;
const OP_BATCH_OK: u8 = 0x87;
const OP_HELLO_OK: u8 = 0x88;
const OP_SHARD_STATE: u8 = 0x89;
const OP_ATTACH_OK: u8 = 0x8A;
const OP_EPOCH_OK: u8 = 0x8B;
const OP_RESHARD_OK: u8 = 0x8C;
const OP_TELEMETRY_OK: u8 = 0x8D;
const OP_REPLICA_OK: u8 = 0x8E;
const OP_REPLICA_STATUS_OK: u8 = 0x8F;
const OP_TAGGED_OK: u8 = 0x90;
const OP_PROMOTE_OK: u8 = 0x92;
const OP_WRONG_EPOCH: u8 = 0x91;
const OP_ERROR: u8 = 0xFF;

/// The smallest encodable [`BatchItem`] (an update: tag + seq + object +
/// bytes), used to validate attacker-controlled item counts before
/// allocating.
const MIN_BATCH_ITEM_BYTES: usize = 1 + 8 + 4 + 8;

/// A client-to-server request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Serve a query event (objects are global catalog ids).
    Query(QueryEvent),
    /// Apply an update event at the repository.
    Update(UpdateEvent),
    /// Compile a raw SQL query server-side and serve the result at
    /// sequence number `seq`.
    Sql {
        /// Sequence number the compiled event is stamped with (the
        /// shard clock clamps it to arrival order, like any event).
        seq: u64,
        /// The SQL text, in the frontend's SkyServer-style dialect.
        sql: String,
    },
    /// Serve many events in one frame. Items are processed in order
    /// *per shard*; items owned by different shards run concurrently.
    Batch(Vec<BatchItem>),
    /// Any other request wrapped with a correlation id the server echoes
    /// back. Tagged frames must not nest.
    Tagged {
        /// Caller-chosen correlation id.
        corr: u64,
        /// The wrapped request (never itself `Tagged`).
        inner: Box<Request>,
    },
    /// The v4 node handshake: declares the client's routing epoch (and
    /// protocol version) and asks the peer to describe itself. In
    /// cluster mode the declared epoch is what event requests on this
    /// connection are fenced against — a later [`Response::WrongEpoch`]
    /// means the declared epoch went stale.
    Hello {
        /// The sender's protocol version ([`PROTOCOL_VERSION`]).
        version: u8,
        /// The routing epoch the sender's shard→node map was built at.
        epoch: u64,
    },
    /// Pre-split shard-targeted events — what the router sends a
    /// shard-hosting node after running the cluster partitioner itself.
    /// Replies come back as a [`Response::BatchOk`] with one
    /// [`BatchReply`] per op, in op order (queries report
    /// `shards_touched == 1`).
    NodeOps(Vec<NodeOp>),
    /// Resharding step 1: stop hosting `shard` and return its engine
    /// state as a [`Response::ShardState`] blob.
    DetachShard {
        /// Global shard id to detach.
        shard: u16,
    },
    /// Resharding step 2: start hosting `shard`, restoring the engine
    /// from a [`Response::ShardState`] blob taken at the old owner.
    AttachShard {
        /// Global shard id to attach.
        shard: u16,
        /// The serialized engine snapshot (JSONL bytes).
        state: Vec<u8>,
    },
    /// Resharding step 3: adopt `epoch` as the current routing epoch,
    /// fencing every connection still declaring an older one.
    SetEpoch {
        /// The new routing epoch.
        epoch: u64,
    },
    /// Router-level admin: move `shard` to `to_node`, migrating its
    /// engine state and bumping the routing epoch. Nodes reject this —
    /// only the router coordinates resharding.
    Reshard {
        /// Global shard id to move.
        shard: u16,
        /// Index of the destination node.
        to_node: u16,
    },
    /// Primary→backup log shipping: apply `items` — the shard's
    /// applied event log starting at `from_offset` (the count of events
    /// the backup must already hold) — to the backup copy of `shard`.
    /// Items are shard-local (objects already mapped by the cluster
    /// partitioner), exactly as the primary applied them. A backup
    /// whose offset does not match answers the typed `NOT_REPLICA`
    /// error and the primary re-bootstraps it.
    Replicate {
        /// Global shard id being replicated.
        shard: u16,
        /// Applied-event offset of the first item (events the backup
        /// holds before this frame).
        from_offset: u64,
        /// The applied events, in apply order.
        items: Vec<BatchItem>,
    },
    /// (Re)seed a backup copy of `shard`. An empty `state` asks the
    /// peer to build a fresh shard twin (policy init and all) and
    /// replay the log from offset zero — the byte-identical lineage.
    /// A non-empty `state` is snapshot JSONL (the same blob resharding
    /// ships) for catch-up when the primary has truncated its log.
    ReplicaBootstrap {
        /// Global shard id to host a backup of.
        shard: u16,
        /// Serialized engine snapshot (JSONL bytes), or empty for a
        /// fresh twin.
        state: Vec<u8>,
    },
    /// Ask a node which backup shards it holds and how caught-up each
    /// is — the router's input to the promotion decision.
    ReplicaStatus,
    /// Promote this node's backup copy of `shard` into a serving
    /// primary. The promoted shard fences every sequence number it has
    /// already applied (`ALREADY_APPLIED`), so a client retrying
    /// through a failover can never double-apply an event.
    Promote {
        /// Global shard id to promote.
        shard: u16,
    },
    /// Fetch the per-shard and aggregate statistics snapshot.
    Stats,
    /// Fetch the peer's telemetry — latency histograms and wire
    /// counters. Purely observational (never fenced by the routing
    /// epoch, never touching engine state); a router answers with the
    /// merge of every node's snapshot plus its own.
    Telemetry,
    /// Stop the server after replying.
    Shutdown,
}

/// One pre-split, shard-targeted event inside a [`Request::NodeOps`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeOp {
    /// Global shard id the event was routed to (object ids inside the
    /// item are already shard-local).
    pub shard: u16,
    /// The shard-local event.
    pub item: BatchItem,
}

/// What kind of peer answered a [`Request::Hello`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// A single-process server hosting every shard (no epochs in play).
    Standalone,
    /// A cluster node hosting a subset of the global shards.
    ClusterNode,
    /// A router fronting cluster nodes.
    Router,
}

/// The peer self-description in a [`Response::HelloOk`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// What kind of peer this is.
    pub role: NodeRole,
    /// This node's index in the cluster (0 for standalone/router).
    pub node: u16,
    /// Number of nodes in the cluster (1 for standalone).
    pub nodes: u16,
    /// The current routing epoch (0 until the first reshard).
    pub epoch: u64,
    /// Total shard count of the cluster partitioner.
    pub cluster_shards: u16,
    /// The partitioner kind, as accepted by `PartitionerKind::parse`.
    pub partitioner: String,
    /// Catalog fingerprint: object count.
    pub catalog_objects: u64,
    /// Catalog fingerprint: total base bytes.
    pub catalog_bytes: u64,
    /// Global shard ids this peer hosts (routers report all shards).
    pub hosted: Vec<u16>,
}

/// One event inside a [`Request::Batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchItem {
    /// A query event (objects are global catalog ids).
    Query(QueryEvent),
    /// An update event.
    Update(UpdateEvent),
}

/// The per-item outcome inside a [`Response::BatchOk`], in item order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchReply {
    /// The query was served (counts over its shard sub-queries).
    Query {
        /// Shards the query touched.
        shards_touched: u16,
        /// Sub-queries answered from shard caches.
        local_answers: u16,
        /// Sub-queries shipped to the repository.
        shipped: u16,
    },
    /// The update was applied.
    Update {
        /// Shard owning the object.
        shard: u16,
        /// The object's new version at that shard.
        version: u64,
    },
    /// This item failed; the rest of the batch is unaffected.
    Error {
        /// Machine-readable error code (see [`error_code`]).
        code: u16,
        /// Human-readable explanation.
        message: String,
    },
}

/// Which frontend stage rejected the SQL of a [`Response::SqlRejected`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SqlStage {
    /// Lexing/parsing failed; the span points into the SQL text.
    Parse,
    /// Semantic analysis against the schema failed.
    Analyze,
}

/// Per-shard statistics in a [`Response::StatsOk`] snapshot: the
/// engine's uniform metrics, tagged with the shard's identity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u16,
    /// Policy driving this shard.
    pub policy: String,
    /// The shard engine's operational counters (ledger, hit rate,
    /// tolerance-served queries, cache occupancy).
    pub metrics: EngineMetrics,
}

/// The full statistics snapshot returned by [`Request::Stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl StatsSnapshot {
    /// Folds the per-shard metrics into one global account (capacities
    /// and occupancy sum; counters add).
    pub fn total_metrics(&self) -> EngineMetrics {
        let mut total = EngineMetrics::default();
        for s in &self.shards {
            total.absorb(&s.metrics);
        }
        total
    }

    /// Sums the per-shard ledgers into one global account.
    pub fn total_ledger(&self) -> CostLedger {
        let mut total = CostLedger::default();
        for s in &self.shards {
            total.absorb(&s.metrics.ledger);
        }
        total
    }

    /// Total events processed across shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.events()).sum()
    }

    /// Renders the per-shard statistics as the table both binaries print.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>9} {:>14} {:>14} {:>14} {:>8} {:>8} {:>8}",
            "shard",
            "events",
            "resident",
            "query-ship",
            "update-ship",
            "load",
            "hit%",
            "tol-srv",
            "evict"
        );
        for s in &self.shards {
            let m = &s.metrics;
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>9} {:>14} {:>14} {:>14} {:>7.1}% {:>8} {:>8}",
                s.shard,
                m.events(),
                m.residents,
                m.ledger.breakdown.query_ship.to_string(),
                m.ledger.breakdown.update_ship.to_string(),
                m.ledger.breakdown.load.to_string(),
                m.hit_rate() * 100.0,
                m.tolerance_served,
                m.ledger.evictions,
            );
        }
        out
    }

    /// Renders the snapshot as a [`delta_core::SimReport`]-shaped summary,
    /// so server runs slot into the same reporting helpers the simulator
    /// uses (the series holds one closing point).
    pub fn to_sim_report(&self) -> delta_core::SimReport {
        let metrics = self.total_metrics();
        let total = metrics.ledger.total().bytes();
        delta_core::SimReport {
            policy: self
                .shards
                .first()
                .map(|s| format!("{}x{}", s.policy, self.shards.len()))
                .unwrap_or_else(|| "empty".to_string()),
            cache_bytes: metrics.cache_capacity,
            ledger: metrics.ledger.clone(),
            series: vec![delta_core::SeriesPoint {
                seq: metrics.events(),
                cumulative_bytes: total,
            }],
            events: metrics.events(),
            latency: None,
            metrics,
        }
    }
}

/// A server-to-client response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The query was served. Counts are over the shard sub-queries the
    /// request fanned out into.
    QueryOk {
        /// Shards the query touched.
        shards_touched: u16,
        /// Sub-queries answered from shard caches.
        local_answers: u16,
        /// Sub-queries shipped to the repository.
        shipped: u16,
    },
    /// The update was applied.
    UpdateOk {
        /// Shard owning the object.
        shard: u16,
        /// The object's new version at that shard.
        version: u64,
    },
    /// The SQL compiled and the resulting query was served.
    SqlOk {
        /// Shards the compiled query touched.
        shards_touched: u16,
        /// Sub-queries answered from shard caches.
        local_answers: u16,
        /// Sub-queries shipped to the repository.
        shipped: u16,
        /// Size of the access set `B(q)` the compiler produced.
        objects: u32,
        /// The estimated result size ν(q) in bytes.
        result_bytes: u64,
        /// The currency requirement `t(q)` parsed from the text.
        tolerance: u64,
        /// The workload classification of the query.
        kind: QueryKind,
    },
    /// The SQL did not compile; the query was not served. Carries the
    /// [`delta_query::QueryError`] diagnostics: failing stage, source
    /// span (zero-width for analyze errors) and rendered message.
    SqlRejected {
        /// The frontend stage that failed.
        stage: SqlStage,
        /// First byte of the offending SQL text.
        span_start: u32,
        /// One past the last offending byte.
        span_end: u32,
        /// The rendered diagnostic.
        message: String,
    },
    /// Per-item outcomes of a [`Request::Batch`], in item order.
    BatchOk(Vec<BatchReply>),
    /// Reply to a [`Request::Tagged`], echoing its correlation id.
    Tagged {
        /// The correlation id from the request.
        corr: u64,
        /// The wrapped response (never itself `Tagged`).
        inner: Box<Response>,
    },
    /// The peer's self-description, answering [`Request::Hello`].
    HelloOk(NodeInfo),
    /// The detached shard's serialized engine state, answering
    /// [`Request::DetachShard`].
    ShardState {
        /// The detached shard.
        shard: u16,
        /// The serialized engine snapshot (JSONL bytes).
        state: Vec<u8>,
    },
    /// The shard was attached and is being served, answering
    /// [`Request::AttachShard`].
    AttachOk {
        /// The attached shard.
        shard: u16,
    },
    /// The routing epoch was adopted, answering [`Request::SetEpoch`].
    EpochOk {
        /// The epoch now in force.
        epoch: u64,
    },
    /// The reshard completed, answering [`Request::Reshard`].
    ReshardOk {
        /// The routing epoch after the move.
        epoch: u64,
    },
    /// The connection's declared routing epoch is stale: the event was
    /// **not** executed. The client must re-handshake (refetching the
    /// shard→node map) and retry — the typed redirect that guarantees a
    /// stale map can never produce a wrong answer.
    WrongEpoch {
        /// The routing epoch currently in force at this node.
        epoch: u64,
    },
    /// The backup applied a [`Request::Replicate`] suffix (or absorbed
    /// a [`Request::ReplicaBootstrap`]); `offset` is the backup's new
    /// applied-event count — the primary's acknowledged replication
    /// offset for this shard.
    ReplicaOk {
        /// The replicated shard.
        shard: u16,
        /// Applied events the backup now holds.
        offset: u64,
    },
    /// The node's backup shards and their applied-event offsets,
    /// answering [`Request::ReplicaStatus`] (in shard order).
    ReplicaStatusOk(Vec<(u16, u64)>),
    /// The backup was promoted to a serving primary, answering
    /// [`Request::Promote`]; `offset` is the event count it serves
    /// from (every sequence number at or below its clock is fenced).
    PromoteOk {
        /// The promoted shard.
        shard: u16,
        /// Applied events at promotion.
        offset: u64,
    },
    /// The statistics snapshot.
    StatsOk(StatsSnapshot),
    /// The telemetry snapshot, answering [`Request::Telemetry`]: this
    /// peer's (or, from a router, the whole cluster's) counters, gauges
    /// and latency histograms.
    TelemetryOk(TelemetrySnapshot),
    /// The server is shutting down.
    ShutdownOk,
    /// The request could not be served.
    Error {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable explanation.
        message: String,
    },
}

/// Error codes carried by [`Response::Error`].
pub mod error_code {
    /// The request frame could not be decoded.
    pub const BAD_FRAME: u16 = 1;
    /// An object id is outside the catalog.
    pub const UNKNOWN_OBJECT: u16 = 2;
    /// The server is draining and no longer accepts events. Kept for
    /// wire compatibility: since shard execution moved inline (shards
    /// live as long as the connections), the server no longer emits it.
    pub const SHUTTING_DOWN: u16 = 3;
    /// The server was started without a SQL frontend (no workload
    /// preset to build the schema/sky/partition from).
    pub const SQL_UNAVAILABLE: u16 = 4;
    /// The shard policy violated the satisfaction contract on this
    /// query (the engine's typed `ContractViolated`). The shard stays
    /// up; the query was not served.
    pub const CONTRACT_VIOLATED: u16 = 5;
    /// The event touches a shard this node does not host (the sender's
    /// shard→node map is wrong or the request was mis-addressed).
    /// Nothing was executed.
    pub const WRONG_NODE: u16 = 6;
    /// A cluster-only request (`NodeOps`, `DetachShard`, `AttachShard`,
    /// `SetEpoch`, `Reshard`) reached a peer not running in that role.
    pub const NOT_CLUSTERED: u16 = 7;
    /// A reshard could not be completed; the reply message says which
    /// step failed and where the shard ended up.
    pub const RESHARD_FAILED: u16 = 8;
    /// The request frame's length word exceeds
    /// [`MAX_FRAME_BYTES`](super::MAX_FRAME_BYTES). Sent as the last
    /// frame before the server closes the connection (the remaining
    /// bytes of the oversized frame cannot be skipped safely).
    pub const FRAME_TOO_LARGE: u16 = 9;
    /// The router could not reach the node owning the addressed shards
    /// (connect or handshake failed, or the link died mid-request).
    /// Nothing was executed at that node; the client may retry.
    pub const NODE_UNAVAILABLE: u16 = 10;
    /// A replication verb (`Replicate`, `Promote`) addressed a shard
    /// this node holds no backup of, or a `Replicate` frame's
    /// `from_offset` does not match the backup's applied-event count.
    /// Nothing was applied; the primary re-bootstraps the backup.
    pub const NOT_REPLICA: u16 = 11;
    /// The event's sequence number is at or below the shard's
    /// promotion fence: a previous primary already applied it before
    /// failing over. The event was **not** re-executed; a retrying
    /// client should count the item as done.
    pub const ALREADY_APPLIED: u16 = 12;
}

// ---- primitive encoding helpers ----

/// Appends protocol primitives to a caller-owned buffer, so encoders can
/// reuse one allocation across frames (`encode_into`) instead of minting
/// a `Vec` per message.
struct Enc<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    fn new(buf: &'a mut Vec<u8>, op: u8) -> Self {
        buf.push(op);
        Enc { buf }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len =
            u16::try_from(bytes.len()).expect("protocol strings are short (policy names, errors)");
        self.u16(len);
        self.buf.extend_from_slice(bytes);
    }
    /// A u32-length-prefixed string, for texts that may outgrow u16
    /// (SQL queries).
    fn lstr(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = u32::try_from(bytes.len()).expect("protocol text exceeds u32::MAX bytes");
        self.u32(len);
        self.buf.extend_from_slice(bytes);
    }
    /// A u32-length-prefixed byte blob (serialized engine snapshots).
    fn blob(&mut self, b: &[u8]) {
        let len = u32::try_from(b.len()).expect("protocol blob exceeds u32::MAX bytes");
        self.u32(len);
        self.buf.extend_from_slice(b);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad("truncated frame"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in frame"))
    }
    fn lstr(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        // `take` bounds-checks against the payload before any allocation,
        // so a hostile length cannot force an oversized Vec.
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in frame"))
    }
    fn blob(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn finish(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn kind_to_u8(k: QueryKind) -> u8 {
    match k {
        QueryKind::Cone => 0,
        QueryKind::Range => 1,
        QueryKind::SelfJoin => 2,
        QueryKind::Aggregate => 3,
        QueryKind::Scan => 4,
        QueryKind::Selection => 5,
    }
}

fn kind_from_u8(v: u8) -> io::Result<QueryKind> {
    Ok(match v {
        0 => QueryKind::Cone,
        1 => QueryKind::Range,
        2 => QueryKind::SelfJoin,
        3 => QueryKind::Aggregate,
        4 => QueryKind::Scan,
        5 => QueryKind::Selection,
        _ => return Err(bad("unknown query kind")),
    })
}

/// Encodes a query event's fields (no opcode/tag byte — callers prefix
/// their own, so the layout is shared by `Query` frames and batch items).
fn enc_query_event(e: &mut Enc<'_>, q: &QueryEvent) {
    e.u64(q.seq);
    e.u64(q.result_bytes);
    e.u64(q.tolerance);
    e.u8(kind_to_u8(q.kind));
    e.u32(u32::try_from(q.objects.len()).expect("query touches more than u32::MAX objects"));
    for o in &q.objects {
        e.u32(o.0);
    }
}

fn dec_query_event(d: &mut Dec<'_>) -> io::Result<QueryEvent> {
    let seq = d.u64()?;
    let result_bytes = d.u64()?;
    let tolerance = d.u64()?;
    let kind = kind_from_u8(d.u8()?)?;
    let n = d.u32()? as usize;
    // Validate the count against the bytes actually present before
    // allocating — the count is attacker-controlled.
    if n > d.remaining() / 4 {
        return Err(bad("object count exceeds frame payload"));
    }
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        objects.push(ObjectId(d.u32()?));
    }
    Ok(QueryEvent {
        seq,
        objects,
        result_bytes,
        tolerance,
        kind,
    })
}

fn enc_update_event(e: &mut Enc<'_>, u: &UpdateEvent) {
    e.u64(u.seq);
    e.u32(u.object.0);
    e.u64(u.bytes);
}

fn dec_update_event(d: &mut Dec<'_>) -> io::Result<UpdateEvent> {
    let seq = d.u64()?;
    let object = ObjectId(d.u32()?);
    let bytes = d.u64()?;
    Ok(UpdateEvent { seq, object, bytes })
}

fn enc_ledger(e: &mut Enc<'_>, l: &CostLedger) {
    e.u64(l.breakdown.query_ship.bytes());
    e.u64(l.breakdown.update_ship.bytes());
    e.u64(l.breakdown.load.bytes());
    e.u64(l.shipped_queries);
    e.u64(l.local_answers);
    e.u64(l.update_ships);
    e.u64(l.loads);
    e.u64(l.evictions);
}

fn dec_ledger(d: &mut Dec<'_>) -> io::Result<CostLedger> {
    use delta_core::Cost;
    let mut l = CostLedger::default();
    l.breakdown.query_ship = Cost(d.u64()?);
    l.breakdown.update_ship = Cost(d.u64()?);
    l.breakdown.load = Cost(d.u64()?);
    l.shipped_queries = d.u64()?;
    l.local_answers = d.u64()?;
    l.update_ships = d.u64()?;
    l.loads = d.u64()?;
    l.evictions = d.u64()?;
    Ok(l)
}

fn enc_metrics(e: &mut Enc<'_>, m: &EngineMetrics) {
    enc_ledger(e, &m.ledger);
    e.u64(m.queries);
    e.u64(m.updates);
    e.u64(m.tolerance_served);
    e.u64(m.cache_capacity);
    e.u64(m.cache_used);
    e.u64(m.residents);
}

fn dec_metrics(d: &mut Dec<'_>) -> io::Result<EngineMetrics> {
    Ok(EngineMetrics {
        ledger: dec_ledger(d)?,
        queries: d.u64()?,
        updates: d.u64()?,
        tolerance_served: d.u64()?,
        cache_capacity: d.u64()?,
        cache_used: d.u64()?,
        residents: d.u64()?,
    })
}

/// The smallest encodable named counter/gauge entry: an empty-name
/// string prefix plus the value.
const MIN_METRIC_ENTRY_BYTES: usize = 2 + 8;
/// The smallest encodable histogram entry: empty name, count/sum/max,
/// and an empty bucket list.
const MIN_HISTOGRAM_BYTES: usize = 2 + 8 + 8 + 8 + 4;
/// One sparse histogram bucket on the wire: index + count.
const BUCKET_BYTES: usize = 4 + 8;

fn enc_telemetry(e: &mut Enc<'_>, t: &TelemetrySnapshot) {
    e.u32(u32::try_from(t.counters.len()).expect("counter list exceeds u32::MAX"));
    for (name, v) in &t.counters {
        e.str(name);
        e.u64(*v);
    }
    e.u32(u32::try_from(t.gauges.len()).expect("gauge list exceeds u32::MAX"));
    for (name, v) in &t.gauges {
        e.str(name);
        e.u64(*v);
    }
    e.u32(u32::try_from(t.histograms.len()).expect("histogram list exceeds u32::MAX"));
    for (name, h) in &t.histograms {
        e.str(name);
        e.u64(h.count);
        e.u64(h.sum);
        e.u64(h.max);
        e.u32(u32::try_from(h.buckets.len()).expect("bucket list exceeds u32::MAX"));
        for &(i, c) in &h.buckets {
            e.u32(i);
            e.u64(c);
        }
    }
}

fn dec_telemetry(d: &mut Dec<'_>) -> io::Result<TelemetrySnapshot> {
    // Every count below is validated against the bytes actually present
    // before allocating — counts are attacker-controlled.
    let n = d.u32()? as usize;
    if n > d.remaining() / MIN_METRIC_ENTRY_BYTES {
        return Err(bad("telemetry counter count exceeds frame payload"));
    }
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push((d.str()?, d.u64()?));
    }
    let n = d.u32()? as usize;
    if n > d.remaining() / MIN_METRIC_ENTRY_BYTES {
        return Err(bad("telemetry gauge count exceeds frame payload"));
    }
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        gauges.push((d.str()?, d.u64()?));
    }
    let n = d.u32()? as usize;
    if n > d.remaining() / MIN_HISTOGRAM_BYTES {
        return Err(bad("telemetry histogram count exceeds frame payload"));
    }
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let count = d.u64()?;
        let sum = d.u64()?;
        let max = d.u64()?;
        let nb = d.u32()? as usize;
        if nb > d.remaining() / BUCKET_BYTES {
            return Err(bad("histogram bucket count exceeds frame payload"));
        }
        let mut buckets = Vec::with_capacity(nb);
        let mut prev: Option<u32> = None;
        for _ in 0..nb {
            let i = d.u32()?;
            // Merging and quantile extraction assume the sparse form:
            // in-range indices, strictly increasing — reject anything
            // else before it can poison a cluster roll-up.
            if i as usize >= delta_telemetry::N_BUCKETS {
                return Err(bad("histogram bucket index out of range"));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(bad("histogram buckets not strictly increasing"));
            }
            prev = Some(i);
            buckets.push((i, d.u64()?));
        }
        histograms.push((
            name,
            HistogramSnapshot {
                count,
                sum,
                max,
                buckets,
            },
        ));
    }
    Ok(TelemetrySnapshot {
        counters,
        gauges,
        histograms,
    })
}

impl Request {
    /// Encodes the request payload (opcode included, length prefix not)
    /// into a fresh buffer. Prefer [`Request::encode_into`] on hot paths.
    ///
    /// # Panics
    /// Panics when asked to encode nested [`Request::Tagged`] frames —
    /// constructing one is a caller bug, not a wire condition.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the request payload (opcode included, length prefix not)
    /// to `buf` without allocating. The buffer-reuse contract: the
    /// encoder only ever *appends* — it never clears or reads `buf`, so
    /// callers may stack multiple frames into one buffer and reuse it
    /// across messages (clear between windows, not between frames).
    ///
    /// # Panics
    /// Panics when asked to encode nested [`Request::Tagged`] frames —
    /// constructing one is a caller bug, not a wire condition.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Query(q) => {
                let mut e = Enc::new(buf, OP_QUERY);
                enc_query_event(&mut e, q);
            }
            Request::Update(u) => {
                let mut e = Enc::new(buf, OP_UPDATE);
                enc_update_event(&mut e, u);
            }
            Request::Sql { seq, sql } => {
                let mut e = Enc::new(buf, OP_SQL);
                e.u64(*seq);
                e.lstr(sql);
            }
            Request::Batch(items) => {
                let mut e = Enc::new(buf, OP_BATCH);
                e.u32(u32::try_from(items.len()).expect("batch exceeds u32::MAX items"));
                for item in items {
                    match item {
                        BatchItem::Query(q) => {
                            e.u8(0);
                            enc_query_event(&mut e, q);
                        }
                        BatchItem::Update(u) => {
                            e.u8(1);
                            enc_update_event(&mut e, u);
                        }
                    }
                }
            }
            Request::Tagged { corr, inner } => {
                assert!(
                    !matches!(**inner, Request::Tagged { .. }),
                    "tagged requests must not nest"
                );
                let mut e = Enc::new(buf, OP_TAGGED);
                e.u64(*corr);
                inner.encode_into(e.buf);
            }
            Request::Hello { version, epoch } => {
                let mut e = Enc::new(buf, OP_HELLO);
                e.u8(*version);
                e.u64(*epoch);
            }
            Request::NodeOps(ops) => {
                let mut e = Enc::new(buf, OP_NODE_OPS);
                e.u32(u32::try_from(ops.len()).expect("node-ops exceeds u32::MAX items"));
                for op in ops {
                    e.u16(op.shard);
                    match &op.item {
                        BatchItem::Query(q) => {
                            e.u8(0);
                            enc_query_event(&mut e, q);
                        }
                        BatchItem::Update(u) => {
                            e.u8(1);
                            enc_update_event(&mut e, u);
                        }
                    }
                }
            }
            Request::DetachShard { shard } => {
                let mut e = Enc::new(buf, OP_DETACH_SHARD);
                e.u16(*shard);
            }
            Request::AttachShard { shard, state } => {
                let mut e = Enc::new(buf, OP_ATTACH_SHARD);
                e.u16(*shard);
                e.blob(state);
            }
            Request::SetEpoch { epoch } => {
                let mut e = Enc::new(buf, OP_SET_EPOCH);
                e.u64(*epoch);
            }
            Request::Reshard { shard, to_node } => {
                let mut e = Enc::new(buf, OP_RESHARD);
                e.u16(*shard);
                e.u16(*to_node);
            }
            Request::Replicate {
                shard,
                from_offset,
                items,
            } => {
                let mut e = Enc::new(buf, OP_REPLICATE);
                e.u16(*shard);
                e.u64(*from_offset);
                e.u32(u32::try_from(items.len()).expect("replicate exceeds u32::MAX items"));
                for item in items {
                    match item {
                        BatchItem::Query(q) => {
                            e.u8(0);
                            enc_query_event(&mut e, q);
                        }
                        BatchItem::Update(u) => {
                            e.u8(1);
                            enc_update_event(&mut e, u);
                        }
                    }
                }
            }
            Request::ReplicaBootstrap { shard, state } => {
                let mut e = Enc::new(buf, OP_REPLICA_BOOTSTRAP);
                e.u16(*shard);
                e.blob(state);
            }
            Request::ReplicaStatus => {
                Enc::new(buf, OP_REPLICA_STATUS);
            }
            Request::Promote { shard } => {
                let mut e = Enc::new(buf, OP_PROMOTE);
                e.u16(*shard);
            }
            Request::Stats => {
                Enc::new(buf, OP_STATS);
            }
            Request::Telemetry => {
                Enc::new(buf, OP_TELEMETRY);
            }
            Request::Shutdown => {
                Enc::new(buf, OP_SHUTDOWN);
            }
        }
    }

    /// Decodes a request payload.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut d = Dec::new(payload);
        let req = Self::decode_inner(&mut d, true)?;
        d.finish()?;
        Ok(req)
    }

    fn decode_inner(d: &mut Dec<'_>, allow_tagged: bool) -> io::Result<Request> {
        Ok(match d.u8()? {
            OP_QUERY => Request::Query(dec_query_event(d)?),
            OP_UPDATE => Request::Update(dec_update_event(d)?),
            OP_SQL => {
                let seq = d.u64()?;
                let sql = d.lstr()?;
                Request::Sql { seq, sql }
            }
            OP_BATCH => {
                let n = d.u32()? as usize;
                // Validate the count against the bytes actually present
                // before allocating — the count is attacker-controlled.
                if n > d.remaining() / MIN_BATCH_ITEM_BYTES {
                    return Err(bad("batch item count exceeds frame payload"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(match d.u8()? {
                        0 => BatchItem::Query(dec_query_event(d)?),
                        1 => BatchItem::Update(dec_update_event(d)?),
                        _ => return Err(bad("unknown batch item tag")),
                    });
                }
                Request::Batch(items)
            }
            OP_TAGGED if allow_tagged => {
                let corr = d.u64()?;
                let inner = Self::decode_inner(d, false)?;
                Request::Tagged {
                    corr,
                    inner: Box::new(inner),
                }
            }
            OP_TAGGED => return Err(bad("nested tagged request")),
            OP_HELLO => Request::Hello {
                version: d.u8()?,
                epoch: d.u64()?,
            },
            OP_NODE_OPS => {
                let n = d.u32()? as usize;
                // Smallest op: shard tag + the smallest batch item.
                if n > d.remaining() / (2 + MIN_BATCH_ITEM_BYTES) {
                    return Err(bad("node-op count exceeds frame payload"));
                }
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    let shard = d.u16()?;
                    let item = match d.u8()? {
                        0 => BatchItem::Query(dec_query_event(d)?),
                        1 => BatchItem::Update(dec_update_event(d)?),
                        _ => return Err(bad("unknown node-op tag")),
                    };
                    ops.push(NodeOp { shard, item });
                }
                Request::NodeOps(ops)
            }
            OP_DETACH_SHARD => Request::DetachShard { shard: d.u16()? },
            OP_ATTACH_SHARD => Request::AttachShard {
                shard: d.u16()?,
                state: d.blob()?,
            },
            OP_SET_EPOCH => Request::SetEpoch { epoch: d.u64()? },
            OP_RESHARD => Request::Reshard {
                shard: d.u16()?,
                to_node: d.u16()?,
            },
            OP_REPLICATE => {
                let shard = d.u16()?;
                let from_offset = d.u64()?;
                let n = d.u32()? as usize;
                // Validate the count against the bytes actually present
                // before allocating — the count is attacker-controlled.
                if n > d.remaining() / MIN_BATCH_ITEM_BYTES {
                    return Err(bad("replicate item count exceeds frame payload"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(match d.u8()? {
                        0 => BatchItem::Query(dec_query_event(d)?),
                        1 => BatchItem::Update(dec_update_event(d)?),
                        _ => return Err(bad("unknown replicate item tag")),
                    });
                }
                Request::Replicate {
                    shard,
                    from_offset,
                    items,
                }
            }
            OP_REPLICA_BOOTSTRAP => Request::ReplicaBootstrap {
                shard: d.u16()?,
                state: d.blob()?,
            },
            OP_REPLICA_STATUS => Request::ReplicaStatus,
            OP_PROMOTE => Request::Promote { shard: d.u16()? },
            OP_STATS => Request::Stats,
            OP_TELEMETRY => Request::Telemetry,
            OP_SHUTDOWN => Request::Shutdown,
            _ => return Err(bad("unknown request opcode")),
        })
    }
}

/// Encodes `Request::Tagged { corr, inner }` straight into `buf` without
/// boxing or cloning the inner request — the pipelined client's hot-path
/// encoder. The caller guarantees `inner` is not itself `Tagged`.
pub(crate) fn encode_tagged_request_into(corr: u64, inner: &Request, buf: &mut Vec<u8>) {
    debug_assert!(!matches!(inner, Request::Tagged { .. }));
    let mut e = Enc::new(buf, OP_TAGGED);
    e.u64(corr);
    inner.encode_into(e.buf);
}

impl Response {
    /// Encodes the response payload (opcode included, length prefix not)
    /// into a fresh buffer. Prefer [`Response::encode_into`] on hot
    /// paths.
    ///
    /// # Panics
    /// Panics when asked to encode nested [`Response::Tagged`] frames —
    /// constructing one is a caller bug, not a wire condition.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the response payload (opcode included, length prefix not)
    /// to `buf` without allocating — same buffer-reuse contract as
    /// [`Request::encode_into`]: append-only, caller owns clearing.
    ///
    /// # Panics
    /// Panics when asked to encode nested [`Response::Tagged`] frames —
    /// constructing one is a caller bug, not a wire condition.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Response::QueryOk {
                shards_touched,
                local_answers,
                shipped,
            } => {
                let mut e = Enc::new(buf, OP_QUERY_OK);
                e.u16(*shards_touched);
                e.u16(*local_answers);
                e.u16(*shipped);
            }
            Response::UpdateOk { shard, version } => {
                let mut e = Enc::new(buf, OP_UPDATE_OK);
                e.u16(*shard);
                e.u64(*version);
            }
            Response::SqlOk {
                shards_touched,
                local_answers,
                shipped,
                objects,
                result_bytes,
                tolerance,
                kind,
            } => {
                let mut e = Enc::new(buf, OP_SQL_OK);
                e.u16(*shards_touched);
                e.u16(*local_answers);
                e.u16(*shipped);
                e.u32(*objects);
                e.u64(*result_bytes);
                e.u64(*tolerance);
                e.u8(kind_to_u8(*kind));
            }
            Response::SqlRejected {
                stage,
                span_start,
                span_end,
                message,
            } => {
                let mut e = Enc::new(buf, OP_SQL_REJECTED);
                e.u8(match stage {
                    SqlStage::Parse => 0,
                    SqlStage::Analyze => 1,
                });
                e.u32(*span_start);
                e.u32(*span_end);
                e.lstr(message);
            }
            Response::BatchOk(replies) => {
                let mut e = Enc::new(buf, OP_BATCH_OK);
                e.u32(u32::try_from(replies.len()).expect("batch exceeds u32::MAX items"));
                for r in replies {
                    match r {
                        BatchReply::Query {
                            shards_touched,
                            local_answers,
                            shipped,
                        } => {
                            e.u8(0);
                            e.u16(*shards_touched);
                            e.u16(*local_answers);
                            e.u16(*shipped);
                        }
                        BatchReply::Update { shard, version } => {
                            e.u8(1);
                            e.u16(*shard);
                            e.u64(*version);
                        }
                        BatchReply::Error { code, message } => {
                            e.u8(2);
                            e.u16(*code);
                            e.str(message);
                        }
                    }
                }
            }
            Response::Tagged { corr, inner } => {
                assert!(
                    !matches!(**inner, Response::Tagged { .. }),
                    "tagged responses must not nest"
                );
                let mut e = Enc::new(buf, OP_TAGGED_OK);
                e.u64(*corr);
                inner.encode_into(e.buf);
            }
            Response::HelloOk(info) => {
                let mut e = Enc::new(buf, OP_HELLO_OK);
                e.u8(match info.role {
                    NodeRole::Standalone => 0,
                    NodeRole::ClusterNode => 1,
                    NodeRole::Router => 2,
                });
                e.u16(info.node);
                e.u16(info.nodes);
                e.u64(info.epoch);
                e.u16(info.cluster_shards);
                e.str(&info.partitioner);
                e.u64(info.catalog_objects);
                e.u64(info.catalog_bytes);
                e.u16(u16::try_from(info.hosted.len()).expect("hosted shard list exceeds u16"));
                for &s in &info.hosted {
                    e.u16(s);
                }
            }
            Response::ShardState { shard, state } => {
                let mut e = Enc::new(buf, OP_SHARD_STATE);
                e.u16(*shard);
                e.blob(state);
            }
            Response::AttachOk { shard } => {
                let mut e = Enc::new(buf, OP_ATTACH_OK);
                e.u16(*shard);
            }
            Response::EpochOk { epoch } => {
                let mut e = Enc::new(buf, OP_EPOCH_OK);
                e.u64(*epoch);
            }
            Response::ReshardOk { epoch } => {
                let mut e = Enc::new(buf, OP_RESHARD_OK);
                e.u64(*epoch);
            }
            Response::WrongEpoch { epoch } => {
                let mut e = Enc::new(buf, OP_WRONG_EPOCH);
                e.u64(*epoch);
            }
            Response::ReplicaOk { shard, offset } => {
                let mut e = Enc::new(buf, OP_REPLICA_OK);
                e.u16(*shard);
                e.u64(*offset);
            }
            Response::ReplicaStatusOk(entries) => {
                let mut e = Enc::new(buf, OP_REPLICA_STATUS_OK);
                e.u16(u16::try_from(entries.len()).expect("replica status list exceeds u16"));
                for &(shard, offset) in entries {
                    e.u16(shard);
                    e.u64(offset);
                }
            }
            Response::PromoteOk { shard, offset } => {
                let mut e = Enc::new(buf, OP_PROMOTE_OK);
                e.u16(*shard);
                e.u64(*offset);
            }
            Response::StatsOk(snapshot) => {
                let mut e = Enc::new(buf, OP_STATS_OK);
                e.u16(snapshot.shards.len() as u16);
                for s in &snapshot.shards {
                    e.u16(s.shard);
                    e.str(&s.policy);
                    enc_metrics(&mut e, &s.metrics);
                }
            }
            Response::TelemetryOk(snapshot) => {
                let mut e = Enc::new(buf, OP_TELEMETRY_OK);
                enc_telemetry(&mut e, snapshot);
            }
            Response::ShutdownOk => {
                Enc::new(buf, OP_SHUTDOWN_OK);
            }
            Response::Error { code, message } => {
                let mut e = Enc::new(buf, OP_ERROR);
                e.u16(*code);
                e.str(message);
            }
        }
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut d = Dec::new(payload);
        let resp = Self::decode_inner(&mut d, true)?;
        d.finish()?;
        Ok(resp)
    }

    fn decode_inner(d: &mut Dec<'_>, allow_tagged: bool) -> io::Result<Response> {
        Ok(match d.u8()? {
            OP_QUERY_OK => Response::QueryOk {
                shards_touched: d.u16()?,
                local_answers: d.u16()?,
                shipped: d.u16()?,
            },
            OP_UPDATE_OK => Response::UpdateOk {
                shard: d.u16()?,
                version: d.u64()?,
            },
            OP_SQL_OK => Response::SqlOk {
                shards_touched: d.u16()?,
                local_answers: d.u16()?,
                shipped: d.u16()?,
                objects: d.u32()?,
                result_bytes: d.u64()?,
                tolerance: d.u64()?,
                kind: kind_from_u8(d.u8()?)?,
            },
            OP_SQL_REJECTED => Response::SqlRejected {
                stage: match d.u8()? {
                    0 => SqlStage::Parse,
                    1 => SqlStage::Analyze,
                    _ => return Err(bad("unknown SQL error stage")),
                },
                span_start: d.u32()?,
                span_end: d.u32()?,
                message: d.lstr()?,
            },
            OP_BATCH_OK => {
                let n = d.u32()? as usize;
                // Smallest reply is an empty-message error: tag + u16
                // code + u16 length. The guard only bounds allocation;
                // per-reply decoding still checks every byte.
                const MIN_BATCH_REPLY_BYTES: usize = 1 + 2 + 2;
                if n > d.remaining() / MIN_BATCH_REPLY_BYTES {
                    return Err(bad("batch reply count exceeds frame payload"));
                }
                let mut replies = Vec::with_capacity(n);
                for _ in 0..n {
                    replies.push(match d.u8()? {
                        0 => BatchReply::Query {
                            shards_touched: d.u16()?,
                            local_answers: d.u16()?,
                            shipped: d.u16()?,
                        },
                        1 => BatchReply::Update {
                            shard: d.u16()?,
                            version: d.u64()?,
                        },
                        2 => BatchReply::Error {
                            code: d.u16()?,
                            message: d.str()?,
                        },
                        _ => return Err(bad("unknown batch reply tag")),
                    });
                }
                Response::BatchOk(replies)
            }
            OP_TAGGED_OK if allow_tagged => {
                let corr = d.u64()?;
                let inner = Self::decode_inner(d, false)?;
                Response::Tagged {
                    corr,
                    inner: Box::new(inner),
                }
            }
            OP_TAGGED_OK => return Err(bad("nested tagged response")),
            OP_HELLO_OK => {
                let role = match d.u8()? {
                    0 => NodeRole::Standalone,
                    1 => NodeRole::ClusterNode,
                    2 => NodeRole::Router,
                    _ => return Err(bad("unknown node role")),
                };
                let node = d.u16()?;
                let nodes = d.u16()?;
                let epoch = d.u64()?;
                let cluster_shards = d.u16()?;
                let partitioner = d.str()?;
                let catalog_objects = d.u64()?;
                let catalog_bytes = d.u64()?;
                let n = d.u16()? as usize;
                if n > d.remaining() / 2 {
                    return Err(bad("hosted shard count exceeds frame payload"));
                }
                let mut hosted = Vec::with_capacity(n);
                for _ in 0..n {
                    hosted.push(d.u16()?);
                }
                Response::HelloOk(NodeInfo {
                    role,
                    node,
                    nodes,
                    epoch,
                    cluster_shards,
                    partitioner,
                    catalog_objects,
                    catalog_bytes,
                    hosted,
                })
            }
            OP_SHARD_STATE => Response::ShardState {
                shard: d.u16()?,
                state: d.blob()?,
            },
            OP_ATTACH_OK => Response::AttachOk { shard: d.u16()? },
            OP_EPOCH_OK => Response::EpochOk { epoch: d.u64()? },
            OP_RESHARD_OK => Response::ReshardOk { epoch: d.u64()? },
            OP_WRONG_EPOCH => Response::WrongEpoch { epoch: d.u64()? },
            OP_REPLICA_OK => Response::ReplicaOk {
                shard: d.u16()?,
                offset: d.u64()?,
            },
            OP_REPLICA_STATUS_OK => {
                let n = d.u16()? as usize;
                // One entry is a shard id plus an offset.
                if n > d.remaining() / (2 + 8) {
                    return Err(bad("replica status count exceeds frame payload"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((d.u16()?, d.u64()?));
                }
                Response::ReplicaStatusOk(entries)
            }
            OP_PROMOTE_OK => Response::PromoteOk {
                shard: d.u16()?,
                offset: d.u64()?,
            },
            OP_STATS_OK => {
                let n = d.u16()? as usize;
                // Shard index + empty policy string + the fixed-width
                // metrics block — the least one entry can occupy.
                const MIN_SHARD_STATS_BYTES: usize = 2 + 2 + 14 * 8;
                if n > d.remaining() / MIN_SHARD_STATS_BYTES {
                    return Err(bad("stats shard count exceeds frame payload"));
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    let shard = d.u16()?;
                    let policy = d.str()?;
                    let metrics = dec_metrics(d)?;
                    shards.push(ShardStats {
                        shard,
                        policy,
                        metrics,
                    });
                }
                Response::StatsOk(StatsSnapshot { shards })
            }
            OP_TELEMETRY_OK => Response::TelemetryOk(dec_telemetry(d)?),
            OP_SHUTDOWN_OK => Response::ShutdownOk,
            OP_ERROR => Response::Error {
                code: d.u16()?,
                message: d.str()?,
            },
            _ => return Err(bad("unknown response opcode")),
        })
    }
}

/// Writes one length-prefixed frame as a single socket write (both ends
/// run with TCP_NODELAY, so separate length/payload writes would cost a
/// syscall and often a packet each).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES as usize {
        return Err(bad("frame exceeds MAX_FRAME_BYTES"));
    }
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()
}

/// Appends one length-prefixed frame to `out`, producing the payload by
/// running `encode` directly against the buffer (no intermediate copy):
/// four zero bytes are reserved, the encoder appends the payload, then
/// the length word is patched in place. Callers stack any number of
/// frames into one buffer and hit the socket with a single `write_all`
/// per window — the coalescing primitive of the wire hot path.
///
/// On an oversized payload the buffer is truncated back to its entry
/// length, so a failed append never leaves a torn frame behind.
pub fn append_frame_with<F: FnOnce(&mut Vec<u8>)>(out: &mut Vec<u8>, encode: F) -> io::Result<()> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    encode(out);
    let payload_len = out.len() - start - 4;
    if payload_len > MAX_FRAME_BYTES as usize {
        out.truncate(start);
        return Err(bad("frame exceeds MAX_FRAME_BYTES"));
    }
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_be_bytes());
    Ok(())
}

/// Reads one length-prefixed frame payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    read_frame_into(r, &mut payload)?;
    Ok(payload)
}

/// Reads one length-prefixed frame payload into a reusable buffer (the
/// buffer is cleared, then filled with exactly the payload bytes), so a
/// long-lived connection allocates its read buffer once instead of per
/// frame.
pub fn read_frame_into<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> io::Result<()> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(bad("frame exceeds MAX_FRAME_BYTES"));
    }
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_core::Cost;

    fn round_trip_request(req: Request) {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let enc = resp.encode();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query(QueryEvent {
            seq: 42,
            objects: vec![ObjectId(0), ObjectId(7), ObjectId(65_000)],
            result_bytes: 123_456_789,
            tolerance: 500,
            kind: QueryKind::SelfJoin,
        }));
        round_trip_request(Request::Update(UpdateEvent {
            seq: 43,
            object: ObjectId(9),
            bytes: u64::MAX / 3,
        }));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn sql_and_batch_requests_round_trip() {
        round_trip_request(Request::Sql {
            seq: 77,
            sql: "SELECT ra FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 0.5)".into(),
        });
        round_trip_request(Request::Sql {
            seq: 0,
            sql: String::new(),
        });
        round_trip_request(Request::Batch(vec![]));
        round_trip_request(Request::Batch(vec![
            BatchItem::Query(QueryEvent {
                seq: 1,
                objects: vec![ObjectId(4), ObjectId(9)],
                result_bytes: 640,
                tolerance: 3,
                kind: QueryKind::Range,
            }),
            BatchItem::Update(UpdateEvent {
                seq: 2,
                object: ObjectId(4),
                bytes: 99,
            }),
            BatchItem::Query(QueryEvent {
                seq: 3,
                objects: vec![],
                result_bytes: 0,
                tolerance: 0,
                kind: QueryKind::Scan,
            }),
        ]));
        round_trip_request(Request::Tagged {
            corr: u64::MAX,
            inner: Box::new(Request::Sql {
                seq: 5,
                sql: "SELECT COUNT(*) FROM PhotoObj".into(),
            }),
        });
        round_trip_request(Request::Tagged {
            corr: 0,
            inner: Box::new(Request::Stats),
        });
    }

    #[test]
    fn sql_and_batch_responses_round_trip() {
        round_trip_response(Response::SqlOk {
            shards_touched: 4,
            local_answers: 1,
            shipped: 3,
            objects: 17,
            result_bytes: 1 << 40,
            tolerance: 50,
            kind: QueryKind::Cone,
        });
        round_trip_response(Response::SqlRejected {
            stage: SqlStage::Parse,
            span_start: 3,
            span_end: 9,
            message: "expected FROM".into(),
        });
        round_trip_response(Response::SqlRejected {
            stage: SqlStage::Analyze,
            span_start: 0,
            span_end: 0,
            message: "unknown column `zap` in table `PhotoObj`".into(),
        });
        round_trip_response(Response::BatchOk(vec![]));
        round_trip_response(Response::BatchOk(vec![
            BatchReply::Query {
                shards_touched: 2,
                local_answers: 2,
                shipped: 0,
            },
            BatchReply::Update {
                shard: 1,
                version: 12,
            },
            BatchReply::Error {
                code: error_code::UNKNOWN_OBJECT,
                message: "object 99 is outside the catalog".into(),
            },
        ]));
        round_trip_response(Response::Tagged {
            corr: 42,
            inner: Box::new(Response::QueryOk {
                shards_touched: 1,
                local_answers: 1,
                shipped: 0,
            }),
        });
        // Regression: the smallest real reply (empty-message error) must
        // pass the count-vs-payload guard.
        round_trip_response(Response::BatchOk(vec![BatchReply::Error {
            code: 1,
            message: String::new(),
        }]));
    }

    #[test]
    fn cluster_requests_round_trip() {
        round_trip_request(Request::Hello {
            version: PROTOCOL_VERSION,
            epoch: 17,
        });
        round_trip_request(Request::NodeOps(vec![]));
        round_trip_request(Request::NodeOps(vec![
            NodeOp {
                shard: 3,
                item: BatchItem::Query(QueryEvent {
                    seq: 1,
                    objects: vec![ObjectId(0), ObjectId(4)],
                    result_bytes: 99,
                    tolerance: 2,
                    kind: QueryKind::Cone,
                }),
            },
            NodeOp {
                shard: 0,
                item: BatchItem::Update(UpdateEvent {
                    seq: 2,
                    object: ObjectId(1),
                    bytes: 7,
                }),
            },
        ]));
        round_trip_request(Request::DetachShard { shard: 2 });
        round_trip_request(Request::AttachShard {
            shard: 2,
            state: b"{\"format\":1}\n".to_vec(),
        });
        round_trip_request(Request::AttachShard {
            shard: 0,
            state: Vec::new(),
        });
        round_trip_request(Request::SetEpoch { epoch: u64::MAX });
        round_trip_request(Request::Reshard {
            shard: 5,
            to_node: 1,
        });
    }

    #[test]
    fn cluster_responses_round_trip() {
        round_trip_response(Response::HelloOk(NodeInfo {
            role: NodeRole::ClusterNode,
            node: 1,
            nodes: 2,
            epoch: 3,
            cluster_shards: 4,
            partitioner: "ring".into(),
            catalog_objects: 1_000,
            catalog_bytes: 123_456,
            hosted: vec![1, 3],
        }));
        round_trip_response(Response::HelloOk(NodeInfo {
            role: NodeRole::Standalone,
            node: 0,
            nodes: 1,
            epoch: 0,
            cluster_shards: 8,
            partitioner: "rr".into(),
            catalog_objects: 0,
            catalog_bytes: 0,
            hosted: vec![],
        }));
        round_trip_response(Response::ShardState {
            shard: 7,
            state: vec![1, 2, 3, 255],
        });
        round_trip_response(Response::AttachOk { shard: 7 });
        round_trip_response(Response::EpochOk { epoch: 9 });
        round_trip_response(Response::ReshardOk { epoch: 10 });
        round_trip_response(Response::WrongEpoch { epoch: 11 });
    }

    #[test]
    fn replication_requests_round_trip() {
        round_trip_request(Request::Replicate {
            shard: 3,
            from_offset: 0,
            items: vec![],
        });
        round_trip_request(Request::Replicate {
            shard: 1,
            from_offset: u64::MAX / 7,
            items: vec![
                BatchItem::Update(UpdateEvent {
                    seq: 9,
                    object: ObjectId(2),
                    bytes: 41,
                }),
                BatchItem::Query(QueryEvent {
                    seq: 10,
                    objects: vec![ObjectId(0), ObjectId(5)],
                    result_bytes: 640,
                    tolerance: 2,
                    kind: QueryKind::Cone,
                }),
            ],
        });
        round_trip_request(Request::ReplicaBootstrap {
            shard: 2,
            state: Vec::new(),
        });
        round_trip_request(Request::ReplicaBootstrap {
            shard: 2,
            state: b"{\"format\":1}\n".to_vec(),
        });
        round_trip_request(Request::ReplicaStatus);
        round_trip_request(Request::Promote { shard: 7 });
    }

    #[test]
    fn replication_responses_round_trip() {
        round_trip_response(Response::ReplicaOk {
            shard: 3,
            offset: 12_345,
        });
        round_trip_response(Response::ReplicaStatusOk(vec![]));
        round_trip_response(Response::ReplicaStatusOk(vec![(0, 17), (5, u64::MAX)]));
        round_trip_response(Response::PromoteOk {
            shard: 5,
            offset: 99,
        });
    }

    #[test]
    fn hostile_replicate_count_rejected_without_allocation() {
        let mut payload = vec![OP_REPLICATE];
        payload.extend_from_slice(&1u16.to_be_bytes()); // shard
        payload.extend_from_slice(&0u64.to_be_bytes()); // from_offset
        payload.extend_from_slice(&u32::MAX.to_be_bytes()); // item count
        payload.push(1);
        let err = Request::decode(&payload).unwrap_err();
        assert!(err.to_string().contains("replicate item count"), "{err}");
    }

    #[test]
    fn hostile_replica_status_count_rejected_without_allocation() {
        let mut payload = vec![OP_REPLICA_STATUS_OK];
        payload.extend_from_slice(&u16::MAX.to_be_bytes()); // entry count
        payload.push(0);
        let err = Response::decode(&payload).unwrap_err();
        assert!(err.to_string().contains("replica status count"), "{err}");
    }

    #[test]
    fn hostile_node_op_count_rejected_without_allocation() {
        let mut payload = vec![OP_NODE_OPS];
        payload.extend_from_slice(&u32::MAX.to_be_bytes());
        payload.push(1);
        let err = Request::decode(&payload).unwrap_err();
        assert!(err.to_string().contains("node-op count"), "{err}");
    }

    #[test]
    fn hostile_shard_state_length_rejected_without_allocation() {
        let mut payload = vec![OP_ATTACH_SHARD];
        payload.extend_from_slice(&3u16.to_be_bytes()); // shard
        payload.extend_from_slice(&u32::MAX.to_be_bytes()); // blob length
        payload.extend_from_slice(b"tiny");
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn nested_tagged_frames_rejected() {
        // A hand-built doubly-tagged request payload must not decode.
        let inner = Request::Tagged {
            corr: 1,
            inner: Box::new(Request::Stats),
        }
        .encode();
        let mut payload = vec![0x10u8];
        payload.extend_from_slice(&2u64.to_be_bytes());
        payload.extend_from_slice(&inner);
        assert!(Request::decode(&payload).is_err());

        let inner = Response::Tagged {
            corr: 1,
            inner: Box::new(Response::ShutdownOk),
        }
        .encode();
        let mut payload = vec![0x90u8];
        payload.extend_from_slice(&2u64.to_be_bytes());
        payload.extend_from_slice(&inner);
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn hostile_batch_count_rejected_without_allocation() {
        // A tiny frame claiming u32::MAX items must fail on the
        // count-vs-payload check, not by reserving a giant Vec.
        let mut payload = vec![0x06u8]; // OP_BATCH
        payload.extend_from_slice(&u32::MAX.to_be_bytes());
        payload.push(1); // one truncated update item
        let err = Request::decode(&payload).unwrap_err();
        assert!(err.to_string().contains("batch item count"), "{err}");
    }

    #[test]
    fn hostile_sql_length_rejected_without_allocation() {
        let mut payload = vec![0x05u8]; // OP_SQL
        payload.extend_from_slice(&1u64.to_be_bytes()); // seq
        payload.extend_from_slice(&u32::MAX.to_be_bytes()); // text length
        payload.extend_from_slice(b"SELECT"); // far fewer bytes present
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::QueryOk {
            shards_touched: 3,
            local_answers: 2,
            shipped: 1,
        });
        round_trip_response(Response::UpdateOk {
            shard: 2,
            version: 99,
        });
        round_trip_response(Response::ShutdownOk);
        round_trip_response(Response::Error {
            code: 7,
            message: "object out of range".into(),
        });

        let mut ledger = CostLedger::default();
        ledger.breakdown.query_ship = Cost(11);
        ledger.breakdown.update_ship = Cost(22);
        ledger.breakdown.load = Cost(33);
        ledger.shipped_queries = 4;
        ledger.local_answers = 5;
        ledger.update_ships = 6;
        ledger.loads = 7;
        ledger.evictions = 8;
        let snapshot = StatsSnapshot {
            shards: vec![
                ShardStats {
                    shard: 0,
                    policy: "VCover".into(),
                    metrics: EngineMetrics {
                        ledger: ledger.clone(),
                        queries: 9,
                        updates: 91,
                        tolerance_served: 2,
                        cache_capacity: 1_000,
                        cache_used: 400,
                        residents: 3,
                    },
                },
                ShardStats {
                    shard: 1,
                    policy: "VCover".into(),
                    ..Default::default()
                },
            ],
        };
        assert_eq!(snapshot.total_ledger().total(), Cost(66));
        assert_eq!(snapshot.total_metrics().tolerance_served, 2);
        round_trip_response(Response::StatsOk(snapshot));
    }

    #[test]
    fn snapshot_aggregates_to_sim_report() {
        let mut a = CostLedger::default();
        a.breakdown.query_ship = Cost(10);
        a.shipped_queries = 1;
        let mut b = CostLedger::default();
        b.breakdown.load = Cost(5);
        b.local_answers = 2;
        let snap = StatsSnapshot {
            shards: vec![
                ShardStats {
                    shard: 0,
                    policy: "VCover".into(),
                    metrics: EngineMetrics {
                        ledger: a,
                        queries: 1,
                        updates: 2,
                        cache_capacity: 100,
                        ..Default::default()
                    },
                },
                ShardStats {
                    shard: 1,
                    policy: "VCover".into(),
                    metrics: EngineMetrics {
                        ledger: b,
                        queries: 2,
                        updates: 2,
                        tolerance_served: 1,
                        cache_capacity: 200,
                        ..Default::default()
                    },
                },
            ],
        };
        let report = snap.to_sim_report();
        assert_eq!(report.total(), Cost(15));
        assert_eq!(report.events, 7);
        assert_eq!(report.cache_bytes, 300);
        assert_eq!(report.policy, "VCoverx2");
        assert_eq!(report.ledger.local_answers, 2);
        assert_eq!(report.metrics.tolerance_served, 1);
    }

    #[test]
    fn frame_io_round_trips() {
        let req = Request::Query(QueryEvent {
            seq: 1,
            objects: vec![ObjectId(3)],
            result_bytes: 50,
            tolerance: 0,
            kind: QueryKind::Cone,
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let payload = read_frame(&mut cursor).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn hostile_object_count_rejected_without_allocation() {
        // 34-byte frame claiming u32::MAX objects: must be rejected by
        // the count-vs-payload check, not by attempting a 16 GiB Vec.
        let mut payload = vec![0x01u8]; // OP_QUERY
        payload.extend_from_slice(&1u64.to_be_bytes()); // seq
        payload.extend_from_slice(&2u64.to_be_bytes()); // result_bytes
        payload.extend_from_slice(&0u64.to_be_bytes()); // tolerance
        payload.push(0); // kind
        payload.extend_from_slice(&u32::MAX.to_be_bytes()); // object count
        let err = Request::decode(&payload).unwrap_err();
        assert!(err.to_string().contains("object count"), "{err}");
    }

    #[test]
    fn oversized_write_rejected_in_release_too() {
        let huge = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0x99]).is_err());
        assert!(Request::decode(&[OP_UPDATE, 1, 2]).is_err());
        let mut q = Request::Stats.encode();
        q.push(0);
        assert!(
            Request::decode(&q).is_err(),
            "trailing bytes must be rejected"
        );
        assert!(Response::decode(&[OP_ERROR, 0]).is_err());
    }
}
