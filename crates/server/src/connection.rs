//! The shared per-connection frame loop both the server and the router
//! run: a flat read buffer that drains every complete frame between
//! syscalls, a coalesced write buffer flushed right before the loop
//! would block, and shutdown-aware polling — the wire hot path distilled
//! so the two tiers cannot drift apart.

use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
pub(crate) const POLL: Duration = Duration::from_millis(25);

/// How long a connection may stall (mid-frame read after shutdown, or a
/// blocked write) before it is dropped.
pub(crate) const STALL_LIMIT: Duration = Duration::from_secs(5);

/// Initial per-connection read-buffer size; grows only when a single
/// frame outgrows it.
pub(crate) const READ_BUF: usize = 64 * 1024;

/// Cap on coalesced response bytes before an early flush, bounding
/// per-connection memory under huge pipelined windows.
pub(crate) const WRITE_COALESCE_BYTES: usize = 256 * 1024;

/// Length of the complete frame (header + payload) at the front of
/// `buf`, or `None` when more bytes are needed. Rejects corrupt length
/// words before any allocation.
pub(crate) fn buffered_frame_len(buf: &[u8]) -> io::Result<Option<usize>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let total = 4 + len as usize;
    Ok(if buf.len() >= total {
        Some(total)
    } else {
        None
    })
}

/// Pulls more bytes into `rbuf[*end..]` after compacting the unconsumed
/// region `[*start, *end)` to the front (growing the buffer when the
/// pending frame needs it), polling the shutdown flag while idle.
///
/// Returns `Ok(false)` on a clean stop — EOF or shutdown, both only at a
/// frame boundary (no partial frame buffered). Mid-frame, shutdown
/// grants [`STALL_LIMIT`] for the frame to finish before the connection
/// errors out; EOF mid-frame is an error immediately.
pub(crate) fn fill_polling(
    reader: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    start: &mut usize,
    end: &mut usize,
    shutdown: &AtomicBool,
) -> io::Result<bool> {
    use std::io::Read;
    if *start > 0 {
        rbuf.copy_within(*start..*end, 0);
        *end -= *start;
        *start = 0;
    }
    // A frame larger than the buffer could never complete: grow to fit
    // (`buffered_frame_len` already validated the length word). And a
    // buffer grown for a *past* oversized frame must not stay pinned for
    // the connection's lifetime (100 idle connections that each saw one
    // 64 MiB frame would otherwise hold gigabytes): once nothing pending
    // needs the extra room, give the memory back.
    let needed = if *end >= 4 {
        4 + u32::from_be_bytes(rbuf[..4].try_into().unwrap()) as usize
    } else {
        *end
    };
    if needed > rbuf.len() {
        rbuf.resize(needed, 0);
    } else if rbuf.len() > READ_BUF && *end <= READ_BUF && needed <= READ_BUF {
        rbuf.truncate(READ_BUF);
        rbuf.shrink_to_fit();
    }
    let at_boundary = *end == 0;
    let mut stall_started: Option<std::time::Instant> = None;
    loop {
        match reader.read(&mut rbuf[*end..]) {
            Ok(0) => {
                if at_boundary {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                *end += n;
                return Ok(true);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    if at_boundary {
                        return Ok(false);
                    }
                    let started = stall_started.get_or_insert_with(std::time::Instant::now);
                    if started.elapsed() > STALL_LIMIT {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame stalled past shutdown grace period",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The per-connection serve loop, built around two reusable buffers:
///
/// * **Read side** — one flat buffer; a `read` syscall pulls as many
///   pipelined frames as the socket holds, and the loop serves every
///   complete frame before touching the socket again. No per-frame
///   allocation, and typically one syscall per *window* rather than two
///   per frame.
/// * **Write side** — the handler appends length-prefixed response
///   frames to a coalesced buffer that hits the socket with a single
///   `write_all` right before the loop would block for input — one flush
///   per window under pipelining, per frame under lockstep (where it
///   cannot be avoided: the client is waiting).
///
/// `handle` is called once per complete frame payload; it appends its
/// response frame(s) to the write buffer and returns `true` when the
/// connection must close after flushing (a served `Shutdown`). On a
/// handler error the responses already earned by executed requests are
/// flushed before the error propagates — engine state mutated; the acks
/// must not vanish with the buffer.
pub(crate) fn serve_frames<H>(
    stream: TcpStream,
    shutdown: &AtomicBool,
    mut handle: H,
) -> io::Result<()>
where
    H: FnMut(&[u8], &mut Vec<u8>) -> io::Result<bool>,
{
    // BSD-derived platforms propagate the listener's O_NONBLOCK to
    // accepted sockets; clear it so the read timeout below governs.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    // A client that stops draining responses must not be able to wedge
    // graceful shutdown behind an unbounded blocking write.
    stream.set_write_timeout(Some(STALL_LIMIT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;

    let mut rbuf = vec![0u8; READ_BUF];
    let (mut start, mut end) = (0usize, 0usize);
    let mut wbuf: Vec<u8> = Vec::with_capacity(16 * 1024);

    loop {
        // Serve every complete frame already buffered.
        loop {
            let total = match buffered_frame_len(&rbuf[start..end]) {
                Ok(Some(total)) => total,
                Ok(None) => break,
                Err(e) => {
                    let _ = writer.write_all(&wbuf);
                    return Err(e);
                }
            };
            let payload = &rbuf[start + 4..start + total];
            let closing = match handle(payload, &mut wbuf) {
                Ok(closing) => closing,
                Err(e) => {
                    let _ = writer.write_all(&wbuf);
                    return Err(e);
                }
            };
            start += total;
            if closing {
                writer.write_all(&wbuf)?;
                return Ok(());
            }
            if wbuf.len() >= WRITE_COALESCE_BYTES {
                writer.write_all(&wbuf)?;
                wbuf.clear();
            }
        }
        // About to wait for input: ship the coalesced responses first so
        // the client can make progress (and so lockstep never stalls).
        if !wbuf.is_empty() {
            writer.write_all(&wbuf)?;
            wbuf.clear();
        }
        if !fill_polling(&mut reader, &mut rbuf, &mut start, &mut end, shutdown)? {
            return Ok(());
        }
    }
}
