//! The shared per-connection frame loop both the server and the router
//! run: a flat read buffer that drains every complete frame between
//! syscalls, a coalesced write buffer flushed right before the loop
//! would block, and shutdown-aware polling — the wire hot path distilled
//! so the two tiers cannot drift apart.

use crate::protocol::{append_frame_with, error_code, Response};
use delta_telemetry::{Counter, Histogram, Telemetry};
use std::any::Any;
use std::fmt;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked accept/read loops re-check the shutdown flag.
pub(crate) const POLL: Duration = Duration::from_millis(25);

/// Default for how long a connection may sit mid-frame (a started but
/// unfinished request) or on a blocked flush before it is reaped. The
/// effective limit is configurable per tier ([`crate::ServerConfig`] /
/// [`crate::RouterConfig`]); this is the out-of-the-box value.
pub const STALL_LIMIT: Duration = Duration::from_secs(5);

/// Initial per-connection read-buffer size; grows only when a single
/// frame outgrows it.
pub const READ_BUF: usize = 64 * 1024;

/// Cap on coalesced response bytes before an early flush, bounding
/// per-connection memory under huge pipelined windows.
pub(crate) const WRITE_COALESCE_BYTES: usize = 256 * 1024;

/// Why the wire tier deliberately dropped a connection — the typed
/// replacement for matching on error strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// Stalled mid-frame (half-open / slowloris) or on a blocked flush
    /// past the stall limit.
    Stall,
    /// Sent a frame whose length word exceeds
    /// [`MAX_FRAME_BYTES`](crate::protocol::MAX_FRAME_BYTES).
    Oversize,
}

/// The payload carried inside the `io::Error` for a deliberate drop, so
/// classification is a downcast instead of a substring match.
#[derive(Debug)]
struct ConnDrop {
    cause: DropCause,
    detail: String,
}

impl fmt::Display for ConnDrop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for ConnDrop {}

/// Builds the typed `io::Error` for a deliberate connection drop.
pub(crate) fn drop_error(cause: DropCause, detail: String) -> io::Error {
    let kind = match cause {
        DropCause::Stall => io::ErrorKind::TimedOut,
        DropCause::Oversize => io::ErrorKind::InvalidData,
    };
    io::Error::new(kind, ConnDrop { cause, detail })
}

/// Recovers the typed drop cause from an `io::Error`, if the error is a
/// deliberate wire-tier drop (and not, say, a raw socket failure).
pub fn drop_cause(e: &io::Error) -> Option<DropCause> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<ConnDrop>())
        .map(|d| d.cause)
}

/// The frame loop's view of the node's telemetry: wire-level counters
/// and the frames-per-read histogram, resolved from the registry once
/// at startup so the hot path never touches the registry lock. One set
/// is shared by every connection of a tier (increments are relaxed
/// atomics, batched per syscall where it matters); the registry's
/// `conn.*` names are common to server and router, so cluster roll-ups
/// merge them naturally.
#[derive(Clone)]
pub(crate) struct WireTelemetry {
    /// Payload bytes read off sockets.
    pub(crate) bytes_in: Arc<Counter>,
    /// Response bytes written to sockets.
    pub(crate) bytes_out: Arc<Counter>,
    /// Request frames served.
    pub(crate) frames_in: Arc<Counter>,
    /// Response frames shipped (1:1 with requests in this protocol).
    pub(crate) frames_out: Arc<Counter>,
    /// Coalesced `write_all` flushes (the write-combining win: under
    /// pipelining this is per *window*, not per frame).
    pub(crate) flushes: Arc<Counter>,
    /// Connections dropped for stalling past the stall limit.
    pub(crate) stall_drops: Arc<Counter>,
    /// Connections dropped for a frame above `MAX_FRAME_BYTES`.
    pub(crate) oversize_rejects: Arc<Counter>,
    /// Complete frames drained per read syscall.
    pub(crate) frames_per_read: Arc<Histogram>,
}

impl WireTelemetry {
    /// Resolves the wire-level handles from a node registry.
    pub(crate) fn register(t: &Telemetry) -> WireTelemetry {
        WireTelemetry {
            bytes_in: t.counter("conn.bytes_in"),
            bytes_out: t.counter("conn.bytes_out"),
            frames_in: t.counter("conn.frames_in"),
            frames_out: t.counter("conn.frames_out"),
            flushes: t.counter("conn.flushes"),
            stall_drops: t.counter("conn.stall_drops"),
            oversize_rejects: t.counter("conn.oversize_rejects"),
            frames_per_read: t.histogram("conn.frames_per_read"),
        }
    }
}

/// A per-connection frame handler with **suspension**: the reactor
/// front's generalization of the plain closure handler.
///
/// `on_frame` may answer synchronously (appending response frames to
/// `wbuf`) or *suspend* the response — park the frame's outcome on an
/// internal event (a node reply on a shared link) and return with
/// nothing appended. A suspended connection is resumed by the event
/// loop via `on_resume` when its [`LoopBackend`] reports progress, not
/// by socket readiness. Response **order always equals frame arrival
/// order** per connection: a handler that suspends must queue later
/// responses behind earlier suspended ones.
///
/// Both hooks return `true` to close the connection once the write
/// buffer drains (a served `Shutdown`) — even when that response was
/// suspended and only emitted on resume.
pub(crate) trait FrameHandler: Send {
    /// Serves one complete frame payload. `key` is the connection's
    /// loop-local key (its epoll token), which backends use to address
    /// resumptions.
    fn on_frame(
        &mut self,
        key: usize,
        payload: &[u8],
        wbuf: &mut Vec<u8>,
        backend: &mut dyn LoopBackend,
    ) -> io::Result<bool>;

    /// Delivers completed internal work for this connection: emit every
    /// response now emittable in arrival order. Only called on keys the
    /// backend marked resumable.
    fn on_resume(
        &mut self,
        _key: usize,
        _wbuf: &mut Vec<u8>,
        _backend: &mut dyn LoopBackend,
    ) -> io::Result<bool> {
        Ok(false)
    }

    /// True while responses are suspended on internal events — the
    /// connection must not be reaped as idle (shutdown drain waits for
    /// it like it waits for an undrained write buffer).
    fn suspended(&self) -> bool {
        false
    }

    /// True when the handler cannot accept more frames right now (its
    /// pending-response queue is full); the pump stops consuming input
    /// until resumptions drain it, exactly like write backpressure.
    fn saturated(&self) -> bool {
        false
    }
}

/// Plain request/response handlers (the server tier, the router's
/// threaded twin) wrapped as a never-suspending [`FrameHandler`].
pub(crate) struct ClosureHandler<F>(pub(crate) F);

impl<F> FrameHandler for ClosureHandler<F>
where
    F: FnMut(&[u8], &mut Vec<u8>) -> io::Result<bool> + Send,
{
    fn on_frame(
        &mut self,
        _key: usize,
        payload: &[u8],
        wbuf: &mut Vec<u8>,
        _backend: &mut dyn LoopBackend,
    ) -> io::Result<bool> {
        (self.0)(payload, wbuf)
    }
}

/// Per-event-loop machinery that frame handlers suspend on: the
/// reactor loop drives it alongside the client connections. The
/// router's shared node links implement this; tiers without internal
/// events use [`NoBackend`].
///
/// The loop contract per iteration: readiness events whose token has
/// the backend bit set are routed to `on_event`; `tick` fires internal
/// deadlines; every key in `take_resumable` gets an
/// [`FrameHandler::on_resume`]; `flush` runs after resumptions so
/// writes enqueued anywhere in the iteration coalesce into one flush
/// per link per pump.
pub(crate) trait LoopBackend: Send {
    /// Downcast hook so a tier's handler can reach its concrete
    /// backend (they are registered as a pair by construction).
    fn as_any(&mut self) -> &mut dyn Any;

    /// A readiness event for backend token `token` (bit already
    /// stripped).
    fn on_event(&mut self, _token: usize, _now: Instant) {}

    /// Advances internal deadlines (the backend owns its own timer
    /// wheel, separate from the connection stall wheel).
    fn tick(&mut self, _now: Instant) {}

    /// Connection keys with newly completed internal work; drained.
    fn take_resumable(&mut self) -> Vec<usize> {
        Vec::new()
    }

    /// Ships coalesced internal writes — once per loop iteration.
    fn flush(&mut self, _now: Instant) {}

    /// Connection `key` closed: abandon its pending internal work.
    fn conn_closed(&mut self, _key: usize) {}
}

/// The no-op backend for tiers whose handlers never suspend.
pub(crate) struct NoBackend;

impl LoopBackend for NoBackend {
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Length of the complete frame (header + payload) at the front of
/// `buf`, or `None` when more bytes are needed. Rejects corrupt length
/// words before any allocation, with a typed [`DropCause::Oversize`]
/// error (recoverable via [`drop_cause`]).
pub fn buffered_frame_len(buf: &[u8]) -> io::Result<Option<usize>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(drop_error(
            DropCause::Oversize,
            format!(
                "frame length {len} exceeds MAX_FRAME_BYTES ({})",
                crate::protocol::MAX_FRAME_BYTES
            ),
        ));
    }
    let total = 4 + len as usize;
    Ok(if buf.len() >= total {
        Some(total)
    } else {
        None
    })
}

/// Readies `rbuf` for the next read syscall: compacts the unconsumed
/// region `[*start, *end)` to the front, grows the buffer when the
/// pending frame's validated length word says it could never complete
/// in the current capacity, and shrinks a buffer grown for a *past*
/// oversized frame back to [`READ_BUF`] once nothing pending needs the
/// extra room (100 idle connections that each saw one 64 MiB frame must
/// not hold gigabytes).
///
/// The caller must have validated any buffered length word via
/// [`buffered_frame_len`] first — this function trusts it.
pub fn prepare_read_buffer(rbuf: &mut Vec<u8>, start: &mut usize, end: &mut usize) {
    if *start > 0 {
        rbuf.copy_within(*start..*end, 0);
        *end -= *start;
        *start = 0;
    }
    let needed = if *end >= 4 {
        4 + u32::from_be_bytes(rbuf[..4].try_into().unwrap()) as usize
    } else {
        *end
    };
    if needed > rbuf.len() {
        rbuf.resize(needed, 0);
    } else if rbuf.len() > READ_BUF && *end <= READ_BUF && needed <= READ_BUF {
        rbuf.truncate(READ_BUF);
        rbuf.shrink_to_fit();
    }
}

/// Pulls more bytes into `rbuf[*end..]` after compacting/resizing via
/// [`prepare_read_buffer`], polling the shutdown flag while idle.
///
/// Returns `Ok(false)` on a clean stop — EOF or shutdown, both only at a
/// frame boundary (no partial frame buffered). A connection that is
/// *mid-frame* — it sent part of a request and went quiet — is on the
/// `stall_limit` clock **unconditionally**: a half-open or slowloris
/// client is reaped during normal operation, not only once shutdown
/// arms. (This deadline used to arm only post-shutdown, which let one
/// quiet client pin a thread and its read buffer forever.) Idling at a
/// frame boundary is always allowed: that is just a connection with
/// nothing to say. EOF mid-frame is an error immediately.
pub(crate) fn fill_polling(
    reader: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    start: &mut usize,
    end: &mut usize,
    shutdown: &AtomicBool,
    stall_limit: Duration,
) -> io::Result<bool> {
    use std::io::Read;
    prepare_read_buffer(rbuf, start, end);
    let at_boundary = *end == 0;
    let mut stall_started: Option<std::time::Instant> = None;
    loop {
        match reader.read(&mut rbuf[*end..]) {
            Ok(0) => {
                if at_boundary {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                *end += n;
                return Ok(true);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if at_boundary {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(false);
                    }
                } else {
                    let started = stall_started.get_or_insert_with(std::time::Instant::now);
                    if started.elapsed() > stall_limit {
                        return Err(drop_error(
                            DropCause::Stall,
                            format!("mid-frame stall past {stall_limit:?}"),
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The per-connection serve loop, built around two reusable buffers:
///
/// * **Read side** — one flat buffer; a `read` syscall pulls as many
///   pipelined frames as the socket holds, and the loop serves every
///   complete frame before touching the socket again. No per-frame
///   allocation, and typically one syscall per *window* rather than two
///   per frame.
/// * **Write side** — the handler appends length-prefixed response
///   frames to a coalesced buffer that hits the socket with a single
///   `write_all` right before the loop would block for input — one flush
///   per window under pipelining, per frame under lockstep (where it
///   cannot be avoided: the client is waiting).
///
/// `handle` is called once per complete frame payload; it appends its
/// response frame(s) to the write buffer and returns `true` when the
/// connection must close after flushing (a served `Shutdown`). On a
/// handler error the responses already earned by executed requests are
/// flushed before the error propagates — engine state mutated; the acks
/// must not vanish with the buffer.
pub(crate) fn serve_frames<H>(
    stream: TcpStream,
    shutdown: &AtomicBool,
    wire: &WireTelemetry,
    stall_limit: Duration,
    handle: H,
) -> io::Result<()>
where
    H: FnMut(&[u8], &mut Vec<u8>) -> io::Result<bool>,
{
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown peer>".to_string());
    let result = serve_frames_inner(stream, shutdown, wire, stall_limit, handle);
    if let Err(e) = &result {
        classify_drop(e, wire, &peer, stall_limit);
    }
    result
}

/// Counts a deliberate drop and leaves one line of trace with the peer
/// that hit it. Classification is the typed [`drop_cause`] payload;
/// raw socket timeouts (a blocked `write_all` hitting the write
/// timeout) fall back to their `io::ErrorKind` and still count as
/// stalls.
pub(crate) fn classify_drop(
    e: &io::Error,
    wire: &WireTelemetry,
    peer: &str,
    stall_limit: Duration,
) {
    match drop_cause(e) {
        Some(DropCause::Stall) => {
            wire.stall_drops.inc();
            eprintln!("delta-conn: dropping {peer}: stalled past {stall_limit:?} ({e})");
        }
        Some(DropCause::Oversize) => {
            wire.oversize_rejects.inc();
            eprintln!("delta-conn: dropping {peer}: oversized frame ({e})");
        }
        None => {
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) {
                wire.stall_drops.inc();
                eprintln!("delta-conn: dropping {peer}: stalled past {stall_limit:?} ({e})");
            }
        }
    }
}

/// Appends the typed oversize error frame a client receives before the
/// connection closes. Oversize is detected at the decode position — by
/// construction a frame boundary — so unlike a mid-frame stall, a
/// well-formed reply *can* precede the close instead of a silent EOF.
pub(crate) fn append_oversize_reply(wbuf: &mut Vec<u8>, e: &io::Error) {
    let response = Response::Error {
        code: error_code::FRAME_TOO_LARGE,
        message: e.to_string(),
    };
    // Encoding a short error frame cannot itself exceed MAX_FRAME_BYTES.
    let _ = append_frame_with(wbuf, |buf| response.encode_into(buf));
}

fn serve_frames_inner<H>(
    stream: TcpStream,
    shutdown: &AtomicBool,
    wire: &WireTelemetry,
    stall_limit: Duration,
    mut handle: H,
) -> io::Result<()>
where
    H: FnMut(&[u8], &mut Vec<u8>) -> io::Result<bool>,
{
    // BSD-derived platforms propagate the listener's O_NONBLOCK to
    // accepted sockets; clear it so the read timeout below governs.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    // A client that stops draining responses must not be able to wedge
    // graceful shutdown behind an unbounded blocking write.
    stream.set_write_timeout(Some(stall_limit))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;

    let mut rbuf = vec![0u8; READ_BUF];
    let (mut start, mut end) = (0usize, 0usize);
    let mut wbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
    // One coalesced flush: counted once, bytes counted once.
    let flush = |writer: &mut TcpStream, wbuf: &[u8]| -> io::Result<()> {
        writer.write_all(wbuf)?;
        wire.flushes.inc();
        wire.bytes_out.add(wbuf.len() as u64);
        Ok(())
    };
    let mut filled_once = false;

    loop {
        // Serve every complete frame already buffered. The telemetry
        // counters are batched per drain (one set of atomic adds per
        // read syscall, not per frame).
        let mut frames_this_read = 0u64;
        let closing = loop {
            let total = match buffered_frame_len(&rbuf[start..end]) {
                Ok(Some(total)) => total,
                Ok(None) => break None,
                Err(e) => {
                    if drop_cause(&e) == Some(DropCause::Oversize) {
                        append_oversize_reply(&mut wbuf, &e);
                    }
                    let _ = flush(&mut writer, &wbuf);
                    break Some(Err(e));
                }
            };
            let payload = &rbuf[start + 4..start + total];
            let closing = match handle(payload, &mut wbuf) {
                Ok(closing) => closing,
                Err(e) => {
                    let _ = flush(&mut writer, &wbuf);
                    break Some(Err(e));
                }
            };
            start += total;
            frames_this_read += 1;
            if closing {
                break Some(flush(&mut writer, &wbuf));
            }
            if wbuf.len() >= WRITE_COALESCE_BYTES {
                flush(&mut writer, &wbuf)?;
                wbuf.clear();
            }
        };
        if frames_this_read > 0 {
            wire.frames_in.add(frames_this_read);
            wire.frames_out.add(frames_this_read);
        }
        if filled_once {
            wire.frames_per_read.record(frames_this_read);
        }
        if let Some(result) = closing {
            return result;
        }
        // About to wait for input: ship the coalesced responses first so
        // the client can make progress (and so lockstep never stalls).
        if !wbuf.is_empty() {
            flush(&mut writer, &wbuf)?;
            wbuf.clear();
        }
        let pending = end - start;
        if !fill_polling(
            &mut reader,
            &mut rbuf,
            &mut start,
            &mut end,
            shutdown,
            stall_limit,
        )? {
            return Ok(());
        }
        // `fill_polling` compacted to start == 0, so the growth of the
        // buffered region is exactly what the read syscall returned.
        wire.bytes_in.add((end - pending) as u64);
        filled_once = true;
    }
}
