//! The correlation mux behind the router's shared node links.
//!
//! This module is the **socket-free** state machine of the router's
//! reactor data plane: everything about correlation ids, per-client
//! fan-out accounting and reply merging, with no I/O anywhere — so the
//! property tests can drive arbitrary interleavings of tagged replies
//! without a cluster.
//!
//! Three layers:
//!
//! * [`Correlator`] — issues monotonically increasing correlation ids
//!   and matches replies back to the value parked under each id. The
//!   windowed [`crate::client::PipelinedClient`] and every shared node
//!   link use the same implementation, so the client side and the
//!   router side of the `Tagged` envelope cannot drift apart.
//! * [`MergeState`] — merges per-op [`BatchReply`]s back into per-item
//!   replies with the exact batch semantics of the in-process fan-out
//!   (query sub-replies accumulate, update replies overwrite, an error
//!   poisons its item only). Both the threaded per-connection path and
//!   the mux path go through it, which is what keeps the two data
//!   planes byte-identical.
//! * [`FanoutTable`] — one entry per suspended client request: which
//!   connection owes the response, how many node sub-requests are still
//!   outstanding (and on which nodes), and the merge in progress. A
//!   fan-out completes exactly once — on the last reply, on the first
//!   failure, or on its node deadline — and stragglers for an
//!   already-completed fan-out are swallowed silently.
//!
//! ## Why correlation ids ride `Tagged`
//!
//! The protocol already has a pipelining envelope — `Request::Tagged` /
//! `Response::Tagged`, v4 — whose only contract is "the reply carries
//! the same id". Multiplexing many client connections over one node
//! link needs precisely that contract and nothing more, so the mux
//! reuses the envelope instead of minting a second framing layer: no
//! wire version bump, and a node cannot tell a router's shared link
//! from a deep pipelined client.

use crate::protocol::{error_code, BatchReply, NodeOp, Response};
use delta_reactor::TimerKey;
use delta_workload::QueryKind;
use std::collections::HashMap;
use std::io;
use std::time::Instant;

/// Issues correlation ids and matches replies back to the value parked
/// under each id. Ids are monotonically increasing and never reused
/// within one correlator, so a duplicate or unknown id in a reply is
/// always detectable (and is a protocol error, not a guess).
#[derive(Debug)]
pub struct Correlator<T> {
    next: u64,
    pending: HashMap<u64, T>,
}

impl<T> Default for Correlator<T> {
    fn default() -> Self {
        Correlator::new()
    }
}

impl<T> Correlator<T> {
    /// An empty correlator starting at id 0.
    pub fn new() -> Correlator<T> {
        Correlator {
            next: 0,
            pending: HashMap::new(),
        }
    }

    /// The id the next [`Correlator::issue`] call will assign — for
    /// callers that must encode the id into a frame before committing
    /// the value.
    pub fn next_id(&self) -> u64 {
        self.next
    }

    /// Parks `value` under a fresh correlation id and returns the id.
    pub fn issue(&mut self, value: T) -> u64 {
        let corr = self.next;
        self.next += 1;
        self.pending.insert(corr, value);
        corr
    }

    /// Matches a reply: takes the value parked under `corr`, or `None`
    /// for an unknown or already-completed id (the caller must treat
    /// that as a protocol violation by the peer).
    pub fn complete(&mut self, corr: u64) -> Option<T> {
        self.pending.remove(&corr)
    }

    /// Ids still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True when no id awaits a reply.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drains every pending entry (link death: every in-flight request
    /// fails at once). Order is unspecified.
    pub fn drain(&mut self) -> Vec<(u64, T)> {
        self.pending.drain().collect()
    }
}

/// Per-item accumulator for a query that fanned out to several shards:
/// how many sub-queries were sent and what came back so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryAcc {
    /// Sub-queries the split produced.
    pub sent: u16,
    /// Sub-queries answered from shard caches.
    pub local: u16,
    /// Sub-queries shipped to the repository.
    pub shipped: u16,
}

/// Merges per-op replies back into per-item replies with the in-process
/// batch semantics: query sub-replies accumulate into a [`QueryAcc`],
/// an update reply overwrites its item, and an error poisons its item
/// only (taking precedence over sub-queries other nodes served).
#[derive(Debug)]
pub struct MergeState {
    replies: Vec<Option<BatchReply>>,
    accs: Vec<Option<QueryAcc>>,
}

impl MergeState {
    /// A merge over `n_items` client items, none resolved yet.
    pub fn new(n_items: usize) -> MergeState {
        let mut replies = Vec::with_capacity(n_items);
        replies.resize_with(n_items, || None);
        let mut accs = Vec::with_capacity(n_items);
        accs.resize_with(n_items, || None);
        MergeState { replies, accs }
    }

    /// Number of client items under merge.
    pub fn n_items(&self) -> usize {
        self.replies.len()
    }

    /// Resolves `item` to an error before any op is sent (unknown
    /// object, etc.).
    pub fn poison(&mut self, item: usize, code: u16, message: String) {
        self.replies[item] = Some(BatchReply::Error { code, message });
    }

    /// Declares `item` a query that split into `sent` sub-queries, so
    /// the final reply can report the fan-out width even when every
    /// sub-reply is absorbed.
    pub fn expect_query(&mut self, item: usize, sent: u16) {
        self.accs[item] = Some(QueryAcc {
            sent,
            local: 0,
            shipped: 0,
        });
    }

    /// Absorbs one per-op reply for `item`. A query reply for an item
    /// that never declared itself a query is a node protocol violation
    /// and fails the whole request.
    pub fn absorb(&mut self, reply: BatchReply, item: usize) -> io::Result<()> {
        match reply {
            BatchReply::Query {
                local_answers,
                shipped,
                ..
            } => {
                let Some(acc) = self.accs[item].as_mut() else {
                    return Err(io::Error::other(
                        "node sent a query reply for a non-query item",
                    ));
                };
                acc.local += local_answers;
                acc.shipped += shipped;
            }
            BatchReply::Update { shard, version } => {
                self.replies[item] = Some(BatchReply::Update { shard, version });
            }
            BatchReply::Error { code, message } => {
                self.replies[item] = Some(BatchReply::Error { code, message });
            }
        }
        Ok(())
    }

    /// Finalizes the merge into one reply per item, in item order.
    pub fn finish(self) -> Vec<BatchReply> {
        self.replies
            .into_iter()
            .zip(self.accs)
            .map(|(reply, acc)| match (reply, acc) {
                (Some(r), _) => r,
                (None, Some(acc)) => BatchReply::Query {
                    shards_touched: acc.sent,
                    local_answers: acc.local,
                    shipped: acc.shipped,
                },
                (None, None) => BatchReply::Error {
                    code: error_code::BAD_FRAME,
                    message: "item produced no outcome".to_string(),
                },
            })
            .collect()
    }
}

/// How a completed merge is shaped into the client-facing [`Response`].
#[derive(Clone, Debug)]
pub enum ReplyKind {
    /// A lone `Query`/`Update` request: the single item reply converts
    /// to `QueryOk`/`UpdateOk`/`Error`.
    Single,
    /// A `Batch` request: the item replies ship as `BatchOk`.
    Batch,
    /// A compiled SQL request: the single query reply converts to
    /// `SqlOk` carrying the compile-time facts captured here.
    Sql {
        /// Size of the access set the router compiled.
        objects: u32,
        /// Estimated result size in bytes.
        result_bytes: u64,
        /// Currency requirement parsed from the text.
        tolerance: u64,
        /// Workload classification of the query.
        kind: QueryKind,
    },
}

/// Converts a single-item reply into the lockstep response shape.
pub fn single_reply(reply: BatchReply) -> Response {
    match reply {
        BatchReply::Query {
            shards_touched,
            local_answers,
            shipped,
        } => Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        },
        BatchReply::Update { shard, version } => Response::UpdateOk { shard, version },
        BatchReply::Error { code, message } => Response::Error { code, message },
    }
}

/// Shapes a finished merge into the client-facing response for `kind`.
pub fn shape_response(kind: &ReplyKind, merge: MergeState) -> Response {
    let mut replies = merge.finish();
    match kind {
        ReplyKind::Single => single_reply(replies.remove(0)),
        ReplyKind::Batch => Response::BatchOk(replies),
        ReplyKind::Sql {
            objects,
            result_bytes,
            tolerance,
            kind,
        } => match single_reply(replies.remove(0)) {
            Response::QueryOk {
                shards_touched,
                local_answers,
                shipped,
            } => Response::SqlOk {
                shards_touched,
                local_answers,
                shipped,
                objects: *objects,
                result_bytes: *result_bytes,
                tolerance: *tolerance,
                kind: *kind,
            },
            other => other,
        },
    }
}

/// One node sub-request in flight on a shared link: which fan-out it
/// belongs to, the ops it carries (kept for epoch bounces and reply
/// validation), and which client item each op came from.
#[derive(Debug)]
pub struct SubEntry {
    /// Key of the owning fan-out in the [`FanoutTable`].
    pub fanout: usize,
    /// The pre-split ops, in client order.
    pub ops: Vec<NodeOp>,
    /// `items[k]` — client-item index op `k` came from.
    pub items: Vec<usize>,
    /// `WrongEpoch` bounces this sub has survived.
    pub retries: usize,
    /// When the sub was enqueued, for the per-node fan-out histogram.
    pub sent_at: Instant,
}

/// What a correlation id on a node link is waiting for.
#[derive(Debug)]
pub enum Purpose {
    /// An epoch handshake pipelined ahead of ops.
    Hello,
    /// A `NodeOps` sub-request of some client fan-out.
    Sub(SubEntry),
}

/// A finished fan-out handed back to the owning client connection.
#[derive(Debug)]
pub struct Completion {
    /// Key of the client connection that owes the response.
    pub conn: usize,
    /// Fan-out key, so the connection can match its suspended slot.
    pub fanout: usize,
    /// The node-deadline timer still armed for this fan-out, if any —
    /// the caller owns the wheel and must cancel it.
    pub timer: Option<TimerKey>,
    /// `Ok` is a response frame (typed errors included); `Err` kills
    /// the client connection, exactly like the threaded path's
    /// non-node-unavailable errors.
    pub result: Result<Response, io::Error>,
}

/// One suspended client request fanned out over the cluster.
#[derive(Debug)]
struct Fanout {
    conn: usize,
    /// Client-side correlation id to echo (`Tagged` request), if any.
    corr: Option<u64>,
    kind: ReplyKind,
    merge: MergeState,
    /// Sub-requests still awaiting replies.
    outstanding: usize,
    /// Outstanding sub-requests per node.
    per_node: Vec<u32>,
    timer: Option<TimerKey>,
    /// Completed early (failure, deadline, or its connection closed);
    /// lingering only to swallow straggler replies.
    dead: bool,
}

/// All suspended fan-outs of one event loop, keyed by a slab-style
/// index that client connections park in their pending slots.
#[derive(Debug)]
pub struct FanoutTable {
    n_nodes: usize,
    fanouts: HashMap<usize, Fanout>,
    next_key: usize,
    /// Live (not dead) fan-outs, for telemetry.
    live: usize,
}

impl FanoutTable {
    /// An empty table for a cluster of `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> FanoutTable {
        FanoutTable {
            n_nodes,
            fanouts: HashMap::new(),
            next_key: 0,
            live: 0,
        }
    }

    /// Fan-outs still in the table (including dead ones swallowing
    /// stragglers).
    pub fn len(&self) -> usize {
        self.fanouts.len()
    }

    /// True when no fan-out is pending.
    pub fn is_empty(&self) -> bool {
        self.fanouts.is_empty()
    }

    /// Fan-outs that still owe their client a response.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Opens a fan-out for client connection `conn` (echoing `corr` if
    /// the request was tagged). Returns its key; sub-requests register
    /// with [`FanoutTable::register_sub`].
    pub fn begin(
        &mut self,
        conn: usize,
        corr: Option<u64>,
        kind: ReplyKind,
        merge: MergeState,
    ) -> usize {
        let key = self.next_key;
        self.next_key += 1;
        self.fanouts.insert(
            key,
            Fanout {
                conn,
                corr,
                kind,
                merge,
                outstanding: 0,
                per_node: vec![0; self.n_nodes],
                timer: None,
                dead: false,
            },
        );
        self.live += 1;
        key
    }

    /// Records one sub-request headed for `node`.
    pub fn register_sub(&mut self, fanout: usize, node: usize) {
        let f = self.fanouts.get_mut(&fanout).expect("live fanout");
        f.outstanding += 1;
        f.per_node[node] += 1;
    }

    /// Arms the node-deadline timer handle for `fanout`.
    pub fn set_timer(&mut self, fanout: usize, timer: TimerKey) {
        if let Some(f) = self.fanouts.get_mut(&fanout) {
            f.timer = Some(timer);
        }
    }

    /// Whether `fanout` still owes its client a response.
    pub fn is_live(&self, fanout: usize) -> bool {
        self.fanouts.get(&fanout).map(|f| !f.dead).unwrap_or(false)
    }

    /// Sub-requests still outstanding for `fanout` (0 if unknown).
    pub fn outstanding(&self, fanout: usize) -> usize {
        self.fanouts
            .get(&fanout)
            .map(|f| f.outstanding)
            .unwrap_or(0)
    }

    /// Moves one outstanding sub from `from_node` onto `to_nodes` (one
    /// new sub per listed node) after a `WrongEpoch` re-split.
    pub fn retarget(&mut self, fanout: usize, from_node: usize, to_nodes: &[usize]) {
        let Some(f) = self.fanouts.get_mut(&fanout) else {
            return;
        };
        f.per_node[from_node] -= 1;
        f.outstanding -= 1;
        for &node in to_nodes {
            f.per_node[node] += 1;
            f.outstanding += 1;
        }
    }

    /// Absorbs a successful `BatchOk` reply for `entry` from `node`.
    /// Returns the completion if this was the last outstanding sub of a
    /// live fan-out (or a fatal completion on a malformed reply).
    pub fn absorb(
        &mut self,
        entry: &SubEntry,
        node: usize,
        replies: Vec<BatchReply>,
    ) -> Option<Completion> {
        if replies.len() != entry.ops.len() {
            let err = io::Error::other(format!(
                "node {node} answered {} replies for {} ops",
                replies.len(),
                entry.ops.len()
            ));
            let done = self.kill(entry.fanout, Err(err));
            self.discount(entry.fanout, node);
            return done;
        }
        if let Some(f) = self.fanouts.get_mut(&entry.fanout) {
            if !f.dead {
                for (reply, &item) in replies.into_iter().zip(&entry.items) {
                    if let Err(e) = f.merge.absorb(reply, item) {
                        let done = self.kill(entry.fanout, Err(e));
                        self.discount(entry.fanout, node);
                        return done;
                    }
                }
            }
        }
        self.settle(entry.fanout, node)
    }

    /// Fails `entry` with a typed node-unavailable error: the client
    /// connection survives and gets an [`error_code::NODE_UNAVAILABLE`]
    /// frame. Fan-outs with no sub on the failed node are untouched.
    pub fn fail_sub(&mut self, entry: &SubEntry, node: usize, detail: &str) -> Option<Completion> {
        let typed = Response::Error {
            code: error_code::NODE_UNAVAILABLE,
            message: format!("node {node} unavailable: {detail}"),
        };
        let done = self.kill(entry.fanout, Ok(typed));
        self.discount(entry.fanout, node);
        done
    }

    /// Fails `entry` fatally (`Err` kills the client connection) — the
    /// mux twin of the threaded path's non-unavailable node errors.
    pub fn fatal_sub(
        &mut self,
        entry: &SubEntry,
        node: usize,
        err: io::Error,
    ) -> Option<Completion> {
        let done = self.kill(entry.fanout, Err(err));
        self.discount(entry.fanout, node);
        done
    }

    /// Completes `fanout` early with `result` (used for enqueue
    /// failures before any reply and for node deadlines). Stragglers
    /// are still swallowed as they arrive.
    pub fn kill(
        &mut self,
        fanout: usize,
        result: Result<Response, io::Error>,
    ) -> Option<Completion> {
        let f = self.fanouts.get_mut(&fanout)?;
        if f.dead {
            return None;
        }
        f.dead = true;
        self.live -= 1;
        let timer = f.timer.take();
        let conn = f.conn;
        let result = result.map(|r| wrap_corr(f.corr, r));
        if f.outstanding == 0 {
            self.fanouts.remove(&fanout);
        }
        Some(Completion {
            conn,
            fanout,
            timer,
            result,
        })
    }

    /// Drops one outstanding sub on `node` without producing a
    /// completion (the fan-out already completed another way).
    pub fn discount(&mut self, fanout: usize, node: usize) {
        let Some(f) = self.fanouts.get_mut(&fanout) else {
            return;
        };
        f.per_node[node] -= 1;
        f.outstanding -= 1;
        if f.outstanding == 0 && f.dead {
            self.fanouts.remove(&fanout);
        }
    }

    /// Settles one answered sub on `node`: the last one completes a
    /// live fan-out with its merged response.
    fn settle(&mut self, fanout: usize, node: usize) -> Option<Completion> {
        let f = self.fanouts.get_mut(&fanout)?;
        f.per_node[node] -= 1;
        f.outstanding -= 1;
        if f.outstanding > 0 {
            return None;
        }
        let f = self.fanouts.remove(&fanout).expect("present");
        if f.dead {
            return None;
        }
        self.live -= 1;
        Some(Completion {
            conn: f.conn,
            fanout,
            timer: f.timer,
            result: Ok(wrap_corr(f.corr, shape_response(&f.kind, f.merge))),
        })
    }

    /// Fires the node deadline for `fanout`: completes it with a typed
    /// `NODE_UNAVAILABLE` naming the nodes still owing replies, and
    /// returns those nodes so the caller can kill their links. `None`
    /// if the fan-out already completed.
    pub fn on_deadline(
        &mut self,
        fanout: usize,
        timeout: std::time::Duration,
    ) -> Option<(Completion, Vec<usize>)> {
        let f = self.fanouts.get(&fanout)?;
        if f.dead {
            return None;
        }
        let owing: Vec<usize> = f
            .per_node
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(n, _)| n)
            .collect();
        let names = owing
            .iter()
            .map(|n| format!("node {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let typed = Response::Error {
            code: error_code::NODE_UNAVAILABLE,
            message: format!("{names} unavailable: no reply within {timeout:?}"),
        };
        let done = self.kill(fanout, Ok(typed))?;
        Some((done, owing))
    }

    /// Abandons every fan-out owned by client connection `conn` (it
    /// closed), returning the deadline timers the caller must disarm.
    /// In-flight subs keep draining as stragglers.
    pub fn conn_closed(&mut self, conn: usize) -> Vec<TimerKey> {
        let mut timers = Vec::new();
        let keys: Vec<usize> = self
            .fanouts
            .iter()
            .filter(|(_, f)| f.conn == conn)
            .map(|(&k, _)| k)
            .collect();
        for key in keys {
            let f = self.fanouts.get_mut(&key).expect("listed key");
            if let Some(t) = f.timer.take() {
                timers.push(t);
            }
            if !f.dead {
                f.dead = true;
                self.live -= 1;
            }
            if f.outstanding == 0 {
                self.fanouts.remove(&key);
            }
        }
        timers
    }
}

/// Echoes the client's correlation id when the request came tagged.
pub fn wrap_corr(corr: Option<u64>, inner: Response) -> Response {
    match corr {
        Some(corr) => Response::Tagged {
            corr,
            inner: Box::new(inner),
        },
        None => inner,
    }
}
