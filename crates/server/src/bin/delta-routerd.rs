//! `delta-routerd` — the cluster router fronting `delta-serverd` nodes.
//!
//! ```text
//! delta-routerd [--bind 127.0.0.1:7118]
//!               --node ADDR [--node ADDR ...]
//!               [--trace trace.jsonl | --preset small|paper]
//!               [--sql-preset small|paper | --no-sql]
//!               [--telemetry-dump PATH [--telemetry-interval SECS]]
//! ```
//!
//! With `--telemetry-dump`, a background thread appends the router's
//! own telemetry (per-node fan-out latency, epoch retries, reshard
//! phase durations, wire counters) to `PATH` as one JSON object per
//! line, every `--telemetry-interval` seconds (default 1), plus a final
//! line at shutdown. For the *cluster-wide* merge — every node's
//! counters folded in — send a `Telemetry` frame to the router instead.
//!
//! The router connects to every `--node` (in node-id order: the first
//! `--node` must be the daemon started with `--node-id 0`, and so on),
//! validates that they agree on the partitioner, shard count, catalog
//! and routing epoch, then serves the full client protocol on `--bind`:
//! queries are split across nodes exactly like a standalone server
//! splits them across shards, per-item `Batch` semantics and `Tagged`
//! pipelining included.
//!
//! A client `Reshard` frame moves one shard between nodes live (drain →
//! snapshot → re-host → epoch bump); a client `Shutdown` frame shuts the
//! nodes down too and then stops the router.
//!
//! The catalog source must match what the nodes serve — same preset or
//! the same trace file — because the router apportions query result
//! bytes by object sizes itself.

use delta_server::{DeltaClient, FrontDoor, Router, RouterConfig, Telemetry};
use delta_storage::ObjectCatalog;
use delta_workload::WorkloadConfig;
use std::io::Write;
use std::process::exit;
use std::sync::Arc;

struct Args {
    bind: String,
    nodes: Vec<String>,
    trace: Option<String>,
    preset: String,
    sql_preset: Option<String>,
    no_sql: bool,
    telemetry_dump: Option<std::path::PathBuf>,
    telemetry_interval: u64,
    front: FrontDoor,
    reactor_threads: usize,
    stall_limit_ms: u64,
    node_timeout_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: delta-routerd [--bind ADDR] --node ADDR [--node ADDR ...] \
         [--trace FILE | --preset small|paper] \
         [--sql-preset small|paper | --no-sql] \
         [--front reactor|threaded] [--reactor-threads N] [--stall-limit-ms MS] \
         [--node-timeout-ms MS] \
         [--telemetry-dump PATH [--telemetry-interval SECS]]"
    );
    exit(2);
}

/// Appends one line to `path`, creating the file if needed.
fn append_jsonl(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Periodic JSONL telemetry writer; runs detached until the process
/// exits (a final line is written after the router stops).
fn spawn_telemetry_dump(t: Arc<Telemetry>, path: std::path::PathBuf, every: std::time::Duration) {
    std::thread::Builder::new()
        .name("telemetry-dump".to_string())
        .spawn(move || loop {
            std::thread::sleep(every);
            if let Err(e) = append_jsonl(&path, &t.snapshot().to_json()) {
                eprintln!("delta-routerd: telemetry dump: {e}; dump disabled");
                return;
            }
        })
        .expect("spawn telemetry dump thread");
}

fn parse_args() -> Args {
    let mut args = Args {
        bind: "127.0.0.1:7118".to_string(),
        nodes: Vec::new(),
        trace: None,
        preset: "small".to_string(),
        sql_preset: None,
        no_sql: false,
        telemetry_dump: None,
        telemetry_interval: 1,
        front: FrontDoor::default(),
        reactor_threads: 0,
        stall_limit_ms: delta_server::connection::STALL_LIMIT.as_millis() as u64,
        node_timeout_ms: RouterConfig::DEFAULT_NODE_TIMEOUT.as_millis() as u64,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--bind" => args.bind = value(&argv, i),
            "--node" => args.nodes.push(value(&argv, i)),
            "--trace" => args.trace = Some(value(&argv, i)),
            "--preset" => args.preset = value(&argv, i),
            "--sql-preset" => args.sql_preset = Some(value(&argv, i)),
            "--telemetry-dump" => {
                args.telemetry_dump = Some(std::path::PathBuf::from(value(&argv, i)))
            }
            "--telemetry-interval" => {
                args.telemetry_interval = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--front" => {
                args.front = FrontDoor::parse(&value(&argv, i)).unwrap_or_else(|e| {
                    eprintln!("delta-routerd: {e}");
                    usage()
                })
            }
            "--reactor-threads" => {
                args.reactor_threads = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--stall-limit-ms" => {
                args.stall_limit_ms = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--node-timeout-ms" => {
                args.node_timeout_ms = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--no-sql" => {
                args.no_sql = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("delta-routerd: unknown flag {other:?}");
                usage();
            }
        }
        i += 2;
    }
    if args.nodes.is_empty() {
        usage();
    }
    args
}

fn load_catalog(args: &Args) -> ObjectCatalog {
    if let Some(path) = &args.trace {
        let (catalog, _trace) = delta_workload::read_jsonl(std::path::Path::new(path))
            .unwrap_or_else(|e| {
                eprintln!("delta-routerd: cannot read trace {path:?}: {e}");
                exit(1);
            });
        catalog
    } else {
        let cfg = WorkloadConfig::from_preset(&args.preset).unwrap_or_else(|e| {
            eprintln!("delta-routerd: {e}");
            exit(2);
        });
        delta_workload::SyntheticSurvey::generate(&cfg).catalog
    }
}

fn main() {
    let args = parse_args();
    let catalog = load_catalog(&args);

    let frontend_preset = if args.no_sql {
        None
    } else if args.sql_preset.is_some() {
        args.sql_preset.clone()
    } else if args.trace.is_none() {
        Some(args.preset.clone())
    } else {
        None
    };
    let frontend = frontend_preset.map(|name| {
        let cfg = WorkloadConfig::from_preset(&name).unwrap_or_else(|e| {
            eprintln!("delta-routerd: {e}");
            exit(2);
        });
        eprintln!("SQL frontend enabled (preset {name})");
        cfg
    });

    let front = match args.front {
        FrontDoor::Reactor { .. } => FrontDoor::Reactor {
            threads: args.reactor_threads,
        },
        FrontDoor::Threaded => FrontDoor::Threaded,
    };
    let config = RouterConfig {
        bind: args.bind.clone(),
        nodes: args.nodes.clone(),
        frontend,
        front,
        stall_limit: std::time::Duration::from_millis(args.stall_limit_ms.max(1)),
        node_timeout: std::time::Duration::from_millis(args.node_timeout_ms.max(1)),
    };
    let router = Router::start(config, catalog).unwrap_or_else(|e| {
        eprintln!("delta-routerd: cannot start: {e}");
        exit(1);
    });
    println!("delta-routerd listening on {}", router.local_addr());
    for (i, node) in args.nodes.iter().enumerate() {
        println!("  node {i}: {node}");
    }

    // Print the cluster's shape as the nodes report it.
    match DeltaClient::connect(router.local_addr()).and_then(|mut c| c.hello(0)) {
        Ok(info) => println!(
            "  shards={} partitioner={} epoch={}",
            info.cluster_shards, info.partitioner, info.epoch
        ),
        Err(e) => eprintln!("delta-routerd: self-handshake failed: {e}"),
    }

    if let Some(path) = &args.telemetry_dump {
        println!(
            "  telemetry dump: {} every {}s (JSONL)",
            path.display(),
            args.telemetry_interval
        );
        spawn_telemetry_dump(
            router.telemetry_handle(),
            path.clone(),
            std::time::Duration::from_secs(args.telemetry_interval.max(1)),
        );
    }

    // Serve until a client sends a Shutdown frame.
    let final_telemetry = router.telemetry_handle();
    router.join();
    if let Some(path) = &args.telemetry_dump {
        if let Err(e) = append_jsonl(path, &final_telemetry.snapshot().to_json()) {
            eprintln!("delta-routerd: telemetry dump: {e}");
        }
    }
    println!("delta-routerd stopped");
}
