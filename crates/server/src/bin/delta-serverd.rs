//! `delta-serverd` — the sharded Delta cache service daemon.
//!
//! The repository catalog comes either from a trace file header
//! (`--trace`, as written by `tracegen` / `delta_workload::write_jsonl`)
//! or from a synthetic workload preset (`--preset small|paper`).
//!
//! ```text
//! delta-serverd [--bind 127.0.0.1:7117] [--shards 4]
//!               [--partitioner rr|ring]
//!               [--cache-fraction 0.3 | --cache-bytes N]
//!               [--policy vcover|benefit|nocache|replica|gds|gdsf|lru]
//!               [--seed N]
//!               [--trace trace.jsonl | --preset small|paper]
//!               [--sql-preset small|paper | --no-sql]
//!               [--snapshot-dir DIR]
//!               [--node-id I --nodes N [--host-shards a,b,c]]
//!               [--replicas R --peers addr0,addr1,... [--backup-of a,b,c]]
//!               [--front reactor|threaded] [--reactor-threads N]
//!               [--stall-limit-ms MS]
//!               [--telemetry-dump PATH [--telemetry-interval SECS]]
//! ```
//!
//! With `--telemetry-dump`, a background thread appends the node's
//! telemetry snapshot (latency histograms, wire counters) to `PATH` as
//! one JSON object per line, every `--telemetry-interval` seconds
//! (default 1), plus a final line at shutdown. The same data is
//! available over the wire at any time via a `Telemetry` frame.
//!
//! With `--snapshot-dir`, every hosted shard persists its engine
//! snapshot (update logs, cache residency, cost ledger) to
//! `DIR/shard-N.jsonl` on graceful shutdown, and a later start with the
//! same flag resumes warm: caches stay populated and the statistics
//! continue where they left off. Snapshots are validated against the
//! configured shard count and policy; a mismatch refuses startup.
//!
//! With `--node-id I --nodes N` the daemon becomes one node of a routed
//! cluster: `--shards` names the *cluster-wide* shard count, the node
//! hosts the shards in `--host-shards` (default: every shard `s` with
//! `s % N == I`), and a `delta-routerd` fronts the nodes, fanning
//! queries across them and coordinating live resharding. Every node of a
//! cluster must be started with the same shards/partitioner/cache/
//! policy/seed and the same catalog source.
//!
//! With `--replicas R --peers addr0,addr1,...` each hosted shard is
//! additionally replicated to the node's `R` successors in node-id
//! order (`--peers` lists every node's client address, index = node
//! id). Acknowledged writes survive a node's death: the router detects
//! the failure and promotes the most-caught-up backup. `--backup-of`
//! optionally restricts which shards this node will accept as backups.
//!
//! When the catalog comes from a preset, the daemon also builds the SQL
//! frontend from the same preset (schema, sky model, spatial partition),
//! so clients can send raw SQL in `Sql` frames; `--no-sql` opts out.
//! With `--trace`, pass `--sql-preset` naming the preset the trace was
//! generated from (the server refuses a frontend whose partition does
//! not match the served catalog).
//!
//! The daemon prints the bound address, serves until a client sends a
//! `Shutdown` frame (or SIGINT terminates the process), then prints the
//! final per-shard statistics table.

use delta_server::{
    ClusterConfig, FrontDoor, PartitionerKind, PolicyKind, ReplicationConfig, Server, ServerConfig,
    Telemetry,
};
use delta_storage::ObjectCatalog;
use delta_workload::WorkloadConfig;
use std::io::Write;
use std::process::exit;
use std::sync::Arc;

/// Appends one line to `path`, creating the file if needed.
fn append_jsonl(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Periodic JSONL telemetry writer; runs detached until the process
/// exits (a final line is written after the server drains).
fn spawn_telemetry_dump(t: Arc<Telemetry>, path: std::path::PathBuf, every: std::time::Duration) {
    std::thread::Builder::new()
        .name("telemetry-dump".to_string())
        .spawn(move || loop {
            std::thread::sleep(every);
            if let Err(e) = append_jsonl(&path, &t.snapshot().to_json()) {
                eprintln!("delta-serverd: telemetry dump: {e}; dump disabled");
                return;
            }
        })
        .expect("spawn telemetry dump thread");
}

struct Args {
    config: ServerConfig,
    cache_fraction: f64,
    trace: Option<String>,
    preset: String,
    sql_preset: Option<String>,
    no_sql: bool,
    node_id: Option<u16>,
    nodes: Option<u16>,
    host_shards: Option<Vec<u16>>,
    replicas: u16,
    peers: Option<Vec<String>>,
    backup_of: Option<Vec<u16>>,
    telemetry_dump: Option<std::path::PathBuf>,
    telemetry_interval: u64,
    reactor_threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: delta-serverd [--bind ADDR] [--shards N] [--partitioner rr|ring] \
         [--cache-fraction F | --cache-bytes N] \
         [--policy vcover|benefit|nocache|replica|gds|gdsf|lru] [--seed N] \
         [--trace FILE | --preset small|paper] \
         [--sql-preset small|paper | --no-sql] [--snapshot-dir DIR] \
         [--node-id I --nodes N [--host-shards a,b,c]] \
         [--replicas R --peers addr0,addr1,... [--backup-of a,b,c]] \
         [--front reactor|threaded] [--reactor-threads N] [--stall-limit-ms MS] \
         [--chaos-node-latency-ms MS] \
         [--telemetry-dump PATH [--telemetry-interval SECS]]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ServerConfig::default(),
        cache_fraction: 0.3,
        trace: None,
        preset: "small".to_string(),
        sql_preset: None,
        no_sql: false,
        node_id: None,
        nodes: None,
        host_shards: None,
        replicas: 0,
        peers: None,
        backup_of: None,
        telemetry_dump: None,
        telemetry_interval: 1,
        reactor_threads: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--bind" => args.config.bind = value(&argv, i),
            "--shards" => {
                args.config.n_shards = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--partitioner" => {
                args.config.partitioner =
                    PartitionerKind::parse(&value(&argv, i)).unwrap_or_else(|e| {
                        eprintln!("delta-serverd: {e}");
                        exit(2);
                    })
            }
            "--cache-bytes" => {
                args.config.cache_bytes = value(&argv, i).parse().unwrap_or_else(|_| usage());
                args.cache_fraction = 0.0;
            }
            "--cache-fraction" => {
                args.cache_fraction = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--policy" => {
                args.config.policy = PolicyKind::parse(&value(&argv, i)).unwrap_or_else(|e| {
                    eprintln!("delta-serverd: {e}");
                    exit(2);
                })
            }
            "--seed" => args.config.seed = value(&argv, i).parse().unwrap_or_else(|_| usage()),
            "--trace" => args.trace = Some(value(&argv, i)),
            "--preset" => args.preset = value(&argv, i),
            "--sql-preset" => args.sql_preset = Some(value(&argv, i)),
            "--snapshot-dir" => {
                args.config.snapshot_dir = Some(std::path::PathBuf::from(value(&argv, i)))
            }
            "--node-id" => args.node_id = Some(value(&argv, i).parse().unwrap_or_else(|_| usage())),
            "--nodes" => args.nodes = Some(value(&argv, i).parse().unwrap_or_else(|_| usage())),
            "--host-shards" => {
                args.host_shards = Some(
                    value(&argv, i)
                        .split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                )
            }
            "--replicas" => args.replicas = value(&argv, i).parse().unwrap_or_else(|_| usage()),
            "--peers" => {
                args.peers = Some(
                    value(&argv, i)
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--backup-of" => {
                args.backup_of = Some(
                    value(&argv, i)
                        .split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                )
            }
            "--telemetry-dump" => {
                args.telemetry_dump = Some(std::path::PathBuf::from(value(&argv, i)))
            }
            "--telemetry-interval" => {
                args.telemetry_interval = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--front" => {
                args.config.front = FrontDoor::parse(&value(&argv, i)).unwrap_or_else(|e| {
                    eprintln!("delta-serverd: {e}");
                    usage()
                })
            }
            "--reactor-threads" => {
                args.reactor_threads = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--stall-limit-ms" => {
                let ms: u64 = value(&argv, i).parse().unwrap_or_else(|_| usage());
                args.config.stall_limit = std::time::Duration::from_millis(ms.max(1));
            }
            "--chaos-node-latency-ms" => {
                let ms: u64 = value(&argv, i).parse().unwrap_or_else(|_| usage());
                args.config.chaos_link = Some(delta_net::LinkModel {
                    bandwidth_bytes_per_sec: f64::INFINITY,
                    rtt_secs: ms as f64 / 1000.0,
                });
            }
            "--no-sql" => {
                args.no_sql = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("delta-serverd: unknown flag {other:?}");
                usage();
            }
        }
        i += 2;
    }
    if let FrontDoor::Reactor { .. } = args.config.front {
        args.config.front = FrontDoor::Reactor {
            threads: args.reactor_threads,
        };
    }
    args
}

fn load_catalog(args: &Args) -> ObjectCatalog {
    if let Some(path) = &args.trace {
        let (catalog, _trace) = delta_workload::read_jsonl(std::path::Path::new(path))
            .unwrap_or_else(|e| {
                eprintln!("delta-serverd: cannot read trace {path:?}: {e}");
                exit(1);
            });
        eprintln!(
            "catalog from {path}: {} objects, {} total bytes",
            catalog.len(),
            catalog.total_bytes()
        );
        catalog
    } else {
        let cfg = WorkloadConfig::from_preset(&args.preset).unwrap_or_else(|e| {
            eprintln!("delta-serverd: {e}");
            exit(2);
        });
        let survey = delta_workload::SyntheticSurvey::generate(&cfg);
        eprintln!(
            "catalog from preset {}: {} objects, {} total bytes",
            args.preset,
            survey.catalog.len(),
            survey.catalog.total_bytes()
        );
        survey.catalog
    }
}

fn main() {
    let mut args = parse_args();
    let catalog = load_catalog(&args);
    if args.config.cache_bytes == 0 {
        args.config.cache_bytes = (catalog.total_bytes() as f64 * args.cache_fraction) as u64;
    }

    // Cluster role: --node-id and --nodes come (and go) together.
    match (args.node_id, args.nodes) {
        (None, None) => {
            if args.host_shards.is_some() {
                eprintln!("delta-serverd: --host-shards requires --node-id/--nodes");
                exit(2);
            }
        }
        (Some(node), Some(nodes)) => {
            if nodes == 0 {
                eprintln!("delta-serverd: --nodes must be at least 1");
                exit(2);
            }
            let hosted = args.host_shards.clone().unwrap_or_else(|| {
                ClusterConfig::default_hosted(node, nodes, args.config.n_shards)
            });
            args.config.cluster = Some(ClusterConfig {
                node,
                nodes,
                hosted,
            });
        }
        _ => {
            eprintln!("delta-serverd: --node-id and --nodes must be given together");
            exit(2);
        }
    }
    if args.replicas > 0 || args.peers.is_some() || args.backup_of.is_some() {
        args.config.replication = Some(ReplicationConfig {
            replicas: args.replicas,
            peers: args.peers.clone().unwrap_or_default(),
            backup_of: args.backup_of.clone(),
        });
    }

    // SQL frontend: from --sql-preset when given, otherwise from the
    // preset the catalog itself came from (trace-served catalogs have no
    // implied preset, so SQL stays off unless --sql-preset says which).
    let frontend_preset = if args.no_sql {
        None
    } else if args.sql_preset.is_some() {
        args.sql_preset.clone()
    } else if args.trace.is_none() {
        Some(args.preset.clone())
    } else {
        None
    };
    if let Some(name) = frontend_preset {
        let cfg = WorkloadConfig::from_preset(&name).unwrap_or_else(|e| {
            eprintln!("delta-serverd: {e}");
            exit(2);
        });
        args.config.frontend = Some(cfg);
        eprintln!("SQL frontend enabled (preset {name})");
    } else {
        eprintln!("SQL frontend disabled");
    }

    let server = Server::start(args.config.clone(), catalog).unwrap_or_else(|e| {
        eprintln!("delta-serverd: cannot start: {e}");
        exit(1);
    });
    println!("delta-serverd listening on {}", server.local_addr());
    println!(
        "  shards={} partitioner={} policy={} cache={} B seed={}",
        args.config.n_shards,
        args.config.partitioner,
        args.config.policy,
        args.config.cache_bytes,
        args.config.seed
    );
    if let Some(cluster) = &args.config.cluster {
        println!(
            "  cluster node {}/{} hosting shards {:?}",
            cluster.node, cluster.nodes, cluster.hosted
        );
    }
    if let Some(repl) = &args.config.replication {
        println!(
            "  replication: {} backup(s) per shard across peers {:?}",
            repl.replicas, repl.peers
        );
    }
    if let Some(dir) = &args.config.snapshot_dir {
        println!(
            "  warm restart enabled: snapshots in {} (written on shutdown)",
            dir.display()
        );
    }
    if let Some(path) = &args.telemetry_dump {
        println!(
            "  telemetry dump: {} every {}s (JSONL)",
            path.display(),
            args.telemetry_interval
        );
        spawn_telemetry_dump(
            server.telemetry_handle(),
            path.clone(),
            std::time::Duration::from_secs(args.telemetry_interval.max(1)),
        );
    }

    // Serve until a client sends a Shutdown frame.
    let final_telemetry = server.telemetry_handle();
    let stats = server.join();
    if let Some(path) = &args.telemetry_dump {
        // One final line so short runs always leave a complete snapshot.
        if let Err(e) = append_jsonl(path, &final_telemetry.snapshot().to_json()) {
            eprintln!("delta-serverd: telemetry dump: {e}");
        }
    }
    println!("\nfinal per-shard statistics:");
    print!("{}", stats.render_table());
    let report = stats.to_sim_report();
    println!("\naggregate: {report}");
}
