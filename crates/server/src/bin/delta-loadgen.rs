//! `delta-loadgen` — replays a Delta workload trace against a running
//! `delta-serverd` over TCP.
//!
//! ```text
//! delta-loadgen --addr 127.0.0.1:7117
//!               [--trace trace.jsonl | --preset small|paper]
//!               [--events N] [--limit N] [--clients C]
//!               [--batch N] [--pipeline W]
//!               [--connections N [--expect-reactor]]
//!               [--bench-json PATH] [--telemetry-json PATH] [--shutdown]
//! ```
//!
//! `--connections N` switches to the many-connection soak: N pipelined
//! connections are all opened before the clock starts, the trace is
//! dealt round-robin across them, and `min(N, 32)` driver threads keep
//! the whole population in flight at once. The run fails if the
//! server's `conn.stall_drops` counter advances (a well-behaved client
//! was reaped by the stall deadline), and — with `--expect-reactor` —
//! if the `reactor.*` counters are dead. With `--bench-json` the
//! aggregate events/s is written as a `c1m` mode entry (the repo
//! convention is `results/BENCH_c1m.json`), which `bench_gate` fences
//! like any other mode. Raise `ulimit -n` past N first.
//!
//! `--events N` regenerates the preset workload with N/2 queries and
//! N/2 updates over the preset's catalog (unlike `--limit`, which
//! truncates the preset's default-sized trace) — `--preset small
//! --events 50000` reproduces the 50k-event trace the `tri_modal`
//! differential suite pins.
//!
//! `--bench-json PATH` switches to benchmark mode: after one unmeasured
//! warm-up replay (so every mode runs against the same warmed caches and
//! repository state, and the ratios compare protocol overhead rather
//! than cache warmth), the trace is replayed three measured times —
//! lockstep, batched and pipelined — and a JSON document with the
//! events/s per mode, the client-observed round-trip latency quantiles
//! per mode (`latency_ns`: p50/p90/p99/p999, per op in lockstep and per
//! frame otherwise), the server's shard count and the final aggregate
//! metrics (reflecting all four replays) is written to PATH (the repo
//! convention is `results/BENCH_server.json`), so successive PRs can
//! track protocol throughput *and* tail-latency regressions from CI
//! artifacts.
//!
//! `--telemetry-json PATH` scrapes the server's own telemetry (latency
//! histograms, wire counters; the cluster-wide merge when `--addr`
//! points at a router) after the replay, prints the table, fails if the
//! core wire counters are still zero, and writes the snapshot to PATH —
//! the CI smoke bench uses this as its end-to-end observability check.
//!
//! With `--clients C`, the trace is dealt round-robin over C connections
//! driven by C threads (updates and queries stay globally ordered per
//! connection, not across them — useful for throughput smoke tests; use
//! the default single client for simulator-equivalent replays).
//!
//! `--batch N` packs up to N consecutive events into one `Batch` frame
//! (one round-trip, one channel send per touched shard), and
//! `--pipeline W` keeps up to W frames in flight per connection over
//! tagged frames. Both default to 1, which is the PR-1 lockstep replay.
//! Per-shard event order is preserved in every mode, so per-shard
//! ledgers still match the offline `shard_trace` twin; only cross-shard
//! interleaving varies.
//!
//! After the replay it fetches the statistics snapshot, prints the
//! per-shard table, and verifies that the per-shard ledgers sum to the
//! aggregate totals.

use delta_server::{
    BatchItem, BatchReply, DeltaClient, Histogram, NodeInfo, PipelinedClient, Request, Response,
};
use delta_workload::{Event, Trace, WorkloadConfig};
use std::collections::HashMap;
use std::process::exit;
use std::time::Instant;

struct Args {
    addr: String,
    trace: Option<String>,
    preset: String,
    events: Option<usize>,
    limit: usize,
    clients: usize,
    batch: usize,
    pipeline: usize,
    bench_json: Option<String>,
    telemetry_json: Option<String>,
    shutdown: bool,
    reshard_at: Option<usize>,
    reshard: Option<(u16, u16)>,
    connections: usize,
    expect_reactor: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: delta-loadgen --addr ADDR [--trace FILE | --preset small|paper] \
         [--events N] [--limit N] [--clients C] [--batch N] [--pipeline W] \
         [--connections N [--expect-reactor]] \
         [--bench-json PATH] [--telemetry-json PATH] \
         [--reshard-at N --reshard SHARD:NODE] [--shutdown]"
    );
    exit(2);
}

/// `--telemetry-json`: scrape the peer's telemetry over the wire (the
/// cluster-wide merge when the peer is a router), print the table,
/// refuse a snapshot whose core wire counters are still zero (a scrape
/// after a replay must show traffic — zeros mean the instrumentation
/// came unthreaded), and write the snapshot JSON to `path`.
fn scrape_telemetry(addr: &str, path: &str) {
    let snap = DeltaClient::connect(addr)
        .and_then(|mut c| c.telemetry())
        .unwrap_or_else(|e| {
            eprintln!("delta-loadgen: telemetry scrape failed: {e}");
            exit(1);
        });
    print!("{}", snap.render_table());
    for name in ["conn.bytes_in", "conn.bytes_out", "conn.frames_in"] {
        if snap.counter(name) == 0 {
            eprintln!("delta-loadgen: telemetry counter {name} is zero after a replay");
            exit(1);
        }
    }
    if !snap.histograms.iter().any(|(_, h)| !h.is_empty()) {
        eprintln!("delta-loadgen: every telemetry histogram is empty after a replay");
        exit(1);
    }
    let mut body = snap.to_json();
    body.push('\n');
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("delta-loadgen: cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote {path}");
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        trace: None,
        preset: "small".to_string(),
        events: None,
        limit: usize::MAX,
        clients: 1,
        batch: 1,
        pipeline: 1,
        bench_json: None,
        telemetry_json: None,
        shutdown: false,
        reshard_at: None,
        reshard: None,
        connections: 0,
        expect_reactor: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&argv, i),
            "--trace" => args.trace = Some(value(&argv, i)),
            "--preset" => args.preset = value(&argv, i),
            "--events" => args.events = Some(value(&argv, i).parse().unwrap_or_else(|_| usage())),
            "--limit" => args.limit = value(&argv, i).parse().unwrap_or_else(|_| usage()),
            "--clients" => args.clients = value(&argv, i).parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = value(&argv, i).parse().unwrap_or_else(|_| usage()),
            "--pipeline" => args.pipeline = value(&argv, i).parse().unwrap_or_else(|_| usage()),
            "--bench-json" => args.bench_json = Some(value(&argv, i)),
            "--telemetry-json" => args.telemetry_json = Some(value(&argv, i)),
            "--reshard-at" => {
                args.reshard_at = Some(value(&argv, i).parse().unwrap_or_else(|_| usage()))
            }
            "--reshard" => {
                let v = value(&argv, i);
                let (shard, node) = v.split_once(':').unwrap_or_else(|| usage());
                args.reshard = Some((
                    shard.parse().unwrap_or_else(|_| usage()),
                    node.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--connections" => {
                args.connections = value(&argv, i).parse().unwrap_or_else(|_| usage())
            }
            "--expect-reactor" => {
                args.expect_reactor = true;
                i += 1;
                continue;
            }
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("delta-loadgen: unknown flag {other:?}");
                usage();
            }
        }
        i += 2;
    }
    if args.addr.is_empty() {
        usage();
    }
    if args.clients == 0 {
        args.clients = 1;
    }
    if args.reshard_at.is_some() != args.reshard.is_some() {
        eprintln!("delta-loadgen: --reshard-at and --reshard must be given together");
        exit(2);
    }
    if args.reshard.is_some() && (args.clients > 1 || args.bench_json.is_some()) {
        eprintln!("delta-loadgen: --reshard needs a single client and no --bench-json");
        exit(2);
    }
    args.batch = args.batch.max(1);
    args.pipeline = args.pipeline.max(1);
    args
}

/// Handshakes with the target to learn what it is (standalone server,
/// cluster node or router) — recorded in the bench metadata so BENCH_*
/// trajectories stay comparable across configurations.
fn fetch_info(addr: &str) -> Option<NodeInfo> {
    DeltaClient::connect(addr).and_then(|mut c| c.hello(0)).ok()
}

fn load_trace(args: &Args) -> Trace {
    let trace = if let Some(path) = &args.trace {
        let (_catalog, trace) = delta_workload::read_jsonl(std::path::Path::new(path))
            .unwrap_or_else(|e| {
                eprintln!("delta-loadgen: cannot read trace {path:?}: {e}");
                exit(1);
            });
        trace
    } else {
        let mut cfg = WorkloadConfig::from_preset(&args.preset).unwrap_or_else(|e| {
            eprintln!("delta-loadgen: {e}");
            exit(2);
        });
        if let Some(events) = args.events {
            // Half queries, half updates over the preset's (unchanged)
            // catalog — the shape the tri_modal suite pins at 50k.
            cfg.n_queries = events / 2;
            cfg.n_updates = events - events / 2;
        }
        delta_workload::SyntheticSurvey::generate(&cfg).trace
    };
    trace.truncated(args.limit)
}

/// Replay totals: queries sent, updates sent, shard sub-queries fanned.
type Totals = (u64, u64, u64);

/// `lat`, when given, collects client-observed round-trip latencies:
/// per *op* in lockstep mode, per *frame* in batched and pipelined
/// modes (a frame is what the client actually waits on there).
fn replay(
    addr: &str,
    events: &[Event],
    batch: usize,
    pipeline: usize,
    lat: Option<&Histogram>,
) -> std::io::Result<Totals> {
    if batch == 1 && pipeline == 1 {
        replay_lockstep(addr, events, lat)
    } else if pipeline == 1 {
        replay_batched(addr, events, batch, lat)
    } else {
        replay_pipelined(addr, events, batch, pipeline, lat)
    }
}

fn replay_lockstep(
    addr: &str,
    events: &[Event],
    lat: Option<&Histogram>,
) -> std::io::Result<Totals> {
    let mut client = DeltaClient::connect(addr)?;
    let (mut queries, mut updates, mut sub_queries) = (0u64, 0u64, 0u64);
    for event in events {
        let t0 = Instant::now();
        match event {
            Event::Query(q) => {
                let reply = client.query(q)?;
                queries += 1;
                sub_queries += reply.shards_touched as u64;
            }
            Event::Update(u) => {
                client.update(u)?;
                updates += 1;
            }
        }
        if let Some(h) = lat {
            h.record_duration(t0.elapsed());
        }
    }
    Ok((queries, updates, sub_queries))
}

fn to_items(events: &[Event]) -> Vec<BatchItem> {
    events
        .iter()
        .map(|e| match e {
            Event::Query(q) => BatchItem::Query(q.clone()),
            Event::Update(u) => BatchItem::Update(*u),
        })
        .collect()
}

fn tally_batch(replies: &[BatchReply], totals: &mut Totals) -> std::io::Result<()> {
    for reply in replies {
        match reply {
            BatchReply::Query { shards_touched, .. } => {
                totals.0 += 1;
                totals.2 += *shards_touched as u64;
            }
            BatchReply::Update { .. } => totals.1 += 1,
            BatchReply::Error { code, message } => {
                return Err(std::io::Error::other(format!(
                    "batch item failed: server error {code}: {message}"
                )));
            }
        }
    }
    Ok(())
}

fn tally_response(response: &Response, totals: &mut Totals) -> std::io::Result<()> {
    match response {
        Response::QueryOk { shards_touched, .. } => {
            totals.0 += 1;
            totals.2 += *shards_touched as u64;
        }
        Response::UpdateOk { .. } => totals.1 += 1,
        Response::BatchOk(replies) => tally_batch(replies, totals)?,
        Response::Error { code, message } => {
            return Err(std::io::Error::other(format!(
                "server error {code}: {message}"
            )));
        }
        other => {
            return Err(std::io::Error::other(format!(
                "unexpected response {other:?}"
            )));
        }
    }
    Ok(())
}

fn replay_batched(
    addr: &str,
    events: &[Event],
    batch: usize,
    lat: Option<&Histogram>,
) -> std::io::Result<Totals> {
    let mut client = DeltaClient::connect(addr)?;
    let mut totals = (0u64, 0u64, 0u64);
    for chunk in events.chunks(batch) {
        let t0 = Instant::now();
        let replies = client.batch(&to_items(chunk))?;
        if let Some(h) = lat {
            h.record_duration(t0.elapsed());
        }
        tally_batch(&replies, &mut totals)?;
    }
    Ok(totals)
}

fn replay_pipelined(
    addr: &str,
    events: &[Event],
    batch: usize,
    window: usize,
    lat: Option<&Histogram>,
) -> std::io::Result<Totals> {
    let mut pipe = DeltaClient::connect(addr)?.pipelined(window);
    let mut totals = (0u64, 0u64, 0u64);
    // Frame latency is submit → matched reply, tracked per correlation
    // id (replies can arrive in any order in principle). A submit that
    // blocks for a window slot counts toward the frames it reaps, not
    // the frame being submitted.
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let reap = |pairs: Vec<(u64, Response)>,
                totals: &mut Totals,
                in_flight: &mut HashMap<u64, Instant>|
     -> std::io::Result<()> {
        for (corr, response) in pairs {
            if let (Some(h), Some(t0)) = (lat, in_flight.remove(&corr)) {
                h.record_duration(t0.elapsed());
            }
            tally_response(&response, totals)?;
        }
        Ok(())
    };
    for chunk in events.chunks(batch) {
        let request = if batch == 1 {
            match &chunk[0] {
                Event::Query(q) => Request::Query(q.clone()),
                Event::Update(u) => Request::Update(*u),
            }
        } else {
            Request::Batch(to_items(chunk))
        };
        let corr = pipe.submit(&request)?;
        if lat.is_some() {
            in_flight.insert(corr, Instant::now());
        }
        reap(pipe.completed(), &mut totals, &mut in_flight)?;
    }
    let drained = pipe.drain()?;
    reap(drained, &mut totals, &mut in_flight)?;
    Ok(totals)
}

/// Benchmark mode: replay the trace in each protocol shape, measure
/// events/s, and write the machine-readable results document.
fn run_bench(args: &Args, trace: &Trace, path: &str) {
    use serde_json::{ToJson, Value};
    let batch = if args.batch > 1 { args.batch } else { 64 };
    let window = if args.pipeline > 1 { args.pipeline } else { 8 };
    // One unmeasured pass first: the modes must all run against the same
    // warmed caches, or the first-measured mode pays the warm-up bytes
    // and the per-mode ratios conflate protocol cost with cache state.
    eprintln!("bench    warmup (unmeasured replay to steady state)");
    replay(&args.addr, &trace.events, batch, 1, None).unwrap_or_else(|e| {
        eprintln!("delta-loadgen: bench warmup failed: {e}");
        exit(1);
    });
    let modes = [
        ("lockstep", 1usize, 1usize),
        ("batch", batch, 1),
        ("pipeline", batch, window),
    ];
    let mut mode_docs = Vec::new();
    let mut rates: Vec<(&str, f64)> = Vec::new();
    for (name, b, w) in modes {
        // Client-observed round-trip latency: per op in lockstep, per
        // frame otherwise — the thing a caller actually waits on.
        let lat = Histogram::new();
        let start = Instant::now();
        let (queries, updates, _) = replay(&args.addr, &trace.events, b, w, Some(&lat))
            .unwrap_or_else(|e| {
                eprintln!("delta-loadgen: bench mode {name} failed: {e}");
                exit(1);
            });
        let elapsed = start.elapsed().as_secs_f64();
        let events = queries + updates;
        let events_per_sec = events as f64 / elapsed;
        let lat = lat.snapshot();
        eprintln!(
            "bench {name:>9} (batch={b}, pipeline={w}): {events} events in {elapsed:.2}s \
             ({events_per_sec:.0} events/s); rtt p50={:.1}µs p99={:.1}µs p999={:.1}µs",
            lat.p50() as f64 / 1e3,
            lat.p99() as f64 / 1e3,
            lat.p999() as f64 / 1e3,
        );
        rates.push((name, events_per_sec));
        mode_docs.push(Value::Object(vec![
            ("name".into(), name.to_string().to_json()),
            ("batch".into(), b.to_json()),
            ("pipeline".into(), w.to_json()),
            ("events".into(), events.to_json()),
            ("elapsed_s".into(), elapsed.to_json()),
            ("events_per_sec".into(), events_per_sec.to_json()),
            (
                "latency_ns".into(),
                Value::Object(vec![
                    ("count".into(), lat.count.to_json()),
                    ("mean".into(), lat.mean().to_json()),
                    ("p50".into(), lat.p50().to_json()),
                    ("p90".into(), lat.p90().to_json()),
                    ("p99".into(), lat.p99().to_json()),
                    ("p999".into(), lat.p999().to_json()),
                    ("max".into(), lat.max.to_json()),
                ]),
            ),
        ]));
    }

    // The window coalescing exists precisely so that pipelining is never
    // slower than plain batching; assert it so a regression fails the
    // smoke bench instead of silently landing in the JSON artifact. The
    // hard check needs a trace long enough to measure: on tiny traces
    // the modes run in milliseconds and the later-measured mode pays the
    // server-state drift of every earlier replay (each pass grows the
    // policies' decision graphs), which swamps the protocol difference.
    const BENCH_CHECK_MIN_EVENTS: usize = 20_000;
    let rate = |want: &str| {
        rates
            .iter()
            .find(|(n, _)| *n == want)
            .map(|&(_, r)| r)
            .unwrap_or(0.0)
    };
    let (batch_rate, pipeline_rate) = (rate("batch"), rate("pipeline"));
    if pipeline_rate >= batch_rate {
        eprintln!(
            "bench check: pipeline ({pipeline_rate:.0} ev/s) >= batch ({batch_rate:.0} ev/s) ✓"
        );
    } else if trace.len() < BENCH_CHECK_MIN_EVENTS {
        eprintln!(
            "bench check: pipeline ({pipeline_rate:.0} ev/s) < batch ({batch_rate:.0} ev/s) \
             on a {}-event trace — too short to be conclusive (< {BENCH_CHECK_MIN_EVENTS}); \
             not failing. Re-run with --events 50000.",
            trace.len()
        );
    } else {
        eprintln!(
            "delta-loadgen: bench check FAILED: pipeline ({pipeline_rate:.0} ev/s) < batch \
             ({batch_rate:.0} ev/s) — per-frame flushing has regressed the windowed path"
        );
        exit(1);
    }

    let stats = DeltaClient::connect(&args.addr)
        .and_then(|mut c| c.stats())
        .unwrap_or_else(|e| {
            eprintln!("delta-loadgen: stats failed: {e}");
            exit(1);
        });
    print!("{}", stats.render_table());
    let metrics = stats.total_metrics();
    // Run metadata: which partitioner/policy/shard/node shape produced
    // these numbers, so the BENCH_* trajectory stays comparable across
    // configurations.
    let info = fetch_info(&args.addr);
    let doc = Value::Object(vec![
        ("trace_events".into(), trace.len().to_json()),
        ("shards".into(), stats.shards.len().to_json()),
        (
            "policy".into(),
            stats
                .shards
                .first()
                .map(|s| s.policy.clone())
                .unwrap_or_default()
                .to_json(),
        ),
        (
            "partitioner".into(),
            info.as_ref()
                .map(|i| i.partitioner.clone())
                .unwrap_or_default()
                .to_json(),
        ),
        (
            "nodes".into(),
            info.as_ref().map(|i| i.nodes as u64).unwrap_or(1).to_json(),
        ),
        (
            "epoch".into(),
            info.as_ref().map(|i| i.epoch).unwrap_or(0).to_json(),
        ),
        ("modes".into(), Value::Array(mode_docs)),
        (
            "final_ledger_bytes".into(),
            metrics.ledger.total().bytes().to_json(),
        ),
        ("final_metrics".into(), metrics.to_json()),
    ]);
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("delta-loadgen: cannot create {}: {e}", parent.display());
                exit(1);
            });
        }
    }
    let mut body = doc.to_json_string_pretty();
    body.push('\n');
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("delta-loadgen: cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote {path}");
}

/// `--connections N`: the many-connection soak. Opens N pipelined
/// connections *before* the clock starts, deals the trace round-robin
/// across all of them, and drives every connection concurrently from
/// `min(N, 32)` worker threads — each thread interleaves submissions
/// across its share so the whole population stays in flight at once,
/// which is the shape the reactor front door exists to serve (a
/// thread-per-connection server needs N threads for this; the reactor
/// holds them all on a handful).
///
/// After the replay the server's telemetry is scraped and the run fails
/// if `conn.stall_drops` advanced — these clients are well-behaved, so
/// any reap here means the stall deadline fired on a live connection.
/// With `--expect-reactor` the run also fails if the `reactor.*`
/// counters are dead (the server was not actually running the reactor
/// front door).
fn run_connections(args: &Args, trace: &Trace) {
    use serde_json::{ToJson, Value};
    let n = args.connections;
    let window = if args.pipeline > 1 { args.pipeline } else { 8 };
    let threads = n.clamp(1, 32);

    // Baseline the stall counter so the no-reap check measures only
    // this run, even against a server that has seen other clients.
    let stalls_before = DeltaClient::connect(&args.addr)
        .and_then(|mut c| c.telemetry())
        .map(|s| s.counter("conn.stall_drops"))
        .unwrap_or(0);

    eprintln!("opening {n} pipelined connections (window {window}, {threads} driver threads)");
    let mut pipes = Vec::with_capacity(n);
    for i in 0..n {
        match DeltaClient::connect(&args.addr) {
            Ok(c) => pipes.push(c.pipelined(window)),
            Err(e) => {
                eprintln!(
                    "delta-loadgen: opening connection {i} of {n} failed: {e} \
                     (raise `ulimit -n` past {n} on both sides)"
                );
                exit(1);
            }
        }
    }

    // Deal the trace round-robin: connection `c` replays events
    // c, c+N, c+2N, … so per-connection order follows trace order.
    struct Lane {
        pipe: PipelinedClient,
        events: Vec<Event>,
        next: usize,
        in_flight: HashMap<u64, Instant>,
    }
    let mut lanes: Vec<Lane> = pipes
        .into_iter()
        .enumerate()
        .map(|(c, pipe)| Lane {
            pipe,
            events: trace.events.iter().skip(c).step_by(n).cloned().collect(),
            next: 0,
            in_flight: HashMap::new(),
        })
        .collect();

    // One pass over a thread's lanes submits one frame per live lane
    // and reaps whatever completed, so every connection stays in
    // flight; drain settles the tails.
    fn drive(lanes: &mut [Lane], lat: &Histogram) -> std::io::Result<Totals> {
        let mut totals = (0u64, 0u64, 0u64);
        let reap = |lane: &mut Lane,
                    pairs: Vec<(u64, Response)>,
                    totals: &mut Totals|
         -> std::io::Result<()> {
            for (corr, response) in pairs {
                if let Some(t0) = lane.in_flight.remove(&corr) {
                    lat.record_duration(t0.elapsed());
                }
                tally_response(&response, totals)?;
            }
            Ok(())
        };
        let mut live = lanes.len();
        while live > 0 {
            live = 0;
            for lane in lanes.iter_mut() {
                if lane.next >= lane.events.len() {
                    continue;
                }
                let request = match &lane.events[lane.next] {
                    Event::Query(q) => Request::Query(q.clone()),
                    Event::Update(u) => Request::Update(*u),
                };
                lane.next += 1;
                let corr = lane.pipe.submit(&request)?;
                lane.in_flight.insert(corr, Instant::now());
                let pairs = lane.pipe.completed();
                reap(lane, pairs, &mut totals)?;
                if lane.next < lane.events.len() {
                    live += 1;
                }
            }
        }
        for lane in lanes.iter_mut() {
            let pairs = lane.pipe.drain()?;
            reap(lane, pairs, &mut totals)?;
        }
        Ok(totals)
    }

    let lat = Histogram::new();
    let per = n.div_ceil(threads);
    let start = Instant::now();
    let (queries, updates, _) = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .chunks_mut(per)
            .map(|chunk| scope.spawn(|| drive(chunk, &lat)))
            .collect();
        let mut totals = (0u64, 0u64, 0u64);
        for h in handles {
            match h.join().expect("connection driver thread panicked") {
                Ok((q, u, sq)) => {
                    totals.0 += q;
                    totals.1 += u;
                    totals.2 += sq;
                }
                Err(e) => {
                    eprintln!("delta-loadgen: connections replay failed: {e}");
                    exit(1);
                }
            }
        }
        totals
    });
    let elapsed = start.elapsed().as_secs_f64();
    let events = queries + updates;
    let events_per_sec = events as f64 / elapsed;
    let lat = lat.snapshot();
    eprintln!(
        "c1m: {events} events over {n} connections in {elapsed:.2}s \
         ({events_per_sec:.0} events/s); rtt p50={:.1}µs p99={:.1}µs p999={:.1}µs",
        lat.p50() as f64 / 1e3,
        lat.p99() as f64 / 1e3,
        lat.p999() as f64 / 1e3,
    );

    // No well-behaved client may be reaped: the stall deadline exists
    // for half-open peers, and N concurrent *live* connections must
    // never trip it.
    let snap = DeltaClient::connect(&args.addr)
        .and_then(|mut c| c.telemetry())
        .unwrap_or_else(|e| {
            eprintln!("delta-loadgen: telemetry scrape failed: {e}");
            exit(1);
        });
    let stalls = snap.counter("conn.stall_drops");
    if stalls > stalls_before {
        eprintln!(
            "delta-loadgen: conn.stall_drops advanced {stalls_before} -> {stalls} during a \
             well-behaved {n}-connection replay — the stall deadline reaped a live client"
        );
        exit(1);
    }
    eprintln!("c1m check: conn.stall_drops stayed at {stalls} over {n} live connections ✓");
    if args.expect_reactor {
        for name in ["reactor.accepted", "reactor.wakeups", "reactor.closed"] {
            if snap.counter(name) == 0 {
                eprintln!(
                    "delta-loadgen: --expect-reactor but telemetry counter {name} is zero — \
                     the server is not running the reactor front door"
                );
                exit(1);
            }
        }
        eprintln!("c1m check: reactor.* counters alive ✓");
    }

    if let Some(path) = &args.bench_json {
        let doc = Value::Object(vec![
            ("trace_events".into(), trace.len().to_json()),
            ("connections".into(), n.to_json()),
            ("driver_threads".into(), threads.to_json()),
            ("window".into(), window.to_json()),
            (
                "modes".into(),
                Value::Array(vec![Value::Object(vec![
                    ("name".into(), "c1m".to_string().to_json()),
                    ("batch".into(), 1u64.to_json()),
                    ("pipeline".into(), window.to_json()),
                    ("events".into(), events.to_json()),
                    ("elapsed_s".into(), elapsed.to_json()),
                    ("events_per_sec".into(), events_per_sec.to_json()),
                    (
                        "latency_ns".into(),
                        Value::Object(vec![
                            ("count".into(), lat.count.to_json()),
                            ("mean".into(), lat.mean().to_json()),
                            ("p50".into(), lat.p50().to_json()),
                            ("p90".into(), lat.p90().to_json()),
                            ("p99".into(), lat.p99().to_json()),
                            ("p999".into(), lat.p999().to_json()),
                            ("max".into(), lat.max.to_json()),
                        ]),
                    ),
                ])]),
            ),
        ]);
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                    eprintln!("delta-loadgen: cannot create {}: {e}", parent.display());
                    exit(1);
                });
            }
        }
        let mut body = doc.to_json_string_pretty();
        body.push('\n');
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("delta-loadgen: cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    let trace = load_trace(&args);
    if args.connections > 0 {
        run_connections(&args, &trace);
        if let Some(tpath) = &args.telemetry_json {
            scrape_telemetry(&args.addr, tpath);
        }
        if args.shutdown {
            let mut client = DeltaClient::connect(&args.addr).unwrap_or_else(|e| {
                eprintln!("delta-loadgen: cannot reconnect for shutdown: {e}");
                exit(1);
            });
            client.shutdown().unwrap_or_else(|e| {
                eprintln!("delta-loadgen: shutdown failed: {e}");
                exit(1);
            });
            eprintln!("server shutdown requested");
        }
        return;
    }
    if let Some(path) = args.bench_json.clone() {
        run_bench(&args, &trace, &path);
        if let Some(tpath) = &args.telemetry_json {
            scrape_telemetry(&args.addr, tpath);
        }
        if args.shutdown {
            let mut client = DeltaClient::connect(&args.addr).unwrap_or_else(|e| {
                eprintln!("delta-loadgen: cannot reconnect for shutdown: {e}");
                exit(1);
            });
            client.shutdown().unwrap_or_else(|e| {
                eprintln!("delta-loadgen: shutdown failed: {e}");
                exit(1);
            });
            eprintln!("server shutdown requested");
        }
        return;
    }
    eprintln!(
        "replaying {} events ({} queries, {} updates) against {} over {} client(s), batch={}, pipeline={}",
        trace.len(),
        trace.n_queries(),
        trace.n_updates(),
        args.addr,
        args.clients,
        args.batch,
        args.pipeline,
    );

    // Baseline snapshot, so the post-replay consistency check measures
    // exactly what this replay contributed even on a warm server.
    let baseline = DeltaClient::connect(&args.addr)
        .and_then(|mut c| c.stats())
        .unwrap_or_else(|e| {
            eprintln!("delta-loadgen: cannot fetch baseline stats: {e}");
            exit(1);
        });

    let start = Instant::now();
    let (queries, updates, sub_queries) = if args.clients == 1 {
        let must = |r: std::io::Result<Totals>| -> Totals {
            r.unwrap_or_else(|e| {
                eprintln!("delta-loadgen: replay failed: {e}");
                exit(1);
            })
        };
        match (args.reshard_at, args.reshard) {
            // Mid-trace live reshard: replay a prefix, ask the router to
            // move the shard, replay the tail — the smoke-level twin of
            // the cluster differential test.
            (Some(at), Some((shard, node))) => {
                let at = at.min(trace.len());
                let head = must(replay(
                    &args.addr,
                    &trace.events[..at],
                    args.batch,
                    args.pipeline,
                    None,
                ));
                let epoch = DeltaClient::connect(&args.addr)
                    .and_then(|mut c| c.reshard(shard, node))
                    .unwrap_or_else(|e| {
                        eprintln!("delta-loadgen: reshard failed: {e}");
                        exit(1);
                    });
                eprintln!(
                    "resharded shard {shard} -> node {node} after event {at} (epoch {epoch})"
                );
                let tail = must(replay(
                    &args.addr,
                    &trace.events[at..],
                    args.batch,
                    args.pipeline,
                    None,
                ));
                (head.0 + tail.0, head.1 + tail.1, head.2 + tail.2)
            }
            _ => must(replay(
                &args.addr,
                &trace.events,
                args.batch,
                args.pipeline,
                None,
            )),
        }
    } else {
        // Deal events round-robin across C lockstep connections.
        let lanes: Vec<Vec<Event>> = (0..args.clients)
            .map(|lane| {
                trace
                    .events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % args.clients == lane)
                    .map(|(_, e)| e.clone())
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .map(|lane| {
                    scope.spawn(|| replay(&args.addr, lane, args.batch, args.pipeline, None))
                })
                .collect();
            let mut totals = (0u64, 0u64, 0u64);
            for h in handles {
                match h.join().expect("replay thread panicked") {
                    Ok((q, u, sq)) => {
                        totals.0 += q;
                        totals.1 += u;
                        totals.2 += sq;
                    }
                    Err(e) => {
                        eprintln!("delta-loadgen: replay failed: {e}");
                        exit(1);
                    }
                }
            }
            totals
        })
    };
    let elapsed = start.elapsed();
    let rate = (queries + updates) as f64 / elapsed.as_secs_f64();
    eprintln!(
        "replayed {queries} queries + {updates} updates in {:.2}s ({rate:.0} events/s)",
        elapsed.as_secs_f64()
    );

    let mut client = DeltaClient::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("delta-loadgen: cannot reconnect for stats: {e}");
        exit(1);
    });
    let stats = client.stats().unwrap_or_else(|e| {
        eprintln!("delta-loadgen: stats failed: {e}");
        exit(1);
    });

    print!("{}", stats.render_table());
    let global = stats.total_ledger();
    println!("\naggregate: {}", stats.to_sim_report());

    // Cross-check the server's accounting against what this client
    // actually sent: every update is one shard event, and every query
    // fans into the `shards_touched` sub-queries its reply declared.
    let delta_events = stats.total_events() - baseline.total_events();
    let delta_bytes = global.total().bytes() - baseline.total_ledger().total().bytes();
    let expected = updates + sub_queries;
    assert!(delta_bytes > 0, "replay moved no bytes — empty trace?");
    assert!(
        delta_events >= expected,
        "server accounted {delta_events} shard events but this client alone sent {expected}"
    );
    if delta_events == expected {
        println!(
            "consistency: server accounted {delta_events} shard events == {updates} updates + {sub_queries} sub-queries sent; {delta_bytes} bytes moved over {} shards ✓",
            stats.shards.len()
        );
    } else {
        println!(
            "consistency: server accounted {delta_events} shard events >= our {expected} (other clients active); {delta_bytes} bytes moved over {} shards ✓",
            stats.shards.len()
        );
    }

    if let Some(tpath) = &args.telemetry_json {
        scrape_telemetry(&args.addr, tpath);
    }

    if args.shutdown {
        client.shutdown().unwrap_or_else(|e| {
            eprintln!("delta-loadgen: shutdown failed: {e}");
            exit(1);
        });
        eprintln!("server shutdown requested");
    }
}
