//! The router tier: one process fronting multiple `delta-serverd`
//! cluster nodes.
//!
//! `delta-routerd` speaks the same client-facing protocol as a
//! standalone server — `Query`, `Update`, `Sql`, `Batch`, `Tagged`
//! pipelining, `Stats`, `Shutdown` — but instead of executing events it
//! runs the cluster [`Partitioner`] itself, splits every event into
//! per-shard sub-events exactly like the in-process frontend does, and
//! groups them **per owning node** into pre-split [`Request::NodeOps`]
//! frames. Per-shard sub-event order equals client order, so per-shard
//! ledgers stay byte-identical to the offline
//! [`crate::partition::shard_trace`] twin — the property the cluster
//! differential test pins end-to-end.
//!
//! ## Routing epochs and live resharding
//!
//! The router owns the shard→node map, versioned by a **routing epoch**.
//! An admin [`Request::Reshard`] moves one shard between nodes while the
//! cluster stays up:
//!
//! 1. take the routing write lock (quiescing every client handler, whose
//!    requests hold the read lock end-to-end),
//! 2. `DetachShard` at the old owner — the node write-locks the shard
//!    slot (waiting out in-flight ops), snapshots the engine and stops
//!    hosting it,
//! 3. `AttachShard` at the new owner — the node validates the snapshot
//!    against its own sub-catalog/policy/budget and restores the engine,
//! 4. `SetEpoch` everywhere, bump the local map, reply `ReshardOk`.
//!
//! Any connection still declaring the old epoch — another router
//! replica, a direct-to-node client with a cached map — gets a typed
//! [`Response::WrongEpoch`] on its next event request and *nothing
//! executes*; the router's own node links transparently re-handshake and
//! retry, which doubles as a liveness proof of the redirect path.

use crate::client::DeltaClient;
use crate::config::FrontDoor;
use crate::connection::{
    buffered_frame_len, prepare_read_buffer, serve_frames, FrameHandler, LoopBackend,
    WireTelemetry, POLL, READ_BUF,
};
use crate::front::{BackendFactory, FrameFactory, ReactorFront, ReactorTelemetry, BACKEND_TOKEN};
use crate::mux::{
    shape_response, single_reply, wrap_corr, Completion, Correlator, FanoutTable, MergeState,
    Purpose, ReplyKind, SubEntry,
};
use crate::partition::{Partitioner, PartitionerKind};
use crate::protocol::{
    append_frame_with, encode_tagged_request_into, error_code, BatchItem, BatchReply, NodeInfo,
    NodeOp, NodeRole, Request, Response, ShardStats, SqlStage, StatsSnapshot,
};
use crate::replication::jittered;
use delta_query::{QueryCompiler, QueryError, Schema};
use delta_reactor::{Interest, Poller, TimerWheel};
use delta_storage::ObjectCatalog;
use delta_telemetry::{Counter, Gauge, Histogram, Telemetry, TelemetrySnapshot};
use delta_workload::WorkloadConfig;
use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Everything `delta-routerd` needs besides the object catalog.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:7118` (port 0 picks one).
    pub bind: String,
    /// Node addresses, indexed by node id — node `i` here must have been
    /// started with `--node-id i`.
    pub nodes: Vec<String>,
    /// Workload configuration for the router-side SQL frontend (same
    /// semantics as [`crate::ServerConfig::frontend`]).
    pub frontend: Option<WorkloadConfig>,
    /// Which connection front door serves clients (same semantics as
    /// [`crate::ServerConfig::front`]).
    pub front: FrontDoor,
    /// Reap limit for stalled client connections (same semantics as
    /// [`crate::ServerConfig::stall_limit`]).
    pub stall_limit: std::time::Duration,
    /// How long the reactor data plane waits for a node's reply to one
    /// fanned-out sub-request before completing the waiting client
    /// requests with a typed `NODE_UNAVAILABLE` error and declaring the
    /// link dead (`--node-timeout-ms`). Only the shared multiplexed
    /// links enforce this; the threaded front door's per-connection
    /// links rely on the OS connect/read errors as before.
    pub node_timeout: std::time::Duration,
}

impl RouterConfig {
    /// Default per-fanout node reply deadline (`--node-timeout-ms`):
    /// generous against GC-free Rust nodes, tight enough that a wedged
    /// node fails typed long before clients' own stall limits.
    pub const DEFAULT_NODE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);
}

/// The routing state every client handler reads and `Reshard` rewrites.
struct Route {
    /// Current routing epoch.
    epoch: u64,
    /// `owner[shard]` — node hosting that shard.
    owner: Vec<u16>,
}

/// The router's own metric handles, resolved from the registry once at
/// startup (the registry lock is never on the request path).
struct RouterTelemetry {
    /// Round-trip latency of one `NodeOps` frame, per node — the
    /// router's view of each node's service time including the wire.
    fanout: Vec<Arc<Histogram>>,
    /// `WrongEpoch` redirects absorbed by transparent re-handshakes.
    wrong_epoch_retries: Arc<Counter>,
    /// Node sub-requests in flight across all shared links of one event
    /// loop, sampled at each flush (reactor data plane only).
    node_inflight: Arc<Histogram>,
    /// Sub-request frames coalesced into one socket write per link
    /// flush — the pipelining the mux buys over lockstep links.
    mux_frames_per_flush: Arc<Histogram>,
    /// Per-node queue depth (correlation ids awaiting replies on the
    /// shared link), refreshed at each flush.
    node_queue: Vec<Arc<Gauge>>,
    /// Reshard phase durations: drain + snapshot at the old owner,
    reshard_detach: Arc<Histogram>,
    /// restore at the new owner,
    reshard_attach: Arc<Histogram>,
    /// and the cluster-wide epoch bump.
    reshard_epoch: Arc<Histogram>,
    /// Backups promoted to primary by the failure detector.
    promotions: Arc<Counter>,
    /// Failover rounds run (a node declared dead), promotions or not.
    failovers: Arc<Counter>,
    /// EWMA (α = 1/8) of each node's fan-out round trip, the health
    /// score behind the failure detector's strike threshold.
    node_rtt: Vec<Arc<Gauge>>,
}

impl RouterTelemetry {
    fn register(t: &Telemetry, n_nodes: usize) -> RouterTelemetry {
        RouterTelemetry {
            fanout: (0..n_nodes)
                .map(|n| t.histogram(&format!("router.fanout_ns.node{n}")))
                .collect(),
            wrong_epoch_retries: t.counter("router.wrong_epoch_retries"),
            node_inflight: t.histogram("router.node_inflight"),
            mux_frames_per_flush: t.histogram("router.mux_frames_per_flush"),
            node_queue: (0..n_nodes)
                .map(|n| t.gauge(&format!("router.node_queue.node{n}")))
                .collect(),
            reshard_detach: t.histogram("router.reshard.detach_ns"),
            reshard_attach: t.histogram("router.reshard.attach_ns"),
            reshard_epoch: t.histogram("router.reshard.set_epoch_ns"),
            promotions: t.counter("router.promotions"),
            failovers: t.counter("router.failovers"),
            node_rtt: (0..n_nodes)
                .map(|n| t.gauge(&format!("router.node_rtt_ewma_ns.node{n}")))
                .collect(),
        }
    }
}

/// One node's health as the failure detector sees it: an RTT EWMA for
/// scoring and a strike counter for the binary alive/dead call. Strikes
/// accrue on hard evidence only — a connect failure, a dead link, a
/// fan-out deadline miss — and any successful round trip (or monitor
/// probe) clears them, so a single transient hiccup never fails a node
/// over.
#[derive(Default)]
struct NodeHealth {
    /// EWMA (α = 1/8) of fan-out round trips, in ns; 0 = no sample yet.
    rtt_ewma_ns: AtomicU64,
    /// Consecutive hard failures since the last successful round trip.
    strikes: AtomicU32,
    /// Set once the failure detector declares the node dead; the admin
    /// fan-outs (`Stats`, `Telemetry`, `Shutdown`) skip it from then on.
    /// Rejoining a revived node takes a router restart, which re-stitches
    /// the owner map from the nodes' own hosted sets.
    down: AtomicBool,
}

struct RouterShared {
    map: Box<dyn Partitioner>,
    catalog: ObjectCatalog,
    nodes: Vec<String>,
    route: RwLock<Route>,
    shutdown: Arc<AtomicBool>,
    frontend: Option<Arc<QueryCompiler>>,
    /// The router's metric registry; a client `Telemetry` request gets
    /// this merged with every node's snapshot.
    telemetry: Arc<Telemetry>,
    rt: RouterTelemetry,
    /// Wire-level counter handles shared by every client connection.
    wire: WireTelemetry,
    /// Which front door serves clients.
    front: FrontDoor,
    /// Reap limit for stalled client connections.
    stall_limit: std::time::Duration,
    /// Per-fanout node reply deadline on the reactor data plane.
    node_timeout: Duration,
    /// Node sub-requests currently parked in ANY event loop's link
    /// correlators. `Reshard` quiesces on this reaching zero before it
    /// detaches a shard, so no sub-request ever straddles an epoch
    /// boundary mid-flight.
    inflight_subs: AtomicUsize,
    /// Per-node health, fed by both front doors and read by the
    /// failure-detector thread.
    health: Vec<NodeHealth>,
}

impl RouterShared {
    /// Records a successful round trip to `node`: folds the RTT into
    /// the EWMA health score and clears any strikes.
    fn note_ok(&self, node: usize, rtt: Duration) {
        let h = &self.health[node];
        h.strikes.store(0, Ordering::Relaxed);
        let sample = rtt.as_nanos() as u64;
        let prev = h.rtt_ewma_ns.load(Ordering::Relaxed);
        // Racy read-modify-write is fine: this is a health score, not a
        // ledger, and every writer moves it toward recent reality.
        let next = if prev == 0 {
            sample
        } else {
            prev - prev / 8 + sample / 8
        };
        h.rtt_ewma_ns.store(next, Ordering::Relaxed);
        self.rt.node_rtt[node].set(next);
    }

    /// Records hard evidence against `node`: a connect failure, a dead
    /// link, or a fan-out deadline miss.
    fn note_strike(&self, node: usize) {
        self.health[node].strikes.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the failure detector has declared `node` dead.
    fn is_down(&self, node: usize) -> bool {
        self.health[node].down.load(Ordering::SeqCst)
    }
}

/// A running delta-router instance.
pub struct Router {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
    monitor_thread: std::thread::JoinHandle<()>,
    telemetry: Arc<Telemetry>,
}

impl Router {
    /// Connects to every node, validates that they form one coherent
    /// cluster over `catalog`, then binds and starts routing. Returns
    /// once the listener is live.
    pub fn start(config: RouterConfig, catalog: ObjectCatalog) -> io::Result<Router> {
        if config.nodes.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one node",
            ));
        }
        if config.nodes.len() > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "node count exceeds u16",
            ));
        }
        let frontend = match &config.frontend {
            None => None,
            Some(wcfg) => {
                let mapper = wcfg.spatial_mapper();
                if mapper.partition().len() != catalog.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "frontend partition has {} leaves but the catalog has {} objects",
                            mapper.partition().len(),
                            catalog.len()
                        ),
                    ));
                }
                Some(Arc::new(QueryCompiler::new(
                    Schema::sdss(),
                    wcfg.sky_model(),
                    mapper,
                )))
            }
        };

        // Handshake with every node and stitch their hosted sets into
        // one owner map, refusing any inconsistency up front: a cluster
        // that disagrees about its partitioner would corrupt ledgers
        // silently, which is exactly what this tier must make impossible.
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        let mut infos: Vec<NodeInfo> = Vec::with_capacity(config.nodes.len());
        for (i, addr) in config.nodes.iter().enumerate() {
            let mut client = DeltaClient::connect(addr)?;
            let info = client.hello(0)?;
            if info.role != NodeRole::ClusterNode {
                return Err(invalid(format!(
                    "{addr} is not a cluster node (role {:?}); start it with --node-id/--nodes",
                    info.role
                )));
            }
            if info.node as usize != i {
                return Err(invalid(format!(
                    "{addr} thinks it is node {} but is listed at position {i}",
                    info.node
                )));
            }
            if info.nodes as usize != config.nodes.len() {
                return Err(invalid(format!(
                    "{addr} expects {} nodes but the router fronts {}",
                    info.nodes,
                    config.nodes.len()
                )));
            }
            if info.catalog_objects != catalog.len() as u64
                || info.catalog_bytes != catalog.total_bytes()
            {
                return Err(invalid(format!(
                    "{addr} serves a different catalog ({} objects / {} bytes vs the router's \
                     {} / {})",
                    info.catalog_objects,
                    info.catalog_bytes,
                    catalog.len(),
                    catalog.total_bytes()
                )));
            }
            infos.push(info);
        }
        let first = &infos[0];
        for (info, addr) in infos.iter().zip(&config.nodes) {
            if info.partitioner != first.partitioner
                || info.cluster_shards != first.cluster_shards
                || info.epoch != first.epoch
            {
                return Err(invalid(format!(
                    "{addr} disagrees with {}: partitioner/shards/epoch \
                     ({}/{}/{}) vs ({}/{}/{})",
                    config.nodes[0],
                    info.partitioner,
                    info.cluster_shards,
                    info.epoch,
                    first.partitioner,
                    first.cluster_shards,
                    first.epoch
                )));
            }
        }
        let n_shards = first.cluster_shards as usize;
        let kind = PartitionerKind::parse(&first.partitioner).map_err(invalid)?;
        let map = kind.build(n_shards, catalog.len());
        let mut owner: Vec<Option<u16>> = vec![None; n_shards];
        for (i, info) in infos.iter().enumerate() {
            for &s in &info.hosted {
                if s as usize >= n_shards {
                    return Err(invalid(format!("node {i} hosts out-of-range shard {s}")));
                }
                if let Some(prev) = owner[s as usize] {
                    return Err(invalid(format!(
                        "shard {s} hosted by both node {prev} and node {i}"
                    )));
                }
                owner[s as usize] = Some(i as u16);
            }
        }
        let owner: Vec<u16> = owner
            .into_iter()
            .enumerate()
            .map(|(s, o)| o.ok_or_else(|| invalid(format!("shard {s} is hosted by no node"))))
            .collect::<io::Result<_>>()?;

        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(Telemetry::new());
        telemetry.gauge("router.epoch").set(first.epoch);
        telemetry
            .gauge("router.nodes")
            .set(config.nodes.len() as u64);
        let n_nodes_total = config.nodes.len();
        let rt = RouterTelemetry::register(&telemetry, n_nodes_total);
        let wire = WireTelemetry::register(&telemetry);
        let shared = Arc::new(RouterShared {
            map,
            catalog,
            nodes: config.nodes,
            route: RwLock::new(Route {
                epoch: first.epoch,
                owner,
            }),
            shutdown: Arc::clone(&shutdown),
            frontend,
            telemetry: Arc::clone(&telemetry),
            rt,
            wire,
            front: config.front,
            stall_limit: config.stall_limit,
            node_timeout: config.node_timeout,
            inflight_subs: AtomicUsize::new(0),
            health: (0..n_nodes_total).map(|_| NodeHealth::default()).collect(),
        });

        // A crashed rollback spill leaves a half-written `.tmp` behind;
        // the rename is the commit point, so anything still named `.tmp`
        // is garbage by definition. Sweep it before serving.
        sweep_stale_spills();

        let monitor_shared = Arc::clone(&shared);
        let monitor_thread = std::thread::Builder::new()
            .name("delta-router-monitor".to_string())
            .spawn(move || monitor_loop(monitor_shared))
            .expect("spawn router monitor thread");

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("delta-router-accept".to_string())
            .spawn(move || accept_loop(listener, shared, accept_shutdown))
            .expect("spawn router accept thread");

        Ok(Router {
            addr,
            shutdown,
            accept_thread,
            monitor_thread,
            telemetry,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time copy of the router's **own** registry (fan-out
    /// latencies, retries, reshard phases, wire counters). A client
    /// `Telemetry` request additionally folds in every node's snapshot.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// A shared handle on the router's registry, for long-lived
    /// observers (the `--telemetry-dump` thread).
    pub fn telemetry_handle(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown without waiting (a client `Shutdown` frame does
    /// this too — and additionally shuts the nodes down).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the router to stop.
    pub fn join(self) {
        self.accept_thread.join().expect("router accept panicked");
        self.monitor_thread.join().expect("router monitor panicked");
    }

    /// Convenience: request shutdown and wait.
    pub fn stop(self) {
        self.request_shutdown();
        self.join()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<RouterShared>, shutdown: Arc<AtomicBool>) {
    match shared.front {
        FrontDoor::Threaded => accept_threaded(listener, &shared, &shutdown),
        FrontDoor::Reactor { threads } => {
            // The reactor data plane: every client connection's routed
            // requests suspend onto the event loop's [`RouterBackend`],
            // which multiplexes ALL of them over one pipelined link per
            // node. A slow node never parks the loop — the waiting
            // connections resume when its tagged replies arrive (or its
            // deadline fires), while everyone else keeps flowing.
            let factory_shared = Arc::clone(&shared);
            let factory: FrameFactory = Arc::new(move || {
                Box::new(MuxHandler::new(Arc::clone(&factory_shared))) as Box<dyn FrameHandler>
            });
            let backend_shared = Arc::clone(&shared);
            let backend: BackendFactory = Arc::new(move |poller| {
                Box::new(RouterBackend::new(Arc::clone(&backend_shared), poller))
                    as Box<dyn LoopBackend>
            });
            ReactorFront {
                name: "delta-router",
                threads,
                shutdown: Arc::clone(&shutdown),
                wire: shared.wire.clone(),
                rtel: ReactorTelemetry::register(&shared.telemetry),
                stall_limit: shared.stall_limit,
                factory,
                backend: Some(backend),
            }
            .run(listener);
        }
    }
}

/// The pre-reactor front door: one blocking thread per connection.
fn accept_threaded(listener: TcpListener, shared: &Arc<RouterShared>, shutdown: &Arc<AtomicBool>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("delta-router-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, &shared) {
                            if e.kind() != io::ErrorKind::UnexpectedEof {
                                eprintln!("delta-router: connection error: {e}");
                            }
                        }
                    })
                    .expect("spawn router connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("delta-router: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Per-connection router state: one lazily-opened lockstep link per node
/// (each client connection gets its own links, so per-connection request
/// order is preserved end-to-end) plus the SQL compiler clone.
struct ConnState {
    links: Vec<Option<DeltaClient>>,
    /// The epoch each link last declared via `Hello`, to know when a
    /// link must re-handshake instead of reconnect.
    link_epochs: Vec<u64>,
    compiler: Option<QueryCompiler>,
}

impl ConnState {
    fn new(shared: &RouterShared) -> ConnState {
        ConnState {
            links: (0..shared.nodes.len()).map(|_| None).collect(),
            link_epochs: vec![0; shared.nodes.len()],
            compiler: shared.frontend.as_ref().map(|c| (**c).clone()),
        }
    }

    /// Returns a link to `node` whose declared epoch is `epoch`,
    /// connecting or re-handshaking as needed. Every failure — connect,
    /// handshake, or a link slot emptied by an earlier failure path —
    /// surfaces as a typed node-unavailable error, never a panic: a node
    /// may die at any point between ensuring a link and using it.
    fn link(
        &mut self,
        shared: &RouterShared,
        node: usize,
        epoch: u64,
    ) -> io::Result<&mut DeltaClient> {
        if self.links[node].is_none() {
            let mut client = DeltaClient::connect(&shared.nodes[node]).map_err(|e| {
                shared.note_strike(node);
                node_unavailable(node, "connect", &e)
            })?;
            client.hello(epoch).map_err(|e| {
                shared.note_strike(node);
                node_unavailable(node, "handshake", &e)
            })?;
            self.links[node] = Some(client);
            self.link_epochs[node] = epoch;
        } else if self.link_epochs[node] != epoch {
            let hello = match self.links[node].as_mut() {
                Some(client) => client.hello(epoch),
                None => return Err(node_lost(node)),
            };
            if let Err(e) = hello {
                // A link that failed a handshake is dead; drop it so
                // the next attempt reconnects from scratch.
                self.links[node] = None;
                shared.note_strike(node);
                return Err(node_unavailable(node, "re-handshake", &e));
            }
            self.link_epochs[node] = epoch;
        }
        match self.links[node].as_mut() {
            Some(client) => Ok(client),
            None => Err(node_lost(node)),
        }
    }
}

/// The payload inside a node-unavailable `io::Error`: which node died,
/// so the client handler can answer with a typed
/// [`error_code::NODE_UNAVAILABLE`] frame instead of dropping the client
/// connection.
#[derive(Debug)]
struct NodeDown {
    node: usize,
    detail: String,
}

impl std::fmt::Display for NodeDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} unavailable: {}", self.node, self.detail)
    }
}

impl std::error::Error for NodeDown {}

/// Wraps a node-facing failure as a typed node-unavailable error.
fn node_unavailable(node: usize, stage: &str, e: &io::Error) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotConnected,
        NodeDown {
            node,
            detail: format!("{stage}: {e}"),
        },
    )
}

/// The slot-was-empty variant: the link vanished between ensure and use.
fn node_lost(node: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotConnected,
        NodeDown {
            node,
            detail: "link lost between ensure and use".to_string(),
        },
    )
}

/// Recovers which node a typed node-unavailable error names.
fn unavailable_node(e: &io::Error) -> Option<usize> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<NodeDown>())
        .map(|d| d.node)
}

fn serve_connection(stream: TcpStream, shared: &RouterShared) -> io::Result<()> {
    let mut conn = ConnState::new(shared);
    serve_frames(
        stream,
        &shared.shutdown,
        &shared.wire,
        shared.stall_limit,
        |payload, wbuf| handle_frame(shared, payload, wbuf, &mut conn),
    )
}

/// Serves one request frame: the handler body shared by the threaded and
/// reactor front doors.
fn handle_frame(
    shared: &RouterShared,
    payload: &[u8],
    wbuf: &mut Vec<u8>,
    conn: &mut ConnState,
) -> io::Result<bool> {
    let response = match Request::decode(payload) {
        Ok(Request::Tagged { corr, inner }) => Response::Tagged {
            corr,
            inner: Box::new(routed_response(shared, *inner, conn)?),
        },
        Ok(other) => routed_response(shared, other, conn)?,
        Err(e) => Response::Error {
            code: error_code::BAD_FRAME,
            message: e.to_string(),
        },
    };
    append_frame_with(wbuf, |buf| response.encode_into(buf))?;
    let shutting_down = match &response {
        Response::ShutdownOk => true,
        Response::Tagged { inner, .. } => matches!(**inner, Response::ShutdownOk),
        _ => false,
    };
    Ok(shutting_down)
}

/// Routes one request, mapping node death to a typed error frame — the
/// client connection must outlive a dead node. (Ops may have executed at
/// *other* nodes before the failure; the message says which node was
/// lost so the client can reason about partial effects.)
fn routed_response(
    shared: &RouterShared,
    request: Request,
    conn: &mut ConnState,
) -> io::Result<Response> {
    match handle_request(shared, request, conn) {
        Ok(response) => Ok(response),
        Err(e) => match unavailable_node(&e) {
            Some(_) => Ok(Response::Error {
                code: error_code::NODE_UNAVAILABLE,
                message: e.to_string(),
            }),
            None => Err(e),
        },
    }
}

/// How many times an op frame is retried after a `WrongEpoch` redirect
/// before giving up. One redirect (stale link handshake right after a
/// reshard) is normal; repeats mean a node is wedged on a future epoch.
const EPOCH_RETRIES: usize = 3;

/// Sends one pre-split op frame to `node`, transparently re-handshaking
/// on a `WrongEpoch` redirect. The node executes nothing on a stale
/// epoch, so the retry is always safe.
fn node_ops(
    shared: &RouterShared,
    conn: &mut ConnState,
    node: usize,
    epoch: u64,
    ops: &[NodeOp],
) -> io::Result<Vec<BatchReply>> {
    for _ in 0..EPOCH_RETRIES {
        let link = conn.link(shared, node, epoch)?;
        // The fan-out histogram times the whole round trip, redirects
        // included — it is the router's view of what talking to this
        // node costs, not the node's view of its own service time.
        let t0 = Instant::now();
        let response = match link.request(&Request::NodeOps(ops.to_vec())) {
            Ok(response) => response,
            Err(e) => {
                // The link died mid-request; drop it so a later retry
                // reconnects from scratch, and surface the death typed.
                conn.links[node] = None;
                shared.note_strike(node);
                return Err(node_unavailable(node, "request", &e));
            }
        };
        shared.rt.fanout[node].record_duration(t0.elapsed());
        shared.note_ok(node, t0.elapsed());
        match response {
            Response::BatchOk(replies) => return Ok(replies),
            Response::WrongEpoch { epoch: current } => {
                shared.rt.wrong_epoch_retries.inc();
                // The link's handshake predates the epoch we hold — the
                // read lock guarantees our `epoch` IS current, so a
                // fresh Hello converges. A node reporting a *newer*
                // epoch than the router's map is a split brain; fail.
                if current > epoch {
                    return Err(io::Error::other(format!(
                        "node {node} is at epoch {current}, ahead of the router's {epoch}"
                    )));
                }
                conn.link_epochs[node] = u64::MAX; // force re-handshake
            }
            Response::Error { code, message } => {
                return Err(io::Error::other(format!(
                    "node {node} error {code}: {message}"
                )))
            }
            other => {
                return Err(io::Error::other(format!(
                    "node {node}: unexpected response {other:?}"
                )))
            }
        }
    }
    Err(io::Error::other(format!(
        "node {node} kept redirecting after {EPOCH_RETRIES} epoch handshakes"
    )))
}

/// A per-node plan: ops in client order plus, for queries, which item
/// each op belongs to so replies can be merged back.
#[derive(Default)]
struct NodePlan {
    ops: Vec<NodeOp>,
    /// `items[k]` — client-item index op `k` came from.
    items: Vec<usize>,
}

fn handle_request(
    shared: &RouterShared,
    request: Request,
    conn: &mut ConnState,
) -> io::Result<Response> {
    match request {
        Request::Query(q) => route_items(shared, conn, vec![BatchItem::Query(q)])
            .map(|mut replies| single_reply(replies.remove(0))),
        Request::Update(u) => route_items(shared, conn, vec![BatchItem::Update(u)])
            .map(|mut replies| single_reply(replies.remove(0))),
        Request::Sql { seq, sql } => handle_sql(shared, conn, seq, &sql),
        Request::Batch(items) => route_items(shared, conn, items).map(Response::BatchOk),
        Request::Hello { version, .. } => {
            if version != crate::protocol::PROTOCOL_VERSION {
                return Ok(Response::Error {
                    code: error_code::BAD_FRAME,
                    message: format!(
                        "protocol version mismatch: peer speaks v{version}, this router \
                         speaks v{}",
                        crate::protocol::PROTOCOL_VERSION
                    ),
                });
            }
            Ok(Response::HelloOk(router_info(shared)))
        }
        // The threaded front needs no quiesce: its lockstep links hold
        // the route read lock for each request end to end, so the
        // write lock below already waits out every in-flight op.
        Request::Reshard { shard, to_node } => {
            Ok(do_reshard(shared, conn, shard, to_node, |_, _| {}))
        }
        Request::Stats => handle_stats(shared, conn),
        Request::Telemetry => handle_telemetry(shared, conn),
        Request::Shutdown => {
            // Shut the whole cluster down: the router owns its nodes'
            // lifecycle the way `delta-serverd` owns its shards'.
            let route = shared.route.read().expect("route lock");
            for node in 0..shared.nodes.len() {
                if shared.is_down(node) {
                    continue;
                }
                match conn.link(shared, node, route.epoch) {
                    Ok(link) => {
                        if let Err(e) = link.shutdown() {
                            eprintln!("delta-router: node {node} shutdown failed: {e}");
                        }
                    }
                    Err(e) => eprintln!("delta-router: node {node} unreachable for shutdown: {e}"),
                }
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(Response::ShutdownOk)
        }
        Request::NodeOps(_)
        | Request::DetachShard { .. }
        | Request::AttachShard { .. }
        | Request::SetEpoch { .. }
        | Request::Replicate { .. }
        | Request::ReplicaBootstrap { .. }
        | Request::ReplicaStatus
        | Request::Promote { .. } => Ok(Response::Error {
            code: error_code::NOT_CLUSTERED,
            message: "the router hosts no shards; node-level verbs go to delta-serverd".into(),
        }),
        // Nested tags are rejected by the decoder.
        Request::Tagged { inner, .. } => handle_request(shared, *inner, conn),
    }
}

/// The core routing path: splits every item over the cluster
/// partitioner, groups the sub-events per owning node (client order
/// preserved within each node, hence per shard), executes one `NodeOps`
/// frame per touched node, and merges the per-op replies back into
/// per-item replies exactly like the server's in-process fan-out does.
fn route_items(
    shared: &RouterShared,
    conn: &mut ConnState,
    items: Vec<BatchItem>,
) -> io::Result<Vec<BatchReply>> {
    // The read lock pins the routing map for the whole request: a
    // concurrent reshard waits, so a request never straddles two epochs.
    let route = shared.route.read().expect("route lock");
    let mut merge = MergeState::new(items.len());
    let plans = split_plans(shared, &route.owner, items, &mut merge);

    for (node, plan) in plans.iter().enumerate() {
        if plan.ops.is_empty() {
            continue;
        }
        let node_replies = node_ops(shared, conn, node, route.epoch, &plan.ops)?;
        if node_replies.len() != plan.ops.len() {
            return Err(io::Error::other(format!(
                "node {node} answered {} replies for {} ops",
                node_replies.len(),
                plan.ops.len()
            )));
        }
        for (reply, &item) in node_replies.into_iter().zip(&plan.items) {
            merge.absorb(reply, item)?;
        }
    }

    Ok(merge.finish())
}

/// Splits `items` over the cluster partitioner into one [`NodePlan`]
/// per node (client order preserved within each node, hence per shard),
/// pre-resolving invalid items straight into `merge` — the split half
/// of the routing path, shared verbatim by the threaded lockstep links
/// and the reactor mux so the two data planes cannot drift.
fn split_plans(
    shared: &RouterShared,
    owner: &[u16],
    items: Vec<BatchItem>,
    merge: &mut MergeState,
) -> Vec<NodePlan> {
    let mut plans: Vec<NodePlan> = (0..shared.nodes.len())
        .map(|_| NodePlan::default())
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        match item {
            BatchItem::Query(q) => {
                if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
                    merge.poison(
                        i,
                        error_code::UNKNOWN_OBJECT,
                        format!("object {bad} is outside the catalog"),
                    );
                    continue;
                }
                let subs = shared.map.split_query(&q, &shared.catalog);
                merge.expect_query(i, subs.len() as u16);
                for (s, sub) in subs {
                    let plan = &mut plans[owner[s] as usize];
                    plan.ops.push(NodeOp {
                        shard: s as u16,
                        item: BatchItem::Query(sub),
                    });
                    plan.items.push(i);
                }
            }
            BatchItem::Update(u) => {
                if u.object.index() >= shared.catalog.len() {
                    merge.poison(
                        i,
                        error_code::UNKNOWN_OBJECT,
                        format!("object {} is outside the catalog", u.object),
                    );
                    continue;
                }
                let (s, local) = shared.map.split_update(&u);
                let plan = &mut plans[owner[s] as usize];
                plan.ops.push(NodeOp {
                    shard: s as u16,
                    item: BatchItem::Update(local),
                });
                plan.items.push(i);
            }
        }
    }
    plans
}

fn handle_sql(
    shared: &RouterShared,
    conn: &mut ConnState,
    seq: u64,
    sql: &str,
) -> io::Result<Response> {
    let Some(compiler) = conn.compiler.clone() else {
        return Ok(Response::Error {
            code: error_code::SQL_UNAVAILABLE,
            message: "router has no SQL frontend (start it from a workload preset)".to_string(),
        });
    };
    let compiled = match compiler.compile(sql) {
        Ok(c) => c,
        Err(QueryError::Parse(e)) => {
            let span = e.span();
            return Ok(Response::SqlRejected {
                stage: SqlStage::Parse,
                span_start: span.start as u32,
                span_end: span.end as u32,
                message: e.to_string(),
            });
        }
        Err(QueryError::Analyze(e)) => {
            return Ok(Response::SqlRejected {
                stage: SqlStage::Analyze,
                span_start: 0,
                span_end: 0,
                message: e.to_string(),
            });
        }
    };
    let objects = compiled.objects.len() as u32;
    let event = compiled.into_event(seq);
    let (result_bytes, tolerance, kind) = (event.result_bytes, event.tolerance, event.kind);
    let mut replies = route_items(shared, conn, vec![BatchItem::Query(event)])?;
    Ok(match single_reply(replies.remove(0)) {
        Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        } => Response::SqlOk {
            shards_touched,
            local_answers,
            shipped,
            objects,
            result_bytes,
            tolerance,
            kind,
        },
        other => other,
    })
}

fn handle_stats(shared: &RouterShared, conn: &mut ConnState) -> io::Result<Response> {
    let route = shared.route.read().expect("route lock");
    let mut shards: Vec<ShardStats> = Vec::new();
    for node in 0..shared.nodes.len() {
        // A failed-over node's shards answer from their promoted homes;
        // asking its corpse would only turn a scrape into an error.
        if shared.is_down(node) {
            continue;
        }
        let link = conn.link(shared, node, route.epoch)?;
        shards.extend(link.stats()?.shards);
    }
    shards.sort_by_key(|s| s.shard);
    Ok(Response::StatsOk(StatsSnapshot { shards }))
}

/// The cluster-wide scrape: every node's snapshot folded into the
/// router's own. Counters add, gauges take the max, histograms merge
/// bucket-wise — and the shared `conn.*` names mean the wire totals come
/// out as cluster totals, while `shard.*`/`router.*` names stay
/// per-tier by construction.
fn handle_telemetry(shared: &RouterShared, conn: &mut ConnState) -> io::Result<Response> {
    let route = shared.route.read().expect("route lock");
    let mut merged = shared.telemetry.snapshot();
    for node in 0..shared.nodes.len() {
        if shared.is_down(node) {
            continue;
        }
        let link = conn.link(shared, node, route.epoch)?;
        merged.merge(&link.telemetry()?);
    }
    Ok(Response::TelemetryOk(merged))
}

fn router_info(shared: &RouterShared) -> NodeInfo {
    let route = shared.route.read().expect("route lock");
    NodeInfo {
        role: NodeRole::Router,
        node: 0,
        nodes: shared.nodes.len() as u16,
        epoch: route.epoch,
        cluster_shards: shared.map.n_shards() as u16,
        partitioner: shared.map.kind().to_string(),
        catalog_objects: shared.catalog.len() as u64,
        catalog_bytes: shared.catalog.total_bytes(),
        hosted: (0..shared.map.n_shards() as u16).collect(),
    }
}

/// The live-resharding coordinator. Runs under the routing write lock,
/// so every client handler is quiesced between epochs. `quiesce` runs
/// right after the lock is taken, with the (still-current) epoch and
/// owner map: the reactor mux uses it to drain its in-flight node
/// sub-requests — which do NOT hold the read lock while suspended —
/// before any shard moves; the threaded front passes a no-op.
fn do_reshard(
    shared: &RouterShared,
    conn: &mut ConnState,
    shard: u16,
    to_node: u16,
    quiesce: impl FnOnce(u64, &[u16]),
) -> Response {
    let fail = |message: String| Response::Error {
        code: error_code::RESHARD_FAILED,
        message,
    };
    if shard as usize >= shared.map.n_shards() {
        return fail(format!(
            "shard {shard} out of range 0..{}",
            shared.map.n_shards()
        ));
    }
    if to_node as usize >= shared.nodes.len() {
        return fail(format!(
            "node {to_node} out of range 0..{}",
            shared.nodes.len()
        ));
    }
    let mut route = shared.route.write().expect("route lock");
    let from = route.owner[shard as usize];
    if from == to_node {
        // Nothing to move; the current epoch already describes it.
        return Response::ReshardOk { epoch: route.epoch };
    }
    quiesce(route.epoch, &route.owner);
    // The admin verbs are deliberately exempt from epoch fencing, so the
    // existing links work across the transition.
    let admin = |conn: &mut ConnState, node: u16, req: &Request| -> io::Result<Response> {
        conn.link(shared, node as usize, route.epoch)?.request(req)
    };
    // Step 1: drain + snapshot at the old owner.
    let t_detach = Instant::now();
    let state = match admin(conn, from, &Request::DetachShard { shard }) {
        Ok(Response::ShardState { state, .. }) => state,
        Ok(other) => return fail(format!("detach at node {from}: unexpected {other:?}")),
        Err(e) => return fail(format!("detach at node {from}: {e}")),
    };
    shared.rt.reshard_detach.record_duration(t_detach.elapsed());
    // Step 2: restore at the new owner. On failure, try to put the shard
    // back where it was — the state blob must not evaporate.
    let t_attach = Instant::now();
    match admin(
        conn,
        to_node,
        &Request::AttachShard {
            shard,
            state: state.clone(),
        },
    ) {
        Ok(Response::AttachOk { .. }) => {
            shared.rt.reshard_attach.record_duration(t_attach.elapsed());
        }
        outcome => {
            let rollback = match admin(
                conn,
                from,
                &Request::AttachShard {
                    shard,
                    state: state.clone(),
                },
            ) {
                Ok(Response::AttachOk { .. }) => format!("shard restored at node {from}"),
                // The in-memory blob is now the ONLY copy of the
                // shard's state (detach removed the node's snapshot
                // file); spill it to the router's disk so the operator
                // can re-attach it by hand.
                other => {
                    let spill = std::env::temp_dir().join(format!(
                        "delta-orphan-shard-{shard}-epoch{}.jsonl",
                        route.epoch
                    ));
                    match write_spill(&spill, &state) {
                        Ok(()) => format!(
                            "ROLLBACK FAILED ({other:?}) — shard {shard} is OFFLINE; its \
                             engine state was saved to {} on the router host; re-attach it \
                             with an AttachShard frame once a node is reachable",
                            spill.display()
                        ),
                        Err(e) => format!(
                            "ROLLBACK FAILED ({other:?}) AND the state spill to {} failed \
                             ({e}) — shard {shard} is OFFLINE and its state is lost",
                            spill.display()
                        ),
                    }
                }
            };
            return fail(format!(
                "attach at node {to_node} failed ({outcome:?}); {rollback}"
            ));
        }
    }
    // Step 3: new epoch everywhere, then adopt the new map. A node that
    // misses the bump would fence the router's next ops forever, so a
    // SetEpoch failure is a hard error for the operator.
    let epoch = route.epoch + 1;
    let t_epoch = Instant::now();
    for node in 0..shared.nodes.len() as u16 {
        match admin(conn, node, &Request::SetEpoch { epoch }) {
            Ok(Response::EpochOk { .. }) => {}
            other => {
                return fail(format!(
                    "SetEpoch({epoch}) at node {node} failed ({other:?}); cluster is between \
                     epochs — restart the router against consistent nodes"
                ))
            }
        }
    }
    shared.rt.reshard_epoch.record_duration(t_epoch.elapsed());
    route.owner[shard as usize] = to_node;
    route.epoch = epoch;
    shared.telemetry.gauge("router.epoch").set(epoch);
    Response::ReshardOk { epoch }
}

/// Writes an orphaned shard's state blob with tmp+rename discipline: a
/// crash mid-write leaves a `.tmp` the startup sweep removes, never a
/// truncated `.jsonl` an operator might re-attach as if it were whole.
fn write_spill(spill: &std::path::Path, state: &[u8]) -> io::Result<()> {
    let tmp = spill.with_extension("jsonl.tmp");
    std::fs::write(&tmp, state)?;
    std::fs::rename(&tmp, spill)
}

/// Removes half-written spill temporaries left by a crash: the rename
/// in [`write_spill`] is the commit point, so any surviving
/// `delta-orphan-shard-*.tmp` is garbage by definition.
fn sweep_stale_spills() {
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("delta-orphan-shard-") && name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Strikes before the failure detector declares a node dead and fails
/// its shards over. Two means one hard failure plus one failed
/// confirmation probe — a single transient error never triggers.
const FAILOVER_STRIKES: u32 = 2;

/// The failure-detector thread: wakes every quarter node-timeout, and
/// for any node with strikes against it either clears them (a probe
/// connect succeeds — the node is alive, the strikes were transient) or
/// escalates toward [`do_failover`]. Active probing makes detection
/// self-driving: a primary that dies with no client traffic in flight
/// is still declared dead within a few ticks of its first strike.
fn monitor_loop(shared: Arc<RouterShared>) {
    let mut conn = ConnState::new(&shared);
    let tick = (shared.node_timeout / 4).max(Duration::from_millis(25));
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        for node in 0..shared.nodes.len() {
            let h = &shared.health[node];
            if h.down.load(Ordering::SeqCst) || h.strikes.load(Ordering::Relaxed) == 0 {
                continue;
            }
            // Suspicion confirmed or cleared by a bounded connect probe,
            // not by waiting for more client traffic to fail.
            match connect_node(&shared.nodes[node]) {
                Ok(_) => h.strikes.store(0, Ordering::Relaxed),
                Err(_) => {
                    shared.note_strike(node);
                }
            }
            if h.strikes.load(Ordering::Relaxed) >= FAILOVER_STRIKES {
                do_failover(&shared, &mut conn, node);
            }
        }
    }
}

/// The failover coordinator, the router's half of the tentpole: under
/// the routing write lock it asks every survivor which backups it holds
/// and how caught up they are (`ReplicaStatus`), promotes the
/// most-caught-up backup of every orphaned shard (`Promote`), and bumps
/// the routing epoch at the survivors so stale links get a typed
/// `WrongEpoch` — never a wrong answer. Zero promotions (no backups
/// configured, or none alive) bumps nothing: with `--replicas 0` the
/// data path stays byte-identical to the pre-replication router, and
/// the dead node's shards simply answer `NODE_UNAVAILABLE` until an
/// operator intervenes.
///
/// The unavailability window a client sees is bounded by detection
/// (strike + one monitor tick ≤ ~1.5× node-timeout in the worst case)
/// plus this function's promotion round trips — well under 2× the
/// node timeout against live survivors.
fn do_failover(shared: &RouterShared, conn: &mut ConnState, dead: usize) {
    let mut route = shared.route.write().expect("route lock");
    // A cluster being shut down sheds nodes on purpose; that is not a
    // failure to react to.
    if shared.shutdown.load(Ordering::SeqCst) {
        return;
    }
    if shared.health[dead].down.swap(true, Ordering::SeqCst) {
        return; // raced another failover round for the same node
    }
    shared.rt.failovers.inc();
    let orphaned: Vec<u16> = route
        .owner
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o as usize == dead)
        .map(|(s, _)| s as u16)
        .collect();
    eprintln!(
        "delta-router: node {dead} declared dead; {} shard(s) orphaned",
        orphaned.len()
    );
    if orphaned.is_empty() {
        return;
    }
    // Which survivor holds the most-caught-up backup of each shard?
    let epoch = route.epoch;
    let mut holders: HashMap<u16, (usize, u64)> = HashMap::new();
    for node in 0..shared.nodes.len() {
        if node == dead || shared.is_down(node) {
            continue;
        }
        let reply = conn
            .link(shared, node, epoch)
            .and_then(|link| link.request(&Request::ReplicaStatus));
        let Ok(Response::ReplicaStatusOk(backups)) = reply else {
            continue; // an unreachable survivor just contributes nothing
        };
        for (shard, offset) in backups {
            let best = holders.entry(shard).or_insert((node, offset));
            if offset > best.1 {
                *best = (node, offset);
            }
        }
    }
    let mut promoted = 0u64;
    for &shard in &orphaned {
        let Some(&(node, _)) = holders.get(&shard) else {
            eprintln!("delta-router: shard {shard} has no live backup; it stays OFFLINE");
            continue;
        };
        let reply = conn
            .link(shared, node, epoch)
            .and_then(|link| link.request(&Request::Promote { shard }));
        match reply {
            Ok(Response::PromoteOk { offset, .. }) => {
                route.owner[shard as usize] = node as u16;
                promoted += 1;
                shared.rt.promotions.inc();
                eprintln!("delta-router: shard {shard} promoted at node {node} (offset {offset})");
            }
            other => eprintln!(
                "delta-router: promote of shard {shard} at node {node} failed \
                 ({other:?}); shard OFFLINE"
            ),
        }
    }
    if promoted == 0 {
        // The map did not change, so the current epoch still describes
        // it exactly; a bump would cost every live link a WrongEpoch
        // round for nothing.
        return;
    }
    let next = epoch + 1;
    for node in 0..shared.nodes.len() {
        if node == dead || shared.is_down(node) {
            continue;
        }
        let reply = conn
            .link(shared, node, epoch)
            .and_then(|link| link.request(&Request::SetEpoch { epoch: next }));
        match reply {
            Ok(Response::EpochOk { .. }) => {}
            // A survivor that cannot take the bump is likely dying too:
            // its ops fence WrongEpoch until its own strikes fail it over.
            other => eprintln!("delta-router: SetEpoch({next}) at node {node} failed ({other:?})"),
        }
    }
    route.epoch = next;
    shared.telemetry.gauge("router.epoch").set(next);
}

// ---------------------------------------------------------------------------
// The reactor data plane: shared multiplexed node links.
//
// The threaded front above gives every client connection its own
// lockstep link per node — O(clients × nodes) sockets, one round trip
// in flight apiece. The reactor front replaces all of that with ONE
// pipelined link per node per event loop, driven by the loop itself:
//
//   client frame → MuxHandler splits it under the route read lock,
//   opens a fan-out in the loop's FanoutTable, and appends one
//   `Tagged(NodeOps)` sub-request per touched node to that node's
//   shared write buffer (correlation ids from the link's Correlator).
//   The handler SUSPENDS — the loop moves on; nothing blocks.
//
//   loop flush → each link's coalesced buffer hits its socket once per
//   pump, so sub-requests from many client connections ride one write.
//
//   link readable → tagged replies demultiplex by correlation id back
//   to their fan-outs; the last reply completes the merge, and the
//   owning connection RESUMES with the response in arrival order.
//
// Node deadlines ride the backend's own timer wheel: a node that stays
// silent past `node_timeout` fails every fan-out waiting on it with a
// typed `NODE_UNAVAILABLE`, and its link dies. Reconnection is a single
// backoff-gated probe per link — shared by every client — so one dead
// node costs one connect attempt per backoff window, not one per
// client request.

/// First reconnect delay after a link death; doubles per failed probe.
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);

/// Reconnect probes never back off past this.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Bounded connect probe: the event loop parks at most this long on a
/// dead node's reconnect attempt, at most once per backoff window.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Suspended response slots per connection before the front stops
/// reading more of its frames (handler saturation backpressure).
const MAX_PENDING_SLOTS: usize = 128;

/// Reads per link per readiness event — the fairness bound that keeps
/// one firehose node from starving the loop (level-triggered epoll
/// re-notifies whatever is left).
const LINK_READS_PER_EVENT: usize = 16;

/// One response slot of a client connection, in request-arrival order.
enum Slot {
    /// Response (or fatal error) ready to ship.
    Ready(io::Result<Response>),
    /// Waiting on the fan-out with this key.
    Waiting(usize),
}

/// The per-connection frame handler of the reactor data plane: splits
/// routed requests into fan-outs on the loop's [`RouterBackend`] and
/// keeps responses in arrival order across suspensions.
struct MuxHandler {
    shared: Arc<RouterShared>,
    /// Lockstep per-connection links for the rare admin verbs (`Stats`,
    /// `Telemetry`, `Shutdown`, reshard coordination), which block the
    /// loop briefly — exactly like the pre-mux reactor did for every
    /// request. The SQL compiler clone also lives here.
    admin: ConnState,
    /// Pending responses; the longest all-`Ready` prefix is emitted
    /// after every frame and every resume.
    slots: VecDeque<Slot>,
}

impl MuxHandler {
    fn new(shared: Arc<RouterShared>) -> MuxHandler {
        MuxHandler {
            admin: ConnState::new(&shared),
            slots: VecDeque::new(),
            shared,
        }
    }

    /// Ships the longest `Ready` prefix of `slots` into the write
    /// buffer. A `Ready(Err)` propagates only once everything earned
    /// before it is appended — the front flushes those before dropping
    /// the connection.
    fn emit(&mut self, wbuf: &mut Vec<u8>) -> io::Result<bool> {
        let mut close = false;
        while matches!(self.slots.front(), Some(Slot::Ready(_))) {
            let Some(Slot::Ready(result)) = self.slots.pop_front() else {
                unreachable!("front was Ready");
            };
            let response = result?;
            append_frame_with(wbuf, |buf| response.encode_into(buf))?;
            close |= matches!(&response, Response::ShutdownOk)
                || matches!(&response, Response::Tagged { inner, .. }
                    if matches!(**inner, Response::ShutdownOk));
        }
        Ok(close)
    }

    /// Resolves the waiting slot of `fanout` with its completed result.
    fn resolve(&mut self, fanout: usize, result: io::Result<Response>) {
        for slot in self.slots.iter_mut() {
            if let Slot::Waiting(f) = slot {
                if *f == fanout {
                    *slot = Slot::Ready(result);
                    return;
                }
            }
        }
    }

    /// Splits a routed request and opens its fan-out on the backend.
    /// The route read lock is held only across the split — never across
    /// a suspension — so a `Reshard` can take the write lock while
    /// sub-requests are in flight (it quiesces them via the backend).
    fn begin_routed(
        &mut self,
        key: usize,
        corr: Option<u64>,
        kind: ReplyKind,
        items: Vec<BatchItem>,
        backend: &mut dyn LoopBackend,
    ) {
        let mut merge = MergeState::new(items.len());
        let (epoch, plans) = {
            let route = self.shared.route.read().expect("route lock");
            (
                route.epoch,
                split_plans(&self.shared, &route.owner, items, &mut merge),
            )
        };
        if plans.iter().all(|p| p.ops.is_empty()) {
            // Every item resolved at the router (invalid objects, empty
            // batch): no node involved, answer synchronously.
            self.slots.push_back(Slot::Ready(Ok(wrap_corr(
                corr,
                shape_response(&kind, merge),
            ))));
            return;
        }
        let fanout = router_backend(backend).begin_fanout(key, corr, kind, merge, plans, epoch);
        self.slots.push_back(Slot::Waiting(fanout));
    }

    /// Compiles SQL at the router, then routes the compiled query like
    /// any other — the mux twin of [`handle_sql`].
    fn begin_sql(
        &mut self,
        key: usize,
        corr: Option<u64>,
        seq: u64,
        sql: &str,
        backend: &mut dyn LoopBackend,
    ) {
        let Some(compiler) = self.admin.compiler.as_ref() else {
            self.slots.push_back(Slot::Ready(Ok(wrap_corr(
                corr,
                Response::Error {
                    code: error_code::SQL_UNAVAILABLE,
                    message: "router has no SQL frontend (start it from a workload preset)"
                        .to_string(),
                },
            ))));
            return;
        };
        let compiled = match compiler.compile(sql) {
            Ok(c) => c,
            Err(QueryError::Parse(e)) => {
                let span = e.span();
                self.slots.push_back(Slot::Ready(Ok(wrap_corr(
                    corr,
                    Response::SqlRejected {
                        stage: SqlStage::Parse,
                        span_start: span.start as u32,
                        span_end: span.end as u32,
                        message: e.to_string(),
                    },
                ))));
                return;
            }
            Err(QueryError::Analyze(e)) => {
                self.slots.push_back(Slot::Ready(Ok(wrap_corr(
                    corr,
                    Response::SqlRejected {
                        stage: SqlStage::Analyze,
                        span_start: 0,
                        span_end: 0,
                        message: e.to_string(),
                    },
                ))));
                return;
            }
        };
        let objects = compiled.objects.len() as u32;
        let event = compiled.into_event(seq);
        let kind = ReplyKind::Sql {
            objects,
            result_bytes: event.result_bytes,
            tolerance: event.tolerance,
            kind: event.kind,
        };
        self.begin_routed(key, corr, kind, vec![BatchItem::Query(event)], backend);
    }
}

impl FrameHandler for MuxHandler {
    fn on_frame(
        &mut self,
        key: usize,
        payload: &[u8],
        wbuf: &mut Vec<u8>,
        backend: &mut dyn LoopBackend,
    ) -> io::Result<bool> {
        let (corr, request) = match Request::decode(payload) {
            Ok(Request::Tagged { corr, inner }) => (Some(corr), *inner),
            Ok(other) => (None, other),
            Err(e) => {
                self.slots.push_back(Slot::Ready(Ok(Response::Error {
                    code: error_code::BAD_FRAME,
                    message: e.to_string(),
                })));
                return self.emit(wbuf);
            }
        };
        match request {
            Request::Query(q) => self.begin_routed(
                key,
                corr,
                ReplyKind::Single,
                vec![BatchItem::Query(q)],
                backend,
            ),
            Request::Update(u) => self.begin_routed(
                key,
                corr,
                ReplyKind::Single,
                vec![BatchItem::Update(u)],
                backend,
            ),
            Request::Batch(items) => self.begin_routed(key, corr, ReplyKind::Batch, items, backend),
            Request::Sql { seq, sql } => self.begin_sql(key, corr, seq, &sql, backend),
            Request::Reshard { shard, to_node } => {
                // The coordinator must not run with sub-requests parked
                // in link correlators (a sub landing between detach and
                // the epoch bump would hit a missing shard); quiesce
                // through this loop's backend first.
                let rb = router_backend(backend);
                let response = do_reshard(
                    &self.shared,
                    &mut self.admin,
                    shard,
                    to_node,
                    |epoch, owner| rb.quiesce(epoch, owner),
                );
                self.slots
                    .push_back(Slot::Ready(Ok(wrap_corr(corr, response))));
            }
            other => {
                let result = routed_response(&self.shared, other, &mut self.admin)
                    .map(|response| wrap_corr(corr, response));
                self.slots.push_back(Slot::Ready(result));
            }
        }
        self.emit(wbuf)
    }

    fn on_resume(
        &mut self,
        key: usize,
        wbuf: &mut Vec<u8>,
        backend: &mut dyn LoopBackend,
    ) -> io::Result<bool> {
        for (fanout, result) in router_backend(backend).take_done(key) {
            self.resolve(fanout, result);
        }
        self.emit(wbuf)
    }

    fn suspended(&self) -> bool {
        // Ready prefixes are emitted eagerly, so any slot left means the
        // front one is (or sits behind) a suspended fan-out.
        !self.slots.is_empty()
    }

    fn saturated(&self) -> bool {
        self.slots.len() >= MAX_PENDING_SLOTS
    }
}

/// Downcasts the loop backend the front handed us — the router's
/// reactor always pairs [`MuxHandler`] with [`RouterBackend`].
fn router_backend(backend: &mut dyn LoopBackend) -> &mut RouterBackend {
    backend
        .as_any()
        .downcast_mut::<RouterBackend>()
        .expect("router reactor runs a RouterBackend")
}

/// Socket state of one shared node link.
enum LinkState {
    /// No socket; the next enqueue past `retry_at` probes a reconnect.
    Down {
        retry_at: Instant,
        last_error: String,
    },
    /// Live socket registered with the loop's poller.
    Up(LinkIo),
}

/// Buffers of a live link, mirroring a client connection's discipline:
/// flat read buffer with compaction, coalesced write buffer with a
/// parked-flush position.
struct LinkIo {
    stream: TcpStream,
    rbuf: Vec<u8>,
    start: usize,
    end: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Whether write interest is currently armed with the poller.
    write_armed: bool,
}

/// One shared, multiplexed, pipelined link to a node: every client
/// connection's sub-requests for that node ride this socket, matched
/// back by correlation id.
struct NodeLink {
    state: LinkState,
    /// What each in-flight correlation id is waiting for.
    pending: Correlator<Purpose>,
    /// Epoch the link last declared via a pipelined `Hello`;
    /// `u64::MAX` forces a fresh handshake before the next sub.
    declared_epoch: u64,
    /// Next reconnect delay; doubles per failure, resets on any reply.
    /// The actual wait is uniformly jittered in `[backoff/2, backoff]`
    /// so every event loop's probe of a revived node does not land in
    /// the same instant (anti-thundering-herd).
    backoff: Duration,
    /// Per-link jitter state for the backoff spread.
    jitter: u64,
    /// Frames appended since the last flush, for the coalescing
    /// histogram.
    frames_since_flush: u64,
}

impl NodeLink {
    fn new(now: Instant, seed: u64) -> NodeLink {
        NodeLink {
            state: LinkState::Down {
                retry_at: now,
                last_error: "never connected".to_string(),
            },
            pending: Correlator::new(),
            declared_epoch: u64::MAX,
            backoff: INITIAL_BACKOFF,
            // Deterministic per-link seed: jitter shifts timing only,
            // never data.
            jitter: 0x9e37_79b9_7f4a_7c15u64 ^ seed,
            frames_since_flush: 0,
        }
    }

    /// Arms the reconnect window after a failure: jittered delay, then
    /// the exponential bump toward [`MAX_BACKOFF`].
    fn arm_backoff(&mut self, now: Instant, detail: String) {
        let delay = jittered(&mut self.jitter, self.backoff);
        self.state = LinkState::Down {
            retry_at: now + delay,
            last_error: detail,
        };
        self.backoff = (self.backoff * 2).min(MAX_BACKOFF);
    }
}

/// Connects to a node with a bounded timeout and readies the socket for
/// the event loop.
fn connect_node(addr: &str) -> io::Result<TcpStream> {
    let mut last = io::Error::new(
        io::ErrorKind::AddrNotAvailable,
        "address resolved to nothing",
    );
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, CONNECT_TIMEOUT) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_nonblocking(true)?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// One event loop's share of the router data plane: the shared node
/// links, the fan-out table, the node-deadline wheel, and the completed
/// fan-outs awaiting delivery to their connections.
struct RouterBackend {
    shared: Arc<RouterShared>,
    poller: Arc<Poller>,
    links: Vec<NodeLink>,
    table: FanoutTable,
    wheel: TimerWheel,
    /// Scratch for wheel polls.
    expired: Vec<usize>,
    node_timeout: Duration,
    /// Completed fan-outs per client connection key, delivered at the
    /// next resume pass.
    done: HashMap<usize, Vec<(usize, io::Result<Response>)>>,
    /// Connection keys with pending completions.
    resumable: Vec<usize>,
    /// Set while `Reshard` holds the routing write lock on THIS thread:
    /// the (epoch, owner) snapshot `bounce` must use instead of
    /// re-taking the lock it would deadlock on.
    route_hint: Option<(u64, Vec<u16>)>,
}

impl RouterBackend {
    fn new(shared: Arc<RouterShared>, poller: Arc<Poller>) -> RouterBackend {
        let now = Instant::now();
        let n = shared.nodes.len();
        let node_timeout = shared.node_timeout;
        RouterBackend {
            poller,
            links: (0..n).map(|i| NodeLink::new(now, i as u64)).collect(),
            table: FanoutTable::new(n),
            wheel: TimerWheel::new(POLL, 512, now),
            expired: Vec::new(),
            node_timeout,
            done: HashMap::new(),
            resumable: Vec::new(),
            route_hint: None,
            shared,
        }
    }

    /// Takes the completed fan-outs owed to connection `conn`.
    fn take_done(&mut self, conn: usize) -> Vec<(usize, io::Result<Response>)> {
        self.done.remove(&conn).unwrap_or_default()
    }

    /// Stashes a completion for delivery and disarms its deadline.
    fn push_completion(&mut self, done: Completion) {
        if let Some(timer) = done.timer {
            self.wheel.cancel(timer);
        }
        self.done
            .entry(done.conn)
            .or_default()
            .push((done.fanout, done.result));
        self.resumable.push(done.conn);
    }

    /// Opens a fan-out for client connection `key` and enqueues one
    /// sub-request per touched node. Mirrors the threaded path's
    /// failure shape: the first node that cannot be reached completes
    /// the fan-out with a typed error and no later node is contacted
    /// (earlier nodes' subs keep draining as stragglers).
    fn begin_fanout(
        &mut self,
        key: usize,
        corr: Option<u64>,
        kind: ReplyKind,
        merge: MergeState,
        plans: Vec<NodePlan>,
        epoch: u64,
    ) -> usize {
        let now = Instant::now();
        let fanout = self.table.begin(key, corr, kind, merge);
        for (node, plan) in plans.iter().enumerate() {
            if !plan.ops.is_empty() {
                self.table.register_sub(fanout, node);
            }
        }
        let mut failed = false;
        for (node, plan) in plans.into_iter().enumerate() {
            if plan.ops.is_empty() {
                continue;
            }
            if failed {
                self.table.discount(fanout, node);
                continue;
            }
            let entry = SubEntry {
                fanout,
                ops: plan.ops,
                items: plan.items,
                retries: 0,
                sent_at: now,
            };
            if let Err((entry, detail)) = self.enqueue_sub(node, epoch, entry, now) {
                failed = true;
                if let Some(done) = self.table.fail_sub(&entry, node, &detail) {
                    self.push_completion(done);
                }
            }
        }
        if self.table.is_live(fanout) && self.table.outstanding(fanout) > 0 {
            let timer = self.wheel.insert(now + self.node_timeout, fanout);
            self.table.set_timer(fanout, timer);
        }
        fanout
    }

    /// Appends one `Tagged(NodeOps)` sub-request to `node`'s shared
    /// write buffer, connecting/handshaking the link first if needed.
    /// On failure the entry comes back with the failure detail so the
    /// caller can fail or retarget it.
    fn enqueue_sub(
        &mut self,
        node: usize,
        epoch: u64,
        mut entry: SubEntry,
        now: Instant,
    ) -> Result<(), (SubEntry, String)> {
        if let Err(detail) = self.ensure_up(node, epoch, now) {
            return Err((entry, detail));
        }
        let link = &mut self.links[node];
        let LinkState::Up(io) = &mut link.state else {
            return Err((entry, "link lost between ensure and use".to_string()));
        };
        let corr = link.pending.next_id();
        let ops = std::mem::take(&mut entry.ops);
        let req = Request::NodeOps(ops);
        let encoded = append_frame_with(&mut io.wbuf, |buf| {
            encode_tagged_request_into(corr, &req, buf)
        });
        let Request::NodeOps(ops) = req else {
            unreachable!("request shape is fixed");
        };
        entry.ops = ops;
        if let Err(e) = encoded {
            return Err((entry, format!("encode: {e}")));
        }
        link.frames_since_flush += 1;
        link.pending.issue(Purpose::Sub(entry));
        self.shared.inflight_subs.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Brings `node`'s link up (one backoff-gated probe shared by every
    /// client) and pipelines a `Hello` whenever its declared epoch is
    /// stale — the socket's FIFO order lands the handshake at the node
    /// ahead of the ops that rely on it.
    fn ensure_up(&mut self, node: usize, epoch: u64, now: Instant) -> Result<(), String> {
        let link = &mut self.links[node];
        if let LinkState::Down {
            retry_at,
            last_error,
        } = &link.state
        {
            if now < *retry_at {
                return Err(format!("reconnect backoff after {last_error}"));
            }
            match connect_node(&self.shared.nodes[node]) {
                Ok(stream) => {
                    if let Err(e) = self
                        .poller
                        .add(&stream, BACKEND_TOKEN | node, Interest::READ)
                    {
                        let detail = format!("register: {e}");
                        link.arm_backoff(now, detail.clone());
                        self.shared.note_strike(node);
                        return Err(detail);
                    }
                    link.state = LinkState::Up(LinkIo {
                        stream,
                        rbuf: vec![0u8; READ_BUF],
                        start: 0,
                        end: 0,
                        wbuf: Vec::with_capacity(16 * 1024),
                        wpos: 0,
                        write_armed: false,
                    });
                    link.declared_epoch = u64::MAX;
                }
                Err(e) => {
                    let detail = format!("connect: {e}");
                    link.arm_backoff(now, detail.clone());
                    self.shared.note_strike(node);
                    return Err(detail);
                }
            }
        }
        let link = &mut self.links[node];
        if link.declared_epoch != epoch {
            let LinkState::Up(io) = &mut link.state else {
                unreachable!("ensured up above");
            };
            let corr = link.pending.next_id();
            let req = Request::Hello {
                version: crate::protocol::PROTOCOL_VERSION,
                epoch,
            };
            if let Err(e) = append_frame_with(&mut io.wbuf, |buf| {
                encode_tagged_request_into(corr, &req, buf)
            }) {
                return Err(format!("encode hello: {e}"));
            }
            link.frames_since_flush += 1;
            link.pending.issue(Purpose::Hello);
            link.declared_epoch = epoch;
        }
        Ok(())
    }

    /// Tears `node`'s link down: every in-flight sub on it fails its
    /// fan-out with a typed `NODE_UNAVAILABLE` (the owning client
    /// connections all survive), and the next enqueue past the backoff
    /// window probes a reconnect.
    fn kill_link(&mut self, node: usize, detail: &str, now: Instant) {
        let link = &mut self.links[node];
        if let LinkState::Up(io) = &link.state {
            let _ = self.poller.delete(&io.stream);
        }
        link.arm_backoff(now, detail.to_string());
        self.shared.note_strike(node);
        link.frames_since_flush = 0;
        link.declared_epoch = u64::MAX;
        let drained = link.pending.drain();
        for (_corr, purpose) in drained {
            let Purpose::Sub(entry) = purpose else {
                continue;
            };
            self.shared.inflight_subs.fetch_sub(1, Ordering::SeqCst);
            if let Some(done) = self.table.fail_sub(&entry, node, detail) {
                self.push_completion(done);
            }
        }
    }

    /// Drains `node`'s socket and demultiplexes every complete reply.
    /// A protocol violation (undecodable, untagged, unknown correlation
    /// id) kills the link — typed errors for its fan-outs, never a
    /// wrong answer.
    fn read_link(&mut self, node: usize, now: Instant) {
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut death: Option<String> = None;
        {
            let link = &mut self.links[node];
            let LinkState::Up(io) = &mut link.state else {
                return;
            };
            'reads: for _ in 0..LINK_READS_PER_EVENT {
                prepare_read_buffer(&mut io.rbuf, &mut io.start, &mut io.end);
                match io.stream.read(&mut io.rbuf[io.end..]) {
                    Ok(0) => {
                        death = Some("connection closed by node".to_string());
                        break;
                    }
                    Ok(n) => {
                        io.end += n;
                        loop {
                            match buffered_frame_len(&io.rbuf[io.start..io.end]) {
                                Ok(Some(total)) => {
                                    frames.push(io.rbuf[io.start + 4..io.start + total].to_vec());
                                    io.start += total;
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    death = Some(e.to_string());
                                    break 'reads;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        death = Some(e.to_string());
                        break;
                    }
                }
            }
        }
        // Replies that arrived ahead of a failure are still good.
        for payload in frames {
            if let Err(detail) = self.demux(node, &payload, now) {
                self.kill_link(node, &detail, now);
                return;
            }
        }
        if let Some(detail) = death {
            self.kill_link(node, &format!("read: {detail}"), now);
        }
    }

    /// Routes one tagged reply from `node` back to what its correlation
    /// id was waiting for. `Err` means the link can no longer be
    /// trusted and must die.
    fn demux(&mut self, node: usize, payload: &[u8], now: Instant) -> Result<(), String> {
        let response = Response::decode(payload).map_err(|e| format!("undecodable reply: {e}"))?;
        let Response::Tagged { corr, inner } = response else {
            return Err(format!(
                "untagged reply on a multiplexed link: {response:?}"
            ));
        };
        let Some(purpose) = self.links[node].pending.complete(corr) else {
            return Err(format!("unknown or duplicate correlation id {corr}"));
        };
        // The node is alive and speaking protocol; future reconnects
        // start from the shortest backoff again and its strikes clear.
        self.links[node].backoff = INITIAL_BACKOFF;
        self.shared.health[node].strikes.store(0, Ordering::Relaxed);
        match purpose {
            Purpose::Hello => match *inner {
                Response::HelloOk(_) => Ok(()),
                other => Err(format!("handshake failed: {other:?}")),
            },
            Purpose::Sub(entry) => {
                self.shared.inflight_subs.fetch_sub(1, Ordering::SeqCst);
                match *inner {
                    Response::BatchOk(replies) => {
                        let rtt = entry.sent_at.elapsed();
                        self.shared.rt.fanout[node].record_duration(rtt);
                        self.shared.note_ok(node, rtt);
                        if let Some(done) = self.table.absorb(&entry, node, replies) {
                            self.push_completion(done);
                        }
                        Ok(())
                    }
                    Response::WrongEpoch { epoch: current } => {
                        self.bounce(node, entry, current, now);
                        Ok(())
                    }
                    Response::Error { code, message } => {
                        let err = io::Error::other(format!("node {node} error {code}: {message}"));
                        if let Some(done) = self.table.fatal_sub(&entry, node, err) {
                            self.push_completion(done);
                        }
                        Ok(())
                    }
                    other => {
                        let err =
                            io::Error::other(format!("node {node}: unexpected response {other:?}"));
                        if let Some(done) = self.table.fatal_sub(&entry, node, err) {
                            self.push_completion(done);
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    /// Handles a `WrongEpoch` redirect on a sub-request: re-splits its
    /// ops by the CURRENT owner map and re-enqueues them (the reshard
    /// that bounced us may have moved any of these shards anywhere),
    /// with the same retry budget as the threaded path. The node
    /// executed nothing on the stale epoch, so the retry is always
    /// safe.
    fn bounce(&mut self, node: usize, mut entry: SubEntry, current: u64, now: Instant) {
        self.shared.rt.wrong_epoch_retries.inc();
        let (epoch, owner) = match &self.route_hint {
            Some((e, o)) => (*e, o.clone()),
            None => {
                let route = self.shared.route.read().expect("route lock");
                (route.epoch, route.owner.clone())
            }
        };
        if current > epoch {
            let err = io::Error::other(format!(
                "node {node} is at epoch {current}, ahead of the router's {epoch}"
            ));
            if let Some(done) = self.table.fatal_sub(&entry, node, err) {
                self.push_completion(done);
            }
            return;
        }
        entry.retries += 1;
        if entry.retries > EPOCH_RETRIES {
            let err = io::Error::other(format!(
                "node {node} kept redirecting after {EPOCH_RETRIES} epoch handshakes"
            ));
            if let Some(done) = self.table.fatal_sub(&entry, node, err) {
                self.push_completion(done);
            }
            return;
        }
        if !self.table.is_live(entry.fanout) {
            self.table.discount(entry.fanout, node);
            return;
        }
        // The link's handshake went stale; the next enqueue pipelines a
        // fresh Hello ahead of the re-sent ops.
        self.links[node].declared_epoch = u64::MAX;
        let SubEntry {
            fanout,
            ops,
            items,
            retries,
            sent_at,
        } = entry;
        let mut groups: BTreeMap<usize, (Vec<NodeOp>, Vec<usize>)> = BTreeMap::new();
        for (op, item) in ops.into_iter().zip(items) {
            let to = owner[op.shard as usize] as usize;
            let group = groups.entry(to).or_default();
            group.0.push(op);
            group.1.push(item);
        }
        let to_nodes: Vec<usize> = groups.keys().copied().collect();
        self.table.retarget(fanout, node, &to_nodes);
        for (to_node, (ops, items)) in groups {
            if !self.table.is_live(fanout) {
                self.table.discount(fanout, to_node);
                continue;
            }
            let sub = SubEntry {
                fanout,
                ops,
                items,
                retries,
                sent_at,
            };
            if let Err((sub, detail)) = self.enqueue_sub(to_node, epoch, sub, now) {
                if let Some(done) = self.table.fail_sub(&sub, to_node, &detail) {
                    self.push_completion(done);
                }
            }
        }
    }

    /// Ships `node`'s coalesced write buffer as far as the socket
    /// allows; a partial write parks the rest under write interest.
    fn flush_link(&mut self, node: usize, now: Instant) {
        let mut died: Option<String> = None;
        {
            let link = &mut self.links[node];
            let LinkState::Up(io) = &mut link.state else {
                return;
            };
            if link.frames_since_flush > 0 {
                self.shared
                    .rt
                    .mux_frames_per_flush
                    .record(link.frames_since_flush);
                link.frames_since_flush = 0;
            }
            while io.wpos < io.wbuf.len() {
                match io.stream.write(&io.wbuf[io.wpos..]) {
                    Ok(0) => {
                        died = Some("write returned zero".to_string());
                        break;
                    }
                    Ok(n) => io.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        died = Some(e.to_string());
                        break;
                    }
                }
            }
            if died.is_none() {
                if io.wpos > 0 && io.wpos == io.wbuf.len() {
                    io.wbuf.clear();
                    io.wpos = 0;
                }
                let want_write = io.wpos < io.wbuf.len();
                if want_write != io.write_armed {
                    let interest = Interest {
                        readable: true,
                        writable: want_write,
                    };
                    if self
                        .poller
                        .modify(&io.stream, BACKEND_TOKEN | node, interest)
                        .is_ok()
                    {
                        io.write_armed = want_write;
                    }
                }
            }
        }
        if let Some(detail) = died {
            self.kill_link(node, &format!("write: {detail}"), now);
        }
    }

    /// Fires node deadlines: a fan-out past `node_timeout` completes
    /// with a typed error naming the silent nodes, whose links die (one
    /// probe will cover every client when they come back).
    fn fire_deadlines(&mut self, now: Instant) {
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.wheel.poll(now, &mut expired);
        for fanout in expired.drain(..) {
            if let Some((done, owing)) = self.table.on_deadline(fanout, self.node_timeout) {
                self.push_completion(done);
                let detail = format!("no reply within {:?}", self.node_timeout);
                for node in owing {
                    self.kill_link(node, &detail, now);
                }
            }
        }
        self.expired = expired;
    }

    /// Drains every in-flight sub-request before a reshard moves a
    /// shard, pumping this loop's own links inline (the routing write
    /// lock is already held, which is also why `route_hint` carries the
    /// map: re-taking the lock here would deadlock). Other event loops
    /// keep draining on their own threads — the shared counter covers
    /// the whole process. Bounded at 2× the node timeout: past that,
    /// every fan-out on a wedged node has failed typed anyway.
    fn quiesce(&mut self, epoch: u64, owner: &[u16]) {
        let deadline = Instant::now() + self.node_timeout * 2;
        self.route_hint = Some((epoch, owner.to_vec()));
        while self.shared.inflight_subs.load(Ordering::SeqCst) > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            for node in 0..self.links.len() {
                self.flush_link(node, now);
                self.read_link(node, now);
            }
            self.fire_deadlines(now);
            if self.shared.inflight_subs.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.route_hint = None;
    }
}

impl LoopBackend for RouterBackend {
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn on_event(&mut self, token: usize, now: Instant) {
        if token >= self.links.len() {
            return;
        }
        self.flush_link(token, now);
        self.read_link(token, now);
    }

    fn tick(&mut self, now: Instant) {
        self.fire_deadlines(now);
    }

    fn take_resumable(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.resumable)
    }

    fn flush(&mut self, now: Instant) {
        for node in 0..self.links.len() {
            self.flush_link(node, now);
        }
        let mut inflight = 0u64;
        for (node, link) in self.links.iter().enumerate() {
            let depth = link.pending.in_flight() as u64;
            self.shared.rt.node_queue[node].set(depth);
            inflight += depth;
        }
        if inflight > 0 {
            self.shared.rt.node_inflight.record(inflight);
        }
    }

    fn conn_closed(&mut self, key: usize) {
        self.done.remove(&key);
        for timer in self.table.conn_closed(key) {
            self.wheel.cancel(timer);
        }
    }
}
