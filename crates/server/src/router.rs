//! The router tier: one process fronting multiple `delta-serverd`
//! cluster nodes.
//!
//! `delta-routerd` speaks the same client-facing protocol as a
//! standalone server — `Query`, `Update`, `Sql`, `Batch`, `Tagged`
//! pipelining, `Stats`, `Shutdown` — but instead of executing events it
//! runs the cluster [`Partitioner`] itself, splits every event into
//! per-shard sub-events exactly like the in-process frontend does, and
//! groups them **per owning node** into pre-split [`Request::NodeOps`]
//! frames. Per-shard sub-event order equals client order, so per-shard
//! ledgers stay byte-identical to the offline
//! [`crate::partition::shard_trace`] twin — the property the cluster
//! differential test pins end-to-end.
//!
//! ## Routing epochs and live resharding
//!
//! The router owns the shard→node map, versioned by a **routing epoch**.
//! An admin [`Request::Reshard`] moves one shard between nodes while the
//! cluster stays up:
//!
//! 1. take the routing write lock (quiescing every client handler, whose
//!    requests hold the read lock end-to-end),
//! 2. `DetachShard` at the old owner — the node write-locks the shard
//!    slot (waiting out in-flight ops), snapshots the engine and stops
//!    hosting it,
//! 3. `AttachShard` at the new owner — the node validates the snapshot
//!    against its own sub-catalog/policy/budget and restores the engine,
//! 4. `SetEpoch` everywhere, bump the local map, reply `ReshardOk`.
//!
//! Any connection still declaring the old epoch — another router
//! replica, a direct-to-node client with a cached map — gets a typed
//! [`Response::WrongEpoch`] on its next event request and *nothing
//! executes*; the router's own node links transparently re-handshake and
//! retry, which doubles as a liveness proof of the redirect path.

use crate::client::DeltaClient;
use crate::config::FrontDoor;
use crate::connection::{serve_frames, WireTelemetry, POLL};
use crate::front::{Handler, HandlerFactory, ReactorFront, ReactorTelemetry};
use crate::partition::{Partitioner, PartitionerKind};
use crate::protocol::{
    append_frame_with, error_code, BatchItem, BatchReply, NodeInfo, NodeOp, NodeRole, Request,
    Response, ShardStats, SqlStage, StatsSnapshot,
};
use delta_query::{QueryCompiler, QueryError, Schema};
use delta_storage::ObjectCatalog;
use delta_telemetry::{Counter, Histogram, Telemetry, TelemetrySnapshot};
use delta_workload::WorkloadConfig;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Everything `delta-routerd` needs besides the object catalog.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:7118` (port 0 picks one).
    pub bind: String,
    /// Node addresses, indexed by node id — node `i` here must have been
    /// started with `--node-id i`.
    pub nodes: Vec<String>,
    /// Workload configuration for the router-side SQL frontend (same
    /// semantics as [`crate::ServerConfig::frontend`]).
    pub frontend: Option<WorkloadConfig>,
    /// Which connection front door serves clients (same semantics as
    /// [`crate::ServerConfig::front`]).
    pub front: FrontDoor,
    /// Reap limit for stalled client connections (same semantics as
    /// [`crate::ServerConfig::stall_limit`]).
    pub stall_limit: std::time::Duration,
}

/// The routing state every client handler reads and `Reshard` rewrites.
struct Route {
    /// Current routing epoch.
    epoch: u64,
    /// `owner[shard]` — node hosting that shard.
    owner: Vec<u16>,
}

/// The router's own metric handles, resolved from the registry once at
/// startup (the registry lock is never on the request path).
struct RouterTelemetry {
    /// Round-trip latency of one `NodeOps` frame, per node — the
    /// router's view of each node's service time including the wire.
    fanout: Vec<Arc<Histogram>>,
    /// `WrongEpoch` redirects absorbed by transparent re-handshakes.
    wrong_epoch_retries: Arc<Counter>,
    /// Reshard phase durations: drain + snapshot at the old owner,
    reshard_detach: Arc<Histogram>,
    /// restore at the new owner,
    reshard_attach: Arc<Histogram>,
    /// and the cluster-wide epoch bump.
    reshard_epoch: Arc<Histogram>,
}

impl RouterTelemetry {
    fn register(t: &Telemetry, n_nodes: usize) -> RouterTelemetry {
        RouterTelemetry {
            fanout: (0..n_nodes)
                .map(|n| t.histogram(&format!("router.fanout_ns.node{n}")))
                .collect(),
            wrong_epoch_retries: t.counter("router.wrong_epoch_retries"),
            reshard_detach: t.histogram("router.reshard.detach_ns"),
            reshard_attach: t.histogram("router.reshard.attach_ns"),
            reshard_epoch: t.histogram("router.reshard.set_epoch_ns"),
        }
    }
}

struct RouterShared {
    map: Box<dyn Partitioner>,
    catalog: ObjectCatalog,
    nodes: Vec<String>,
    route: RwLock<Route>,
    shutdown: Arc<AtomicBool>,
    frontend: Option<Arc<QueryCompiler>>,
    /// The router's metric registry; a client `Telemetry` request gets
    /// this merged with every node's snapshot.
    telemetry: Arc<Telemetry>,
    rt: RouterTelemetry,
    /// Wire-level counter handles shared by every client connection.
    wire: WireTelemetry,
    /// Which front door serves clients.
    front: FrontDoor,
    /// Reap limit for stalled client connections.
    stall_limit: std::time::Duration,
}

/// A running delta-router instance.
pub struct Router {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
    telemetry: Arc<Telemetry>,
}

impl Router {
    /// Connects to every node, validates that they form one coherent
    /// cluster over `catalog`, then binds and starts routing. Returns
    /// once the listener is live.
    pub fn start(config: RouterConfig, catalog: ObjectCatalog) -> io::Result<Router> {
        if config.nodes.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one node",
            ));
        }
        if config.nodes.len() > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "node count exceeds u16",
            ));
        }
        let frontend = match &config.frontend {
            None => None,
            Some(wcfg) => {
                let mapper = wcfg.spatial_mapper();
                if mapper.partition().len() != catalog.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "frontend partition has {} leaves but the catalog has {} objects",
                            mapper.partition().len(),
                            catalog.len()
                        ),
                    ));
                }
                Some(Arc::new(QueryCompiler::new(
                    Schema::sdss(),
                    wcfg.sky_model(),
                    mapper,
                )))
            }
        };

        // Handshake with every node and stitch their hosted sets into
        // one owner map, refusing any inconsistency up front: a cluster
        // that disagrees about its partitioner would corrupt ledgers
        // silently, which is exactly what this tier must make impossible.
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        let mut infos: Vec<NodeInfo> = Vec::with_capacity(config.nodes.len());
        for (i, addr) in config.nodes.iter().enumerate() {
            let mut client = DeltaClient::connect(addr)?;
            let info = client.hello(0)?;
            if info.role != NodeRole::ClusterNode {
                return Err(invalid(format!(
                    "{addr} is not a cluster node (role {:?}); start it with --node-id/--nodes",
                    info.role
                )));
            }
            if info.node as usize != i {
                return Err(invalid(format!(
                    "{addr} thinks it is node {} but is listed at position {i}",
                    info.node
                )));
            }
            if info.nodes as usize != config.nodes.len() {
                return Err(invalid(format!(
                    "{addr} expects {} nodes but the router fronts {}",
                    info.nodes,
                    config.nodes.len()
                )));
            }
            if info.catalog_objects != catalog.len() as u64
                || info.catalog_bytes != catalog.total_bytes()
            {
                return Err(invalid(format!(
                    "{addr} serves a different catalog ({} objects / {} bytes vs the router's \
                     {} / {})",
                    info.catalog_objects,
                    info.catalog_bytes,
                    catalog.len(),
                    catalog.total_bytes()
                )));
            }
            infos.push(info);
        }
        let first = &infos[0];
        for (info, addr) in infos.iter().zip(&config.nodes) {
            if info.partitioner != first.partitioner
                || info.cluster_shards != first.cluster_shards
                || info.epoch != first.epoch
            {
                return Err(invalid(format!(
                    "{addr} disagrees with {}: partitioner/shards/epoch \
                     ({}/{}/{}) vs ({}/{}/{})",
                    config.nodes[0],
                    info.partitioner,
                    info.cluster_shards,
                    info.epoch,
                    first.partitioner,
                    first.cluster_shards,
                    first.epoch
                )));
            }
        }
        let n_shards = first.cluster_shards as usize;
        let kind = PartitionerKind::parse(&first.partitioner).map_err(invalid)?;
        let map = kind.build(n_shards, catalog.len());
        let mut owner: Vec<Option<u16>> = vec![None; n_shards];
        for (i, info) in infos.iter().enumerate() {
            for &s in &info.hosted {
                if s as usize >= n_shards {
                    return Err(invalid(format!("node {i} hosts out-of-range shard {s}")));
                }
                if let Some(prev) = owner[s as usize] {
                    return Err(invalid(format!(
                        "shard {s} hosted by both node {prev} and node {i}"
                    )));
                }
                owner[s as usize] = Some(i as u16);
            }
        }
        let owner: Vec<u16> = owner
            .into_iter()
            .enumerate()
            .map(|(s, o)| o.ok_or_else(|| invalid(format!("shard {s} is hosted by no node"))))
            .collect::<io::Result<_>>()?;

        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(Telemetry::new());
        telemetry.gauge("router.epoch").set(first.epoch);
        telemetry
            .gauge("router.nodes")
            .set(config.nodes.len() as u64);
        let rt = RouterTelemetry::register(&telemetry, config.nodes.len());
        let wire = WireTelemetry::register(&telemetry);
        let shared = Arc::new(RouterShared {
            map,
            catalog,
            nodes: config.nodes,
            route: RwLock::new(Route {
                epoch: first.epoch,
                owner,
            }),
            shutdown: Arc::clone(&shutdown),
            frontend,
            telemetry: Arc::clone(&telemetry),
            rt,
            wire,
            front: config.front,
            stall_limit: config.stall_limit,
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("delta-router-accept".to_string())
            .spawn(move || accept_loop(listener, shared, accept_shutdown))
            .expect("spawn router accept thread");

        Ok(Router {
            addr,
            shutdown,
            accept_thread,
            telemetry,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time copy of the router's **own** registry (fan-out
    /// latencies, retries, reshard phases, wire counters). A client
    /// `Telemetry` request additionally folds in every node's snapshot.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// A shared handle on the router's registry, for long-lived
    /// observers (the `--telemetry-dump` thread).
    pub fn telemetry_handle(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown without waiting (a client `Shutdown` frame does
    /// this too — and additionally shuts the nodes down).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the router to stop.
    pub fn join(self) {
        self.accept_thread.join().expect("router accept panicked");
    }

    /// Convenience: request shutdown and wait.
    pub fn stop(self) {
        self.request_shutdown();
        self.join()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<RouterShared>, shutdown: Arc<AtomicBool>) {
    match shared.front {
        FrontDoor::Threaded => accept_threaded(listener, &shared, &shutdown),
        FrontDoor::Reactor { threads } => {
            // Router handlers block on node round-trips inside the event
            // loop; a slow node therefore delays the other connections
            // on the same reactor for one round-trip, not forever (node
            // death errors out). The win — client-connection capacity
            // beyond thread scale — is the same as the server tier's.
            let factory_shared = Arc::clone(&shared);
            let factory: HandlerFactory = Arc::new(move || -> Handler {
                let shared = Arc::clone(&factory_shared);
                let mut conn = ConnState::new(&shared);
                Box::new(move |payload, wbuf| handle_frame(&shared, payload, wbuf, &mut conn))
            });
            ReactorFront {
                name: "delta-router",
                threads,
                shutdown: Arc::clone(&shutdown),
                wire: shared.wire.clone(),
                rtel: ReactorTelemetry::register(&shared.telemetry),
                stall_limit: shared.stall_limit,
                factory,
            }
            .run(listener);
        }
    }
}

/// The pre-reactor front door: one blocking thread per connection.
fn accept_threaded(listener: TcpListener, shared: &Arc<RouterShared>, shutdown: &Arc<AtomicBool>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("delta-router-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, &shared) {
                            if e.kind() != io::ErrorKind::UnexpectedEof {
                                eprintln!("delta-router: connection error: {e}");
                            }
                        }
                    })
                    .expect("spawn router connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("delta-router: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Per-connection router state: one lazily-opened lockstep link per node
/// (each client connection gets its own links, so per-connection request
/// order is preserved end-to-end) plus the SQL compiler clone.
struct ConnState {
    links: Vec<Option<DeltaClient>>,
    /// The epoch each link last declared via `Hello`, to know when a
    /// link must re-handshake instead of reconnect.
    link_epochs: Vec<u64>,
    compiler: Option<QueryCompiler>,
}

impl ConnState {
    fn new(shared: &RouterShared) -> ConnState {
        ConnState {
            links: (0..shared.nodes.len()).map(|_| None).collect(),
            link_epochs: vec![0; shared.nodes.len()],
            compiler: shared.frontend.as_ref().map(|c| (**c).clone()),
        }
    }

    /// Returns a link to `node` whose declared epoch is `epoch`,
    /// connecting or re-handshaking as needed. Every failure — connect,
    /// handshake, or a link slot emptied by an earlier failure path —
    /// surfaces as a typed node-unavailable error, never a panic: a node
    /// may die at any point between ensuring a link and using it.
    fn link(
        &mut self,
        shared: &RouterShared,
        node: usize,
        epoch: u64,
    ) -> io::Result<&mut DeltaClient> {
        if self.links[node].is_none() {
            let mut client = DeltaClient::connect(&shared.nodes[node])
                .map_err(|e| node_unavailable(node, "connect", &e))?;
            client
                .hello(epoch)
                .map_err(|e| node_unavailable(node, "handshake", &e))?;
            self.links[node] = Some(client);
            self.link_epochs[node] = epoch;
        } else if self.link_epochs[node] != epoch {
            let hello = match self.links[node].as_mut() {
                Some(client) => client.hello(epoch),
                None => return Err(node_lost(node)),
            };
            if let Err(e) = hello {
                // A link that failed a handshake is dead; drop it so
                // the next attempt reconnects from scratch.
                self.links[node] = None;
                return Err(node_unavailable(node, "re-handshake", &e));
            }
            self.link_epochs[node] = epoch;
        }
        match self.links[node].as_mut() {
            Some(client) => Ok(client),
            None => Err(node_lost(node)),
        }
    }
}

/// The payload inside a node-unavailable `io::Error`: which node died,
/// so the client handler can answer with a typed
/// [`error_code::NODE_UNAVAILABLE`] frame instead of dropping the client
/// connection.
#[derive(Debug)]
struct NodeDown {
    node: usize,
    detail: String,
}

impl std::fmt::Display for NodeDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} unavailable: {}", self.node, self.detail)
    }
}

impl std::error::Error for NodeDown {}

/// Wraps a node-facing failure as a typed node-unavailable error.
fn node_unavailable(node: usize, stage: &str, e: &io::Error) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotConnected,
        NodeDown {
            node,
            detail: format!("{stage}: {e}"),
        },
    )
}

/// The slot-was-empty variant: the link vanished between ensure and use.
fn node_lost(node: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotConnected,
        NodeDown {
            node,
            detail: "link lost between ensure and use".to_string(),
        },
    )
}

/// Recovers which node a typed node-unavailable error names.
fn unavailable_node(e: &io::Error) -> Option<usize> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<NodeDown>())
        .map(|d| d.node)
}

fn serve_connection(stream: TcpStream, shared: &RouterShared) -> io::Result<()> {
    let mut conn = ConnState::new(shared);
    serve_frames(
        stream,
        &shared.shutdown,
        &shared.wire,
        shared.stall_limit,
        |payload, wbuf| handle_frame(shared, payload, wbuf, &mut conn),
    )
}

/// Serves one request frame: the handler body shared by the threaded and
/// reactor front doors.
fn handle_frame(
    shared: &RouterShared,
    payload: &[u8],
    wbuf: &mut Vec<u8>,
    conn: &mut ConnState,
) -> io::Result<bool> {
    let response = match Request::decode(payload) {
        Ok(Request::Tagged { corr, inner }) => Response::Tagged {
            corr,
            inner: Box::new(routed_response(shared, *inner, conn)?),
        },
        Ok(other) => routed_response(shared, other, conn)?,
        Err(e) => Response::Error {
            code: error_code::BAD_FRAME,
            message: e.to_string(),
        },
    };
    append_frame_with(wbuf, |buf| response.encode_into(buf))?;
    let shutting_down = match &response {
        Response::ShutdownOk => true,
        Response::Tagged { inner, .. } => matches!(**inner, Response::ShutdownOk),
        _ => false,
    };
    Ok(shutting_down)
}

/// Routes one request, mapping node death to a typed error frame — the
/// client connection must outlive a dead node. (Ops may have executed at
/// *other* nodes before the failure; the message says which node was
/// lost so the client can reason about partial effects.)
fn routed_response(
    shared: &RouterShared,
    request: Request,
    conn: &mut ConnState,
) -> io::Result<Response> {
    match handle_request(shared, request, conn) {
        Ok(response) => Ok(response),
        Err(e) => match unavailable_node(&e) {
            Some(_) => Ok(Response::Error {
                code: error_code::NODE_UNAVAILABLE,
                message: e.to_string(),
            }),
            None => Err(e),
        },
    }
}

/// How many times an op frame is retried after a `WrongEpoch` redirect
/// before giving up. One redirect (stale link handshake right after a
/// reshard) is normal; repeats mean a node is wedged on a future epoch.
const EPOCH_RETRIES: usize = 3;

/// Sends one pre-split op frame to `node`, transparently re-handshaking
/// on a `WrongEpoch` redirect. The node executes nothing on a stale
/// epoch, so the retry is always safe.
fn node_ops(
    shared: &RouterShared,
    conn: &mut ConnState,
    node: usize,
    epoch: u64,
    ops: &[NodeOp],
) -> io::Result<Vec<BatchReply>> {
    for _ in 0..EPOCH_RETRIES {
        let link = conn.link(shared, node, epoch)?;
        // The fan-out histogram times the whole round trip, redirects
        // included — it is the router's view of what talking to this
        // node costs, not the node's view of its own service time.
        let t0 = Instant::now();
        let response = match link.request(&Request::NodeOps(ops.to_vec())) {
            Ok(response) => response,
            Err(e) => {
                // The link died mid-request; drop it so a later retry
                // reconnects from scratch, and surface the death typed.
                conn.links[node] = None;
                return Err(node_unavailable(node, "request", &e));
            }
        };
        shared.rt.fanout[node].record_duration(t0.elapsed());
        match response {
            Response::BatchOk(replies) => return Ok(replies),
            Response::WrongEpoch { epoch: current } => {
                shared.rt.wrong_epoch_retries.inc();
                // The link's handshake predates the epoch we hold — the
                // read lock guarantees our `epoch` IS current, so a
                // fresh Hello converges. A node reporting a *newer*
                // epoch than the router's map is a split brain; fail.
                if current > epoch {
                    return Err(io::Error::other(format!(
                        "node {node} is at epoch {current}, ahead of the router's {epoch}"
                    )));
                }
                conn.link_epochs[node] = u64::MAX; // force re-handshake
            }
            Response::Error { code, message } => {
                return Err(io::Error::other(format!(
                    "node {node} error {code}: {message}"
                )))
            }
            other => {
                return Err(io::Error::other(format!(
                    "node {node}: unexpected response {other:?}"
                )))
            }
        }
    }
    Err(io::Error::other(format!(
        "node {node} kept redirecting after {EPOCH_RETRIES} epoch handshakes"
    )))
}

/// A per-node plan: ops in client order plus, for queries, which item
/// each op belongs to so replies can be merged back.
#[derive(Default)]
struct NodePlan {
    ops: Vec<NodeOp>,
    /// `items[k]` — client-item index op `k` came from.
    items: Vec<usize>,
}

fn handle_request(
    shared: &RouterShared,
    request: Request,
    conn: &mut ConnState,
) -> io::Result<Response> {
    match request {
        Request::Query(q) => route_items(shared, conn, vec![BatchItem::Query(q)])
            .map(|mut replies| single_reply(replies.remove(0))),
        Request::Update(u) => route_items(shared, conn, vec![BatchItem::Update(u)])
            .map(|mut replies| single_reply(replies.remove(0))),
        Request::Sql { seq, sql } => handle_sql(shared, conn, seq, &sql),
        Request::Batch(items) => route_items(shared, conn, items).map(Response::BatchOk),
        Request::Hello { version, .. } => {
            if version != crate::protocol::PROTOCOL_VERSION {
                return Ok(Response::Error {
                    code: error_code::BAD_FRAME,
                    message: format!(
                        "protocol version mismatch: peer speaks v{version}, this router \
                         speaks v{}",
                        crate::protocol::PROTOCOL_VERSION
                    ),
                });
            }
            Ok(Response::HelloOk(router_info(shared)))
        }
        Request::Reshard { shard, to_node } => Ok(do_reshard(shared, conn, shard, to_node)),
        Request::Stats => handle_stats(shared, conn),
        Request::Telemetry => handle_telemetry(shared, conn),
        Request::Shutdown => {
            // Shut the whole cluster down: the router owns its nodes'
            // lifecycle the way `delta-serverd` owns its shards'.
            let route = shared.route.read().expect("route lock");
            for node in 0..shared.nodes.len() {
                match conn.link(shared, node, route.epoch) {
                    Ok(link) => {
                        if let Err(e) = link.shutdown() {
                            eprintln!("delta-router: node {node} shutdown failed: {e}");
                        }
                    }
                    Err(e) => eprintln!("delta-router: node {node} unreachable for shutdown: {e}"),
                }
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(Response::ShutdownOk)
        }
        Request::NodeOps(_)
        | Request::DetachShard { .. }
        | Request::AttachShard { .. }
        | Request::SetEpoch { .. } => Ok(Response::Error {
            code: error_code::NOT_CLUSTERED,
            message: "the router hosts no shards; node-level verbs go to delta-serverd".into(),
        }),
        // Nested tags are rejected by the decoder.
        Request::Tagged { inner, .. } => handle_request(shared, *inner, conn),
    }
}

/// The core routing path: splits every item over the cluster
/// partitioner, groups the sub-events per owning node (client order
/// preserved within each node, hence per shard), executes one `NodeOps`
/// frame per touched node, and merges the per-op replies back into
/// per-item replies exactly like the server's in-process fan-out does.
fn route_items(
    shared: &RouterShared,
    conn: &mut ConnState,
    items: Vec<BatchItem>,
) -> io::Result<Vec<BatchReply>> {
    struct QueryAcc {
        sent: u16,
        local: u16,
        shipped: u16,
    }
    // The read lock pins the routing map for the whole request: a
    // concurrent reshard waits, so a request never straddles two epochs.
    let route = shared.route.read().expect("route lock");
    let mut replies: Vec<Option<BatchReply>> = Vec::with_capacity(items.len());
    replies.resize_with(items.len(), || None);
    let mut accs: Vec<Option<QueryAcc>> = Vec::with_capacity(items.len());
    accs.resize_with(items.len(), || None);
    let mut plans: Vec<NodePlan> = (0..shared.nodes.len())
        .map(|_| NodePlan::default())
        .collect();

    for (i, item) in items.into_iter().enumerate() {
        match item {
            BatchItem::Query(q) => {
                if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
                    replies[i] = Some(BatchReply::Error {
                        code: error_code::UNKNOWN_OBJECT,
                        message: format!("object {bad} is outside the catalog"),
                    });
                    continue;
                }
                let subs = shared.map.split_query(&q, &shared.catalog);
                accs[i] = Some(QueryAcc {
                    sent: subs.len() as u16,
                    local: 0,
                    shipped: 0,
                });
                for (s, sub) in subs {
                    let plan = &mut plans[route.owner[s] as usize];
                    plan.ops.push(NodeOp {
                        shard: s as u16,
                        item: BatchItem::Query(sub),
                    });
                    plan.items.push(i);
                }
            }
            BatchItem::Update(u) => {
                if u.object.index() >= shared.catalog.len() {
                    replies[i] = Some(BatchReply::Error {
                        code: error_code::UNKNOWN_OBJECT,
                        message: format!("object {} is outside the catalog", u.object),
                    });
                    continue;
                }
                let (s, local) = shared.map.split_update(&u);
                let plan = &mut plans[route.owner[s] as usize];
                plan.ops.push(NodeOp {
                    shard: s as u16,
                    item: BatchItem::Update(local),
                });
                plan.items.push(i);
            }
        }
    }

    for (node, plan) in plans.iter().enumerate() {
        if plan.ops.is_empty() {
            continue;
        }
        let node_replies = node_ops(shared, conn, node, route.epoch, &plan.ops)?;
        if node_replies.len() != plan.ops.len() {
            return Err(io::Error::other(format!(
                "node {node} answered {} replies for {} ops",
                node_replies.len(),
                plan.ops.len()
            )));
        }
        for (reply, &item) in node_replies.into_iter().zip(&plan.items) {
            match reply {
                BatchReply::Query {
                    local_answers,
                    shipped,
                    ..
                } => {
                    let acc = accs[item].as_mut().expect("query reply for non-query item");
                    acc.local += local_answers;
                    acc.shipped += shipped;
                }
                BatchReply::Update { shard, version } => {
                    replies[item] = Some(BatchReply::Update { shard, version });
                }
                // An error (contract violation) poisons its item only,
                // taking precedence over sub-queries other nodes served
                // — identical to the in-process batch semantics.
                BatchReply::Error { code, message } => {
                    replies[item] = Some(BatchReply::Error { code, message });
                }
            }
        }
    }

    Ok(replies
        .into_iter()
        .zip(accs)
        .map(|(reply, acc)| match (reply, acc) {
            (Some(r), _) => r,
            (None, Some(acc)) => BatchReply::Query {
                shards_touched: acc.sent,
                local_answers: acc.local,
                shipped: acc.shipped,
            },
            (None, None) => BatchReply::Error {
                code: error_code::BAD_FRAME,
                message: "item produced no outcome".to_string(),
            },
        })
        .collect())
}

/// Converts a single-item routed reply back into the lockstep response
/// shape (`QueryOk`/`UpdateOk`/`Error`, or `SqlOk` upstream).
fn single_reply(reply: BatchReply) -> Response {
    match reply {
        BatchReply::Query {
            shards_touched,
            local_answers,
            shipped,
        } => Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        },
        BatchReply::Update { shard, version } => Response::UpdateOk { shard, version },
        BatchReply::Error { code, message } => Response::Error { code, message },
    }
}

fn handle_sql(
    shared: &RouterShared,
    conn: &mut ConnState,
    seq: u64,
    sql: &str,
) -> io::Result<Response> {
    let Some(compiler) = conn.compiler.clone() else {
        return Ok(Response::Error {
            code: error_code::SQL_UNAVAILABLE,
            message: "router has no SQL frontend (start it from a workload preset)".to_string(),
        });
    };
    let compiled = match compiler.compile(sql) {
        Ok(c) => c,
        Err(QueryError::Parse(e)) => {
            let span = e.span();
            return Ok(Response::SqlRejected {
                stage: SqlStage::Parse,
                span_start: span.start as u32,
                span_end: span.end as u32,
                message: e.to_string(),
            });
        }
        Err(QueryError::Analyze(e)) => {
            return Ok(Response::SqlRejected {
                stage: SqlStage::Analyze,
                span_start: 0,
                span_end: 0,
                message: e.to_string(),
            });
        }
    };
    let objects = compiled.objects.len() as u32;
    let event = compiled.into_event(seq);
    let (result_bytes, tolerance, kind) = (event.result_bytes, event.tolerance, event.kind);
    let mut replies = route_items(shared, conn, vec![BatchItem::Query(event)])?;
    Ok(match single_reply(replies.remove(0)) {
        Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        } => Response::SqlOk {
            shards_touched,
            local_answers,
            shipped,
            objects,
            result_bytes,
            tolerance,
            kind,
        },
        other => other,
    })
}

fn handle_stats(shared: &RouterShared, conn: &mut ConnState) -> io::Result<Response> {
    let route = shared.route.read().expect("route lock");
    let mut shards: Vec<ShardStats> = Vec::new();
    for node in 0..shared.nodes.len() {
        let link = conn.link(shared, node, route.epoch)?;
        shards.extend(link.stats()?.shards);
    }
    shards.sort_by_key(|s| s.shard);
    Ok(Response::StatsOk(StatsSnapshot { shards }))
}

/// The cluster-wide scrape: every node's snapshot folded into the
/// router's own. Counters add, gauges take the max, histograms merge
/// bucket-wise — and the shared `conn.*` names mean the wire totals come
/// out as cluster totals, while `shard.*`/`router.*` names stay
/// per-tier by construction.
fn handle_telemetry(shared: &RouterShared, conn: &mut ConnState) -> io::Result<Response> {
    let route = shared.route.read().expect("route lock");
    let mut merged = shared.telemetry.snapshot();
    for node in 0..shared.nodes.len() {
        let link = conn.link(shared, node, route.epoch)?;
        merged.merge(&link.telemetry()?);
    }
    Ok(Response::TelemetryOk(merged))
}

fn router_info(shared: &RouterShared) -> NodeInfo {
    let route = shared.route.read().expect("route lock");
    NodeInfo {
        role: NodeRole::Router,
        node: 0,
        nodes: shared.nodes.len() as u16,
        epoch: route.epoch,
        cluster_shards: shared.map.n_shards() as u16,
        partitioner: shared.map.kind().to_string(),
        catalog_objects: shared.catalog.len() as u64,
        catalog_bytes: shared.catalog.total_bytes(),
        hosted: (0..shared.map.n_shards() as u16).collect(),
    }
}

/// The live-resharding coordinator. Runs under the routing write lock,
/// so every client handler is quiesced between epochs.
fn do_reshard(shared: &RouterShared, conn: &mut ConnState, shard: u16, to_node: u16) -> Response {
    let fail = |message: String| Response::Error {
        code: error_code::RESHARD_FAILED,
        message,
    };
    if shard as usize >= shared.map.n_shards() {
        return fail(format!(
            "shard {shard} out of range 0..{}",
            shared.map.n_shards()
        ));
    }
    if to_node as usize >= shared.nodes.len() {
        return fail(format!(
            "node {to_node} out of range 0..{}",
            shared.nodes.len()
        ));
    }
    let mut route = shared.route.write().expect("route lock");
    let from = route.owner[shard as usize];
    if from == to_node {
        // Nothing to move; the current epoch already describes it.
        return Response::ReshardOk { epoch: route.epoch };
    }
    // The admin verbs are deliberately exempt from epoch fencing, so the
    // existing links work across the transition.
    let admin = |conn: &mut ConnState, node: u16, req: &Request| -> io::Result<Response> {
        conn.link(shared, node as usize, route.epoch)?.request(req)
    };
    // Step 1: drain + snapshot at the old owner.
    let t_detach = Instant::now();
    let state = match admin(conn, from, &Request::DetachShard { shard }) {
        Ok(Response::ShardState { state, .. }) => state,
        Ok(other) => return fail(format!("detach at node {from}: unexpected {other:?}")),
        Err(e) => return fail(format!("detach at node {from}: {e}")),
    };
    shared.rt.reshard_detach.record_duration(t_detach.elapsed());
    // Step 2: restore at the new owner. On failure, try to put the shard
    // back where it was — the state blob must not evaporate.
    let t_attach = Instant::now();
    match admin(
        conn,
        to_node,
        &Request::AttachShard {
            shard,
            state: state.clone(),
        },
    ) {
        Ok(Response::AttachOk { .. }) => {
            shared.rt.reshard_attach.record_duration(t_attach.elapsed());
        }
        outcome => {
            let rollback = match admin(
                conn,
                from,
                &Request::AttachShard {
                    shard,
                    state: state.clone(),
                },
            ) {
                Ok(Response::AttachOk { .. }) => format!("shard restored at node {from}"),
                // The in-memory blob is now the ONLY copy of the
                // shard's state (detach removed the node's snapshot
                // file); spill it to the router's disk so the operator
                // can re-attach it by hand.
                other => {
                    let spill = std::env::temp_dir().join(format!(
                        "delta-orphan-shard-{shard}-epoch{}.jsonl",
                        route.epoch
                    ));
                    match std::fs::write(&spill, &state) {
                        Ok(()) => format!(
                            "ROLLBACK FAILED ({other:?}) — shard {shard} is OFFLINE; its \
                             engine state was saved to {} on the router host; re-attach it \
                             with an AttachShard frame once a node is reachable",
                            spill.display()
                        ),
                        Err(e) => format!(
                            "ROLLBACK FAILED ({other:?}) AND the state spill to {} failed \
                             ({e}) — shard {shard} is OFFLINE and its state is lost",
                            spill.display()
                        ),
                    }
                }
            };
            return fail(format!(
                "attach at node {to_node} failed ({outcome:?}); {rollback}"
            ));
        }
    }
    // Step 3: new epoch everywhere, then adopt the new map. A node that
    // misses the bump would fence the router's next ops forever, so a
    // SetEpoch failure is a hard error for the operator.
    let epoch = route.epoch + 1;
    let t_epoch = Instant::now();
    for node in 0..shared.nodes.len() as u16 {
        match admin(conn, node, &Request::SetEpoch { epoch }) {
            Ok(Response::EpochOk { .. }) => {}
            other => {
                return fail(format!(
                    "SetEpoch({epoch}) at node {node} failed ({other:?}); cluster is between \
                     epochs — restart the router against consistent nodes"
                ))
            }
        }
    }
    shared.rt.reshard_epoch.record_duration(t_epoch.elapsed());
    route.owner[shard as usize] = to_node;
    route.epoch = epoch;
    shared.telemetry.gauge("router.epoch").set(epoch);
    Response::ReshardOk { epoch }
}
