//! Server configuration: shard count, cache budget, policy choice and
//! the optional SQL frontend.

use delta_core::{Benefit, BenefitConfig, CachingPolicy, NoCache, Replica, VCover};
use delta_workload::WorkloadConfig;

/// Which decoupling policy each shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's incremental vertex-cover algorithm (default).
    VCover,
    /// The windowed exponential-smoothing greedy baseline.
    Benefit,
    /// Ship every query (no cache) — a yardstick, useful for smoke tests.
    NoCache,
    /// Mirror the repository — the other yardstick.
    Replica,
}

impl PolicyKind {
    /// Builds a fresh policy instance for one shard.
    pub fn build(&self, cache_bytes: u64, seed: u64) -> Box<dyn CachingPolicy + Send> {
        match self {
            PolicyKind::VCover => Box::new(VCover::new(cache_bytes, seed)),
            PolicyKind::Benefit => Box::new(Benefit::new(cache_bytes, BenefitConfig::default())),
            PolicyKind::NoCache => Box::new(NoCache),
            PolicyKind::Replica => Box::new(Replica),
        }
    }

    /// Parses a policy name (as accepted by `delta-serverd --policy`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "vcover" => Ok(PolicyKind::VCover),
            "benefit" => Ok(PolicyKind::Benefit),
            "nocache" => Ok(PolicyKind::NoCache),
            "replica" => Ok(PolicyKind::Replica),
            other => Err(format!(
                "unknown policy {other:?}; expected vcover, benefit, nocache or replica"
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::VCover => write!(f, "vcover"),
            PolicyKind::Benefit => write!(f, "benefit"),
            PolicyKind::NoCache => write!(f, "nocache"),
            PolicyKind::Replica => write!(f, "replica"),
        }
    }
}

/// Everything `delta-serverd` needs besides the object catalog.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7117` (port 0 picks one).
    pub bind: String,
    /// Number of shards (each owns a policy, repository slice and cache).
    pub n_shards: usize,
    /// Total middleware cache budget in bytes, split across shards
    /// proportionally to their share of the catalog.
    pub cache_bytes: u64,
    /// Policy each shard runs.
    pub policy: PolicyKind,
    /// Master seed; shard `s` seeds its policy with `seed + s`.
    pub seed: u64,
    /// Workload configuration the SQL frontend is built from: its seed,
    /// blob count and target object count reconstruct the schema / sky
    /// model / spatial partition that produced the served catalog, so
    /// `Request::Sql` compiles against the same object mapping. `None`
    /// disables SQL frames (they get `error_code::SQL_UNAVAILABLE`).
    pub frontend: Option<WorkloadConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:7117".to_string(),
            n_shards: 4,
            cache_bytes: 0,
            policy: PolicyKind::VCover,
            seed: 0xDE17A,
            frontend: None,
        }
    }
}

impl ServerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_shards == 0 {
            return Err("n_shards must be at least 1".into());
        }
        if self.n_shards > u16::MAX as usize {
            return Err("n_shards exceeds u16".into());
        }
        if let Some(f) = &self.frontend {
            f.validate()
                .map_err(|e| format!("frontend workload config: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips() {
        for kind in [
            PolicyKind::VCover,
            PolicyKind::Benefit,
            PolicyKind::NoCache,
            PolicyKind::Replica,
        ] {
            assert_eq!(PolicyKind::parse(&kind.to_string()), Ok(kind));
        }
        assert!(PolicyKind::parse("lru").is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = ServerConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.n_shards = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn built_policies_report_names() {
        assert_eq!(PolicyKind::VCover.build(1_000, 1).name(), "VCover");
        assert_eq!(PolicyKind::NoCache.build(1_000, 1).name(), "NoCache");
    }
}
