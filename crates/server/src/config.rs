//! Server configuration: shard count, cache budget, policy choice,
//! partitioner choice, the optional SQL frontend, and the optional
//! cluster role.

use delta_core::{
    Benefit, BenefitConfig, CachingPolicy, NoCache, ObjCache, Replica, SimContext, VCover,
};
use delta_policy::{Gdsf, GreedyDualSize, Lru};
use delta_workload::{QueryEvent, UpdateEvent, WorkloadConfig};

pub use crate::partition::PartitionerKind;

/// Which decoupling policy each shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's incremental vertex-cover algorithm (default).
    VCover,
    /// The windowed exponential-smoothing greedy baseline.
    Benefit,
    /// Ship every query (no cache) — a yardstick, useful for smoke tests.
    NoCache,
    /// Mirror the repository — the other yardstick.
    Replica,
    /// Classic object caching under Greedy-Dual-Size (the paper's
    /// `A_obj` run *without* the decoupling framework around it — the
    /// web-proxy baseline).
    Gds,
    /// Classic object caching under GDS-Frequency.
    Gdsf,
    /// Classic object caching under size-aware LRU.
    Lru,
    /// A policy that deliberately violates the satisfaction contract on
    /// every query. Exists so hostile tests can prove the server maps
    /// `EngineError::ContractViolated` to a typed error frame instead of
    /// losing a shard thread; never use it to serve anything.
    Broken,
}

/// The deliberately contract-violating policy behind
/// [`PolicyKind::Broken`]: it ignores every query.
#[derive(Clone, Copy, Debug, Default)]
struct BrokenPolicy;

impl CachingPolicy for BrokenPolicy {
    fn name(&self) -> &str {
        "Broken"
    }
    fn on_query(&mut self, _q: &QueryEvent, _ctx: &mut SimContext<'_>) {}
    fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
}

impl PolicyKind {
    /// Builds a fresh policy instance for one shard.
    pub fn build(&self, cache_bytes: u64, seed: u64) -> Box<dyn CachingPolicy + Send> {
        match self {
            PolicyKind::VCover => Box::new(VCover::new(cache_bytes, seed)),
            PolicyKind::Benefit => Box::new(Benefit::new(cache_bytes, BenefitConfig::default())),
            PolicyKind::NoCache => Box::new(NoCache),
            PolicyKind::Replica => Box::new(Replica),
            PolicyKind::Gds => Box::new(ObjCache::new("Gds", GreedyDualSize::new(cache_bytes))),
            PolicyKind::Gdsf => Box::new(ObjCache::new("Gdsf", Gdsf::new(cache_bytes))),
            PolicyKind::Lru => Box::new(ObjCache::new("Lru", Lru::new(cache_bytes))),
            PolicyKind::Broken => Box::new(BrokenPolicy),
        }
    }

    /// The name the built policy reports (`CachingPolicy::name`), used
    /// in stats frames and snapshot headers.
    pub fn policy_name(&self) -> &'static str {
        match self {
            PolicyKind::VCover => "VCover",
            PolicyKind::Benefit => "Benefit",
            PolicyKind::NoCache => "NoCache",
            PolicyKind::Replica => "Replica",
            PolicyKind::Gds => "Gds",
            PolicyKind::Gdsf => "Gdsf",
            PolicyKind::Lru => "Lru",
            PolicyKind::Broken => "Broken",
        }
    }

    /// Parses a policy name (as accepted by `delta-serverd --policy`).
    /// `broken` is accepted but undocumented — it exists for hostile
    /// testing only.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "vcover" => Ok(PolicyKind::VCover),
            "benefit" => Ok(PolicyKind::Benefit),
            "nocache" => Ok(PolicyKind::NoCache),
            "replica" => Ok(PolicyKind::Replica),
            "gds" => Ok(PolicyKind::Gds),
            "gdsf" => Ok(PolicyKind::Gdsf),
            "lru" => Ok(PolicyKind::Lru),
            "broken" => Ok(PolicyKind::Broken),
            other => Err(format!(
                "unknown policy {other:?}; expected vcover, benefit, nocache, replica, \
                 gds, gdsf or lru"
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::VCover => write!(f, "vcover"),
            PolicyKind::Benefit => write!(f, "benefit"),
            PolicyKind::NoCache => write!(f, "nocache"),
            PolicyKind::Replica => write!(f, "replica"),
            PolicyKind::Gds => write!(f, "gds"),
            PolicyKind::Gdsf => write!(f, "gdsf"),
            PolicyKind::Lru => write!(f, "lru"),
            PolicyKind::Broken => write!(f, "broken"),
        }
    }
}

/// Which connection front door a tier (server or router) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontDoor {
    /// Nonblocking epoll reactor threads (the default): a few event
    /// loops multiplex every connection, so concurrent-connection
    /// capacity is bounded by fds and memory, not threads.
    Reactor {
        /// Reactor event-loop threads; `0` picks a small automatic
        /// count from the machine's parallelism.
        threads: usize,
    },
    /// One blocking thread per connection — the pre-reactor front door,
    /// kept for comparison runs and as a fallback.
    Threaded,
}

impl Default for FrontDoor {
    fn default() -> Self {
        FrontDoor::Reactor { threads: 0 }
    }
}

impl FrontDoor {
    /// Parses a front-door name (as accepted by `--front`):
    /// `reactor` or `threaded`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "reactor" => Ok(FrontDoor::Reactor { threads: 0 }),
            "threaded" => Ok(FrontDoor::Threaded),
            other => Err(format!(
                "unknown front door {other:?}; expected reactor or threaded"
            )),
        }
    }
}

impl std::fmt::Display for FrontDoor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontDoor::Reactor { .. } => write!(f, "reactor"),
            FrontDoor::Threaded => write!(f, "threaded"),
        }
    }
}

/// Cluster-node identity: which node this server is and which of the
/// global shards it hosts at startup. Present only on servers fronted by
/// a `delta-routerd`; standalone servers host every shard and never see
/// a routing epoch.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// This node's index (0-based).
    pub node: u16,
    /// Total nodes in the cluster.
    pub nodes: u16,
    /// Global shard ids this node hosts at startup. Resharding moves
    /// shards between nodes at runtime.
    pub hosted: Vec<u16>,
}

impl ClusterConfig {
    /// The default shard placement: node `i` of `n` hosts every shard
    /// `s` with `s % n == i`.
    ///
    /// # Panics
    /// Panics on `nodes == 0` — callers validate the node count first.
    pub fn default_hosted(node: u16, nodes: u16, n_shards: usize) -> Vec<u16> {
        assert!(nodes > 0, "cluster must have at least one node");
        (0..n_shards as u16).filter(|s| s % nodes == node).collect()
    }
}

/// Primary/backup replication for a cluster node (`--replicas N`).
///
/// Backup placement follows the successor rule: node `i` ships every
/// shard it hosts as a primary to nodes `(i+1) .. (i+replicas)` mod
/// `nodes`, so every node knows its targets from the peer list alone —
/// no placement negotiation. The peer list names every node's
/// *client-facing* address in node-id order (replication rides the
/// same port as everything else); entries for this node itself are
/// carried but never dialed.
#[derive(Clone, Debug)]
pub struct ReplicationConfig {
    /// Backups per shard. Zero disables replication entirely — the
    /// exact pre-replication data path, byte for byte and branch for
    /// branch.
    pub replicas: u16,
    /// Every node's address, indexed by node id.
    pub peers: Vec<String>,
    /// When set, only these global shards are accepted as backups on
    /// this node (`--backup-of`); `None` accepts a backup of any shard
    /// this node does not currently serve as primary.
    pub backup_of: Option<Vec<u16>>,
}

/// Everything `delta-serverd` needs besides the object catalog.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7117` (port 0 picks one).
    pub bind: String,
    /// Number of shards in the partitioning. In cluster mode this is the
    /// *cluster-wide* shard count; the node hosts the subset named in
    /// [`ClusterConfig::hosted`].
    pub n_shards: usize,
    /// How objects map to shards.
    pub partitioner: PartitionerKind,
    /// Total middleware cache budget in bytes, split across shards
    /// proportionally to their share of the catalog. In cluster mode
    /// this is the cluster-wide budget (every node must be given the
    /// same value, or per-shard budgets would disagree across moves).
    pub cache_bytes: u64,
    /// Policy each shard runs.
    pub policy: PolicyKind,
    /// Master seed; shard `s` seeds its policy with `seed + s`. In
    /// cluster mode every node must share it, so a shard rebuilt on a
    /// new owner after a reshard gets the identical policy.
    pub seed: u64,
    /// Workload configuration the SQL frontend is built from: its seed,
    /// blob count and target object count reconstruct the schema / sky
    /// model / spatial partition that produced the served catalog, so
    /// `Request::Sql` compiles against the same object mapping. `None`
    /// disables SQL frames (they get `error_code::SQL_UNAVAILABLE`).
    pub frontend: Option<WorkloadConfig>,
    /// Warm-restart directory. When set, each hosted shard writes an
    /// engine snapshot (`shard-N.jsonl`) on graceful shutdown, and on
    /// startup any snapshot found there is validated against the shard's
    /// sub-catalog and policy, then restored — the server resumes with
    /// its caches, ledgers and update logs exactly as it left them. A
    /// detached shard's file is removed, so a cold restart cannot
    /// resurrect a shard that moved away.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Cluster role, when this server is one node of a routed cluster.
    pub cluster: Option<ClusterConfig>,
    /// Which connection front door serves clients.
    pub front: FrontDoor,
    /// How long a connection may sit mid-frame (or on a blocked flush)
    /// before it is reaped as half-open. Tests shrink this to keep reap
    /// assertions fast.
    pub stall_limit: std::time::Duration,
    /// Fault injection (`--chaos-node-latency-ms`): when set, every
    /// `NodeOps` frame this node executes first sleeps for the link
    /// model's transfer time, as if the node sat behind a slow WAN hop.
    /// Chaos tests point this at one node of a cluster to prove the
    /// router's data plane isolates the slowdown to the shards that
    /// node owns. `None` (the default) adds no work to the hot path.
    pub chaos_link: Option<delta_net::LinkModel>,
    /// Primary/backup replication (`--replicas N`). Requires a cluster
    /// role; `None` (the default) is the exact unreplicated data path.
    pub replication: Option<ReplicationConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:7117".to_string(),
            n_shards: 4,
            partitioner: PartitionerKind::RoundRobin,
            cache_bytes: 0,
            policy: PolicyKind::VCover,
            seed: 0xDE17A,
            frontend: None,
            snapshot_dir: None,
            cluster: None,
            front: FrontDoor::default(),
            stall_limit: crate::connection::STALL_LIMIT,
            chaos_link: None,
            replication: None,
        }
    }
}

impl ServerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_shards == 0 {
            return Err("n_shards must be at least 1".into());
        }
        if self.n_shards > u16::MAX as usize {
            return Err("n_shards exceeds u16".into());
        }
        if self.stall_limit.is_zero() {
            return Err("stall_limit must be nonzero".into());
        }
        if let Some(f) = &self.frontend {
            f.validate()
                .map_err(|e| format!("frontend workload config: {e}"))?;
        }
        if let Some(c) = &self.cluster {
            if c.nodes == 0 {
                return Err("cluster must have at least one node".into());
            }
            if c.node >= c.nodes {
                return Err(format!("node id {} out of range 0..{}", c.node, c.nodes));
            }
            let mut seen = vec![false; self.n_shards];
            for &s in &c.hosted {
                if (s as usize) >= self.n_shards {
                    return Err(format!(
                        "hosted shard {s} out of range 0..{}",
                        self.n_shards
                    ));
                }
                if seen[s as usize] {
                    return Err(format!("shard {s} hosted twice"));
                }
                seen[s as usize] = true;
            }
        }
        if let Some(r) = &self.replication {
            let Some(c) = &self.cluster else {
                return Err("replication requires a cluster role".into());
            };
            if r.replicas >= c.nodes {
                return Err(format!(
                    "replicas {} must be fewer than the {} cluster nodes",
                    r.replicas, c.nodes
                ));
            }
            if r.replicas > 0 && r.peers.len() != c.nodes as usize {
                return Err(format!(
                    "peer list names {} nodes, cluster has {}",
                    r.peers.len(),
                    c.nodes
                ));
            }
            if let Some(backup_of) = &r.backup_of {
                for &s in backup_of {
                    if (s as usize) >= self.n_shards {
                        return Err(format!(
                            "backup shard {s} out of range 0..{}",
                            self.n_shards
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips() {
        for kind in [
            PolicyKind::VCover,
            PolicyKind::Benefit,
            PolicyKind::NoCache,
            PolicyKind::Replica,
            PolicyKind::Gds,
            PolicyKind::Gdsf,
            PolicyKind::Lru,
            PolicyKind::Broken,
        ] {
            assert_eq!(PolicyKind::parse(&kind.to_string()), Ok(kind));
            assert_eq!(
                kind.build(1_000, 1).name(),
                kind.policy_name(),
                "policy_name must match what the built policy reports"
            );
        }
        assert!(PolicyKind::parse("fifo").is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = ServerConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.n_shards = 0;
        assert!(cfg.validate().is_err());
        cfg.n_shards = 4;
        cfg.cluster = Some(ClusterConfig {
            node: 1,
            nodes: 2,
            hosted: vec![1, 3],
        });
        assert!(cfg.validate().is_ok());
        cfg.cluster = Some(ClusterConfig {
            node: 2,
            nodes: 2,
            hosted: vec![],
        });
        assert!(cfg.validate().is_err(), "node id out of range");
        cfg.cluster = Some(ClusterConfig {
            node: 0,
            nodes: 2,
            hosted: vec![0, 0],
        });
        assert!(cfg.validate().is_err(), "duplicate hosted shard");
        cfg.cluster = Some(ClusterConfig {
            node: 0,
            nodes: 2,
            hosted: vec![9],
        });
        assert!(cfg.validate().is_err(), "hosted shard out of range");
    }

    #[test]
    fn replication_validation() {
        let mut cfg = ServerConfig {
            cluster: Some(ClusterConfig {
                node: 0,
                nodes: 2,
                hosted: vec![0, 2],
            }),
            ..ServerConfig::default()
        };
        cfg.replication = Some(ReplicationConfig {
            replicas: 1,
            peers: vec!["a:1".into(), "b:2".into()],
            backup_of: None,
        });
        assert!(cfg.validate().is_ok());

        cfg.replication = Some(ReplicationConfig {
            replicas: 2,
            peers: vec!["a:1".into(), "b:2".into()],
            backup_of: None,
        });
        assert!(cfg.validate().is_err(), "replicas must be < nodes");

        cfg.replication = Some(ReplicationConfig {
            replicas: 1,
            peers: vec!["a:1".into()],
            backup_of: None,
        });
        assert!(cfg.validate().is_err(), "peer list must cover every node");

        cfg.replication = Some(ReplicationConfig {
            replicas: 1,
            peers: vec!["a:1".into(), "b:2".into()],
            backup_of: Some(vec![9]),
        });
        assert!(cfg.validate().is_err(), "backup shard out of range");

        cfg.cluster = None;
        cfg.replication = Some(ReplicationConfig {
            replicas: 1,
            peers: vec!["a:1".into(), "b:2".into()],
            backup_of: None,
        });
        assert!(cfg.validate().is_err(), "replication requires a cluster");
    }

    #[test]
    fn default_hosted_covers_every_shard_once() {
        let a = ClusterConfig::default_hosted(0, 2, 5);
        let b = ClusterConfig::default_hosted(1, 2, 5);
        assert_eq!(a, vec![0, 2, 4]);
        assert_eq!(b, vec![1, 3]);
    }

    #[test]
    fn built_policies_report_names() {
        assert_eq!(PolicyKind::VCover.build(1_000, 1).name(), "VCover");
        assert_eq!(PolicyKind::NoCache.build(1_000, 1).name(), "NoCache");
        assert_eq!(PolicyKind::Gds.build(1_000, 1).name(), "Gds");
        assert_eq!(PolicyKind::Gdsf.build(1_000, 1).name(), "Gdsf");
        assert_eq!(PolicyKind::Lru.build(1_000, 1).name(), "Lru");
    }
}
