//! Server configuration: shard count, cache budget, policy choice and
//! the optional SQL frontend.

use delta_core::{Benefit, BenefitConfig, CachingPolicy, NoCache, Replica, SimContext, VCover};
use delta_workload::{QueryEvent, UpdateEvent, WorkloadConfig};

/// Which decoupling policy each shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's incremental vertex-cover algorithm (default).
    VCover,
    /// The windowed exponential-smoothing greedy baseline.
    Benefit,
    /// Ship every query (no cache) — a yardstick, useful for smoke tests.
    NoCache,
    /// Mirror the repository — the other yardstick.
    Replica,
    /// A policy that deliberately violates the satisfaction contract on
    /// every query. Exists so hostile tests can prove the server maps
    /// `EngineError::ContractViolated` to a typed error frame instead of
    /// losing a shard thread; never use it to serve anything.
    Broken,
}

/// The deliberately contract-violating policy behind
/// [`PolicyKind::Broken`]: it ignores every query.
#[derive(Clone, Copy, Debug, Default)]
struct BrokenPolicy;

impl CachingPolicy for BrokenPolicy {
    fn name(&self) -> &str {
        "Broken"
    }
    fn on_query(&mut self, _q: &QueryEvent, _ctx: &mut SimContext<'_>) {}
    fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
}

impl PolicyKind {
    /// Builds a fresh policy instance for one shard.
    pub fn build(&self, cache_bytes: u64, seed: u64) -> Box<dyn CachingPolicy + Send> {
        match self {
            PolicyKind::VCover => Box::new(VCover::new(cache_bytes, seed)),
            PolicyKind::Benefit => Box::new(Benefit::new(cache_bytes, BenefitConfig::default())),
            PolicyKind::NoCache => Box::new(NoCache),
            PolicyKind::Replica => Box::new(Replica),
            PolicyKind::Broken => Box::new(BrokenPolicy),
        }
    }

    /// The name the built policy reports (`CachingPolicy::name`), used
    /// in stats frames and snapshot headers.
    pub fn policy_name(&self) -> &'static str {
        match self {
            PolicyKind::VCover => "VCover",
            PolicyKind::Benefit => "Benefit",
            PolicyKind::NoCache => "NoCache",
            PolicyKind::Replica => "Replica",
            PolicyKind::Broken => "Broken",
        }
    }

    /// Parses a policy name (as accepted by `delta-serverd --policy`).
    /// `broken` is accepted but undocumented — it exists for hostile
    /// testing only.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "vcover" => Ok(PolicyKind::VCover),
            "benefit" => Ok(PolicyKind::Benefit),
            "nocache" => Ok(PolicyKind::NoCache),
            "replica" => Ok(PolicyKind::Replica),
            "broken" => Ok(PolicyKind::Broken),
            other => Err(format!(
                "unknown policy {other:?}; expected vcover, benefit, nocache or replica"
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::VCover => write!(f, "vcover"),
            PolicyKind::Benefit => write!(f, "benefit"),
            PolicyKind::NoCache => write!(f, "nocache"),
            PolicyKind::Replica => write!(f, "replica"),
            PolicyKind::Broken => write!(f, "broken"),
        }
    }
}

/// Everything `delta-serverd` needs besides the object catalog.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7117` (port 0 picks one).
    pub bind: String,
    /// Number of shards (each owns a policy, repository slice and cache).
    pub n_shards: usize,
    /// Total middleware cache budget in bytes, split across shards
    /// proportionally to their share of the catalog.
    pub cache_bytes: u64,
    /// Policy each shard runs.
    pub policy: PolicyKind,
    /// Master seed; shard `s` seeds its policy with `seed + s`.
    pub seed: u64,
    /// Workload configuration the SQL frontend is built from: its seed,
    /// blob count and target object count reconstruct the schema / sky
    /// model / spatial partition that produced the served catalog, so
    /// `Request::Sql` compiles against the same object mapping. `None`
    /// disables SQL frames (they get `error_code::SQL_UNAVAILABLE`).
    pub frontend: Option<WorkloadConfig>,
    /// Warm-restart directory. When set, each shard writes an engine
    /// snapshot (`shard-N.jsonl`) on graceful shutdown, and on startup
    /// any snapshot found there is validated against the shard's
    /// sub-catalog and policy, then restored — the server resumes with
    /// its caches, ledgers and update logs exactly as it left them.
    pub snapshot_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:7117".to_string(),
            n_shards: 4,
            cache_bytes: 0,
            policy: PolicyKind::VCover,
            seed: 0xDE17A,
            frontend: None,
            snapshot_dir: None,
        }
    }
}

impl ServerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_shards == 0 {
            return Err("n_shards must be at least 1".into());
        }
        if self.n_shards > u16::MAX as usize {
            return Err("n_shards exceeds u16".into());
        }
        if let Some(f) = &self.frontend {
            f.validate()
                .map_err(|e| format!("frontend workload config: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips() {
        for kind in [
            PolicyKind::VCover,
            PolicyKind::Benefit,
            PolicyKind::NoCache,
            PolicyKind::Replica,
            PolicyKind::Broken,
        ] {
            assert_eq!(PolicyKind::parse(&kind.to_string()), Ok(kind));
            assert_eq!(
                kind.build(1_000, 1).name(),
                kind.policy_name(),
                "policy_name must match what the built policy reports"
            );
        }
        assert!(PolicyKind::parse("lru").is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = ServerConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.n_shards = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn built_policies_report_names() {
        assert_eq!(PolicyKind::VCover.build(1_000, 1).name(), "VCover");
        assert_eq!(PolicyKind::NoCache.build(1_000, 1).name(), "NoCache");
    }
}
