//! Typed client for the delta-server wire protocol.

use crate::protocol::{read_frame, write_frame, Request, Response, StatsSnapshot};
use delta_workload::{QueryEvent, UpdateEvent};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Outcome of a query request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// Shards the query fanned out to.
    pub shards_touched: u16,
    /// Sub-queries answered from shard caches.
    pub local_answers: u16,
    /// Sub-queries shipped to the repository.
    pub shipped: u16,
}

/// Outcome of an update request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// Shard that owns the updated object.
    pub shard: u16,
    /// The object's new version at that shard.
    pub version: u64,
}

/// A synchronous connection to a delta-server.
///
/// One request is in flight at a time; open several clients for
/// concurrency (the server is happy to serve many connections).
pub struct DeltaClient {
    stream: TcpStream,
}

impl DeltaClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<DeltaClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(DeltaClient { stream })
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        let response = Response::decode(&payload)?;
        if let Response::Error { code, message } = &response {
            return Err(io::Error::other(format!("server error {code}: {message}")));
        }
        Ok(response)
    }

    /// Serves one query event (objects are global catalog ids).
    pub fn query(&mut self, q: &QueryEvent) -> io::Result<QueryReply> {
        match self.round_trip(&Request::Query(q.clone()))? {
            Response::QueryOk {
                shards_touched,
                local_answers,
                shipped,
            } => Ok(QueryReply {
                shards_touched,
                local_answers,
                shipped,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one update event.
    pub fn update(&mut self, u: &UpdateEvent) -> io::Result<UpdateReply> {
        match self.round_trip(&Request::Update(*u))? {
            Response::UpdateOk { shard, version } => Ok(UpdateReply { shard, version }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the per-shard statistics snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsOk(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(r: &Response) -> io::Error {
    io::Error::other(format!("unexpected response {r:?}"))
}
