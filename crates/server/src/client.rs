//! Typed clients for the delta-server wire protocol: the lockstep
//! [`DeltaClient`] (one request in flight) and the windowed
//! [`PipelinedClient`] (many tagged frames in flight, replies matched by
//! correlation id).

use crate::protocol::{
    read_frame, write_frame, BatchItem, BatchReply, Request, Response, SqlStage, StatsSnapshot,
};
use delta_workload::{QueryEvent, QueryKind, UpdateEvent};
use std::collections::HashSet;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Outcome of a query request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// Shards the query fanned out to.
    pub shards_touched: u16,
    /// Sub-queries answered from shard caches.
    pub local_answers: u16,
    /// Sub-queries shipped to the repository.
    pub shipped: u16,
}

/// Outcome of an update request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// Shard that owns the updated object.
    pub shard: u16,
    /// The object's new version at that shard.
    pub version: u64,
}

/// Outcome of a successfully compiled and served SQL request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SqlReply {
    /// Shards the compiled query fanned out to.
    pub shards_touched: u16,
    /// Sub-queries answered from shard caches.
    pub local_answers: u16,
    /// Sub-queries shipped to the repository.
    pub shipped: u16,
    /// Size of the access set `B(q)` the server compiled.
    pub objects: u32,
    /// The estimated result size ν(q) in bytes.
    pub result_bytes: u64,
    /// The currency requirement `t(q)` parsed from the text.
    pub tolerance: u64,
    /// The server's workload classification of the query.
    pub kind: QueryKind,
}

/// A compile rejection from the server's SQL frontend — the wire form of
/// a [`delta_query::QueryError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlRejection {
    /// The frontend stage that failed.
    pub stage: SqlStage,
    /// Byte span in the SQL text (zero-width for analyze errors).
    pub span: (u32, u32),
    /// The rendered diagnostic.
    pub message: String,
}

impl std::fmt::Display for SqlRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.stage {
            SqlStage::Parse => "parse",
            SqlStage::Analyze => "analyze",
        };
        write!(f, "{} error: {}", stage, self.message)
    }
}

/// A synchronous connection to a delta-server.
///
/// One request is in flight at a time; open several clients for
/// concurrency (the server is happy to serve many connections).
pub struct DeltaClient {
    stream: TcpStream,
}

impl DeltaClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<DeltaClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(DeltaClient { stream })
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        let response = Response::decode(&payload)?;
        if let Response::Error { code, message } = &response {
            return Err(io::Error::other(format!("server error {code}: {message}")));
        }
        Ok(response)
    }

    /// Serves one query event (objects are global catalog ids).
    pub fn query(&mut self, q: &QueryEvent) -> io::Result<QueryReply> {
        match self.round_trip(&Request::Query(q.clone()))? {
            Response::QueryOk {
                shards_touched,
                local_answers,
                shipped,
            } => Ok(QueryReply {
                shards_touched,
                local_answers,
                shipped,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one update event.
    pub fn update(&mut self, u: &UpdateEvent) -> io::Result<UpdateReply> {
        match self.round_trip(&Request::Update(*u))? {
            Response::UpdateOk { shard, version } => Ok(UpdateReply { shard, version }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the per-shard statistics snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsOk(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends raw SQL for server-side compilation at sequence number
    /// `seq`. The outer `Result` is transport/protocol failure; the
    /// inner one distinguishes a served query from a typed compile
    /// rejection.
    pub fn sql(&mut self, seq: u64, sql: &str) -> io::Result<Result<SqlReply, SqlRejection>> {
        let request = Request::Sql {
            seq,
            sql: sql.to_string(),
        };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        match Response::decode(&payload)? {
            Response::SqlOk {
                shards_touched,
                local_answers,
                shipped,
                objects,
                result_bytes,
                tolerance,
                kind,
            } => Ok(Ok(SqlReply {
                shards_touched,
                local_answers,
                shipped,
                objects,
                result_bytes,
                tolerance,
                kind,
            })),
            Response::SqlRejected {
                stage,
                span_start,
                span_end,
                message,
            } => Ok(Err(SqlRejection {
                stage,
                span: (span_start, span_end),
                message,
            })),
            Response::Error { code, message } => {
                Err(io::Error::other(format!("server error {code}: {message}")))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Serves many events in one frame, returning one reply per item in
    /// item order. Per-item failures come back as [`BatchReply::Error`]
    /// without failing the rest of the batch.
    pub fn batch(&mut self, items: &[BatchItem]) -> io::Result<Vec<BatchReply>> {
        match self.round_trip(&Request::Batch(items.to_vec()))? {
            Response::BatchOk(replies) => Ok(replies),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Converts this client into a pipelined one keeping up to `window`
    /// tagged requests in flight.
    pub fn pipelined(self, window: usize) -> PipelinedClient {
        PipelinedClient {
            stream: self.stream,
            window: window.max(1),
            next_corr: 0,
            pending: HashSet::new(),
            completed: Vec::new(),
        }
    }
}

/// A windowed, pipelined connection to a delta-server.
///
/// Requests are wrapped in [`Request::Tagged`] frames with increasing
/// correlation ids; up to `window` of them ride the socket before the
/// client blocks on replies. Replies are matched by correlation id, so
/// the client stays correct even if a server reorders responses (today's
/// server replies strictly in order — the ids are cheap insurance and
/// let `submit` detect cross-talk immediately).
///
/// Responses are *not* interpreted: they accumulate (with their ids) and
/// are handed back from [`PipelinedClient::completed`] or
/// [`PipelinedClient::drain`]. That keeps the window logic independent of
/// the request mix — queries, updates, batches and SQL can interleave in
/// one pipeline.
///
/// The client reads the socket only while the window is full (and on
/// `drain`), so size the window such that `window ×` the largest
/// expected response fits comfortably in the socket buffers: extreme
/// shapes (multi-thousand-item batches × hundreds in flight) can back
/// responses up until the server's bounded write stalls out. The
/// loadgen defaults (batch ≤ a few hundred, window ≤ a few dozen) are
/// orders of magnitude below that regime.
pub struct PipelinedClient {
    stream: TcpStream,
    window: usize,
    next_corr: u64,
    pending: HashSet<u64>,
    completed: Vec<(u64, Response)>,
}

impl PipelinedClient {
    /// The correlation ids still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Submits a request, first reaping replies if the window is full.
    /// Returns the correlation id assigned to this request.
    ///
    /// # Panics
    /// Panics on [`Request::Tagged`] input — the pipeline does its own
    /// tagging.
    pub fn submit(&mut self, request: &Request) -> io::Result<u64> {
        assert!(
            !matches!(request, Request::Tagged { .. }),
            "submit() tags requests itself"
        );
        while self.pending.len() >= self.window {
            self.reap_one()?;
        }
        let corr = self.next_corr;
        self.next_corr += 1;
        let tagged = Request::Tagged {
            corr,
            inner: Box::new(request.clone()),
        };
        write_frame(&mut self.stream, &tagged.encode())?;
        self.pending.insert(corr);
        Ok(corr)
    }

    fn reap_one(&mut self) -> io::Result<()> {
        let payload = read_frame(&mut self.stream)?;
        match Response::decode(&payload)? {
            Response::Tagged { corr, inner } => {
                if !self.pending.remove(&corr) {
                    return Err(io::Error::other(format!(
                        "server echoed unknown correlation id {corr}"
                    )));
                }
                self.completed.push((corr, *inner));
                Ok(())
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Takes the responses that have arrived so far, tagged with their
    /// correlation ids, without blocking for more.
    pub fn completed(&mut self) -> Vec<(u64, Response)> {
        std::mem::take(&mut self.completed)
    }

    /// Waits for every outstanding reply, then returns all accumulated
    /// responses.
    pub fn drain(&mut self) -> io::Result<Vec<(u64, Response)>> {
        while !self.pending.is_empty() {
            self.reap_one()?;
        }
        Ok(self.completed())
    }

    /// Drains the pipeline and converts back into a lockstep client.
    pub fn into_lockstep(mut self) -> io::Result<(DeltaClient, Vec<(u64, Response)>)> {
        let responses = self.drain()?;
        Ok((
            DeltaClient {
                stream: self.stream,
            },
            responses,
        ))
    }
}

fn unexpected(r: &Response) -> io::Error {
    io::Error::other(format!("unexpected response {r:?}"))
}
