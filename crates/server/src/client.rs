//! Typed clients for the delta-server wire protocol: the lockstep
//! [`DeltaClient`] (one request in flight) and the windowed
//! [`PipelinedClient`] (many tagged frames in flight, replies matched by
//! correlation id).

use crate::mux::Correlator;
use crate::protocol::{
    append_frame_with, read_frame_into, BatchItem, BatchReply, NodeInfo, Request, Response,
    SqlStage, StatsSnapshot, PROTOCOL_VERSION,
};
use delta_workload::{QueryEvent, QueryKind, UpdateEvent};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Read-buffer capacity for client connections — large enough that a
/// typical frame (even a windowed burst of tagged batch replies) arrives
/// in one `read` syscall.
const READ_BUF: usize = 64 * 1024;

/// Outcome of a query request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// Shards the query fanned out to.
    pub shards_touched: u16,
    /// Sub-queries answered from shard caches.
    pub local_answers: u16,
    /// Sub-queries shipped to the repository.
    pub shipped: u16,
}

/// Outcome of an update request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// Shard that owns the updated object.
    pub shard: u16,
    /// The object's new version at that shard.
    pub version: u64,
}

/// Outcome of a successfully compiled and served SQL request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SqlReply {
    /// Shards the compiled query fanned out to.
    pub shards_touched: u16,
    /// Sub-queries answered from shard caches.
    pub local_answers: u16,
    /// Sub-queries shipped to the repository.
    pub shipped: u16,
    /// Size of the access set `B(q)` the server compiled.
    pub objects: u32,
    /// The estimated result size ν(q) in bytes.
    pub result_bytes: u64,
    /// The currency requirement `t(q)` parsed from the text.
    pub tolerance: u64,
    /// The server's workload classification of the query.
    pub kind: QueryKind,
}

/// A compile rejection from the server's SQL frontend — the wire form of
/// a [`delta_query::QueryError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlRejection {
    /// The frontend stage that failed.
    pub stage: SqlStage,
    /// Byte span in the SQL text (zero-width for analyze errors).
    pub span: (u32, u32),
    /// The rendered diagnostic.
    pub message: String,
}

impl std::fmt::Display for SqlRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.stage {
            SqlStage::Parse => "parse",
            SqlStage::Analyze => "analyze",
        };
        write!(f, "{} error: {}", stage, self.message)
    }
}

/// A synchronous connection to a delta-server.
///
/// One request is in flight at a time; open several clients for
/// concurrency (the server is happy to serve many connections).
///
/// The connection owns one reusable encode buffer and one reusable
/// decode buffer: a round trip performs zero heap allocation once the
/// buffers are warm, and each frame is one `write_all` on the wire.
pub struct DeltaClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reusable outgoing wire buffer (length prefix + payload).
    wire: Vec<u8>,
    /// Reusable incoming payload buffer.
    payload: Vec<u8>,
}

impl DeltaClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<DeltaClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(READ_BUF, stream.try_clone()?);
        Ok(DeltaClient {
            reader,
            writer: stream,
            wire: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// Sets (or clears) the socket read/write timeout for subsequent
    /// round trips — how long this client blocks on an unresponsive
    /// peer before an `io::Error` surfaces (the replication pumps use
    /// it to treat a wedged backup as down instead of stalling).
    pub fn set_io_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.writer.set_write_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        self.wire.clear();
        append_frame_with(&mut self.wire, |buf| request.encode_into(buf))?;
        self.writer.write_all(&self.wire)
    }

    fn receive(&mut self) -> io::Result<Response> {
        read_frame_into(&mut self.reader, &mut self.payload)?;
        Response::decode(&self.payload)
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        let response = self.receive()?;
        if let Response::Error { code, message } = &response {
            return Err(io::Error::other(format!("server error {code}: {message}")));
        }
        Ok(response)
    }

    /// Sends one raw request and returns the raw response, with no
    /// error-to-`io::Error` mapping — the escape hatch for cluster admin
    /// verbs and for tests that assert on typed frames (`WrongEpoch`,
    /// `Error { code, .. }`) directly.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.receive()
    }

    /// Performs the v4 node handshake: declares `epoch` as this
    /// connection's routing epoch and returns the peer's
    /// self-description. In cluster mode, event requests on this
    /// connection are fenced against the declared epoch — re-`hello`
    /// after a [`Response::WrongEpoch`] redirect.
    pub fn hello(&mut self, epoch: u64) -> io::Result<NodeInfo> {
        match self.round_trip(&Request::Hello {
            version: PROTOCOL_VERSION,
            epoch,
        })? {
            Response::HelloOk(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks a router to move `shard` to `to_node` (live resharding).
    /// Returns the routing epoch after the move.
    pub fn reshard(&mut self, shard: u16, to_node: u16) -> io::Result<u64> {
        match self.round_trip(&Request::Reshard { shard, to_node })? {
            Response::ReshardOk { epoch } => Ok(epoch),
            other => Err(unexpected(&other)),
        }
    }

    /// Serves one query event (objects are global catalog ids).
    pub fn query(&mut self, q: &QueryEvent) -> io::Result<QueryReply> {
        match self.round_trip(&Request::Query(q.clone()))? {
            Response::QueryOk {
                shards_touched,
                local_answers,
                shipped,
            } => Ok(QueryReply {
                shards_touched,
                local_answers,
                shipped,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Applies one update event.
    pub fn update(&mut self, u: &UpdateEvent) -> io::Result<UpdateReply> {
        match self.round_trip(&Request::Update(*u))? {
            Response::UpdateOk { shard, version } => Ok(UpdateReply { shard, version }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the per-shard statistics snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsOk(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Scrapes the peer's telemetry registry. Against a node this is
    /// that node's own counters and histograms; against a router it is
    /// the cluster-wide merge (every node's snapshot folded into the
    /// router's own). Never fenced by the routing epoch.
    pub fn telemetry(&mut self) -> io::Result<delta_telemetry::TelemetrySnapshot> {
        match self.round_trip(&Request::Telemetry)? {
            Response::TelemetryOk(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends raw SQL for server-side compilation at sequence number
    /// `seq`. The outer `Result` is transport/protocol failure; the
    /// inner one distinguishes a served query from a typed compile
    /// rejection.
    pub fn sql(&mut self, seq: u64, sql: &str) -> io::Result<Result<SqlReply, SqlRejection>> {
        let request = Request::Sql {
            seq,
            sql: sql.to_string(),
        };
        self.send(&request)?;
        match self.receive()? {
            Response::SqlOk {
                shards_touched,
                local_answers,
                shipped,
                objects,
                result_bytes,
                tolerance,
                kind,
            } => Ok(Ok(SqlReply {
                shards_touched,
                local_answers,
                shipped,
                objects,
                result_bytes,
                tolerance,
                kind,
            })),
            Response::SqlRejected {
                stage,
                span_start,
                span_end,
                message,
            } => Ok(Err(SqlRejection {
                stage,
                span: (span_start, span_end),
                message,
            })),
            Response::Error { code, message } => {
                Err(io::Error::other(format!("server error {code}: {message}")))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Serves many events in one frame, returning one reply per item in
    /// item order. Per-item failures come back as [`BatchReply::Error`]
    /// without failing the rest of the batch.
    pub fn batch(&mut self, items: &[BatchItem]) -> io::Result<Vec<BatchReply>> {
        match self.round_trip(&Request::Batch(items.to_vec()))? {
            Response::BatchOk(replies) => Ok(replies),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Converts this client into a pipelined one keeping up to `window`
    /// tagged requests in flight.
    pub fn pipelined(self, window: usize) -> PipelinedClient {
        // The lockstep path leaves the last sent frame in `wire` (it
        // clears lazily, on the next send); the pipelined client only
        // appends, so hand it a clean buffer.
        let mut wire = self.wire;
        wire.clear();
        PipelinedClient {
            reader: self.reader,
            writer: self.writer,
            wire,
            payload: self.payload,
            window: window.max(1),
            pending: Correlator::new(),
            completed: Vec::new(),
        }
    }
}

/// A windowed, pipelined connection to a delta-server.
///
/// Requests are wrapped in [`Request::Tagged`] frames with increasing
/// correlation ids; up to `window` of them ride the socket before the
/// client blocks on replies. Replies are matched by correlation id, so
/// the client stays correct even if a server reorders responses (today's
/// server replies strictly in order — the ids are cheap insurance and
/// let `submit` detect cross-talk immediately).
///
/// Responses are *not* interpreted: they accumulate (with their ids) and
/// are handed back from [`PipelinedClient::completed`] or
/// [`PipelinedClient::drain`]. That keeps the window logic independent of
/// the request mix — queries, updates, batches and SQL can interleave in
/// one pipeline.
///
/// Outgoing frames are *coalesced per window*: `submit` appends to a
/// reusable wire buffer, and the buffer hits the socket with exactly one
/// `write_all` right before the client blocks for replies (window full
/// or `drain`). That is the fix for the pipeline-slower-than-batch
/// regression — the old per-frame `write` + flush cost a syscall and a
/// packet per frame, making eight windowed frames dearer than one batch
/// frame.
///
/// The client reads the socket only while the window is full (and on
/// `drain`), so size the window such that `window ×` the largest
/// expected response fits comfortably in the socket buffers: extreme
/// shapes (multi-thousand-item batches × hundreds in flight) can back
/// responses up until the server's bounded write stalls out. The
/// loadgen defaults (batch ≤ a few hundred, window ≤ a few dozen) are
/// orders of magnitude below that regime.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reusable outgoing wire buffer: frames accumulate here and are
    /// written once per window.
    wire: Vec<u8>,
    /// Reusable incoming payload buffer.
    payload: Vec<u8>,
    window: usize,
    /// The same correlation plumbing the router's shared node links use
    /// ([`crate::mux::Correlator`]): ids are issued monotonically and a
    /// reply with an unknown or duplicate id is a protocol error.
    pending: Correlator<()>,
    completed: Vec<(u64, Response)>,
}

impl PipelinedClient {
    /// The correlation ids still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.in_flight()
    }

    /// Writes the coalesced window of frames to the socket — one
    /// `write_all` no matter how many frames accumulated.
    fn flush_wire(&mut self) -> io::Result<()> {
        if !self.wire.is_empty() {
            self.writer.write_all(&self.wire)?;
            self.wire.clear();
        }
        Ok(())
    }

    /// Submits a request, first reaping replies if the window is full.
    /// Returns the correlation id assigned to this request. The frame is
    /// buffered; it reaches the socket in one coalesced write when the
    /// window fills (or on [`PipelinedClient::drain`]).
    ///
    /// # Panics
    /// Panics on [`Request::Tagged`] input — the pipeline does its own
    /// tagging.
    pub fn submit(&mut self, request: &Request) -> io::Result<u64> {
        assert!(
            !matches!(request, Request::Tagged { .. }),
            "submit() tags requests itself"
        );
        if self.pending.in_flight() >= self.window {
            self.flush_wire()?;
            while self.pending.in_flight() >= self.window {
                self.reap_one()?;
            }
        }
        let corr = self.pending.issue(());
        append_frame_with(&mut self.wire, |buf| {
            crate::protocol::encode_tagged_request_into(corr, request, buf);
        })?;
        Ok(corr)
    }

    fn reap_one(&mut self) -> io::Result<()> {
        read_frame_into(&mut self.reader, &mut self.payload)?;
        match Response::decode(&self.payload)? {
            Response::Tagged { corr, inner } => {
                if self.pending.complete(corr).is_none() {
                    return Err(io::Error::other(format!(
                        "server echoed unknown correlation id {corr}"
                    )));
                }
                self.completed.push((corr, *inner));
                Ok(())
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Takes the responses that have arrived so far, tagged with their
    /// correlation ids, without blocking for more.
    pub fn completed(&mut self) -> Vec<(u64, Response)> {
        std::mem::take(&mut self.completed)
    }

    /// Waits for every outstanding reply, then returns all accumulated
    /// responses.
    pub fn drain(&mut self) -> io::Result<Vec<(u64, Response)>> {
        self.flush_wire()?;
        while self.pending.in_flight() > 0 {
            self.reap_one()?;
        }
        Ok(self.completed())
    }

    /// Drains the pipeline and converts back into a lockstep client.
    pub fn into_lockstep(mut self) -> io::Result<(DeltaClient, Vec<(u64, Response)>)> {
        let responses = self.drain()?;
        Ok((
            DeltaClient {
                reader: self.reader,
                writer: self.writer,
                wire: self.wire,
                payload: self.payload,
            },
            responses,
        ))
    }
}

fn unexpected(r: &Response) -> io::Error {
    io::Error::other(format!("unexpected response {r:?}"))
}
