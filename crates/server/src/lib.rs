//! # delta-server — the decoupling engine on the wire
//!
//! The paper's Delta is a *middleware* service between clients and a
//! rapidly-growing repository; this crate supplies that missing service
//! layer over the in-process engine:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol: the
//!   event-shaped `Query`, `Update`, `Stats` and `Shutdown` frames, plus
//!   `Sql` (raw SQL compiled server-side into the access set `B(q)`),
//!   `Batch` (many events in one frame, coalesced per shard) and
//!   `Tagged` (correlation-id envelope the pipelined client rides).
//! * [`partition`] — pluggable catalog sharding behind the
//!   [`partition::Partitioner`] trait (round-robin preserved
//!   byte-for-byte, plus a weighted rendezvous [`partition::HashRing`]
//!   with bounded remap), exact result-byte apportioning and the offline
//!   [`partition::shard_trace`] twin that makes server *and cluster*
//!   runs testable against [`delta_core::simulate`].
//! * [`router`] — the cluster tier: `delta-routerd` fronts multiple
//!   `delta-serverd` nodes, splits/merges queries across them exactly
//!   like the in-process frontend does across shards, and coordinates
//!   **live resharding** (drain → snapshot → re-host → epoch bump);
//!   clients holding a stale shard→node map get a typed `WrongEpoch`
//!   redirect, never a wrong answer.
//! * [`mux`] — the correlation mux behind the router's shared node
//!   links: `Tagged`-envelope correlation ids, per-client fan-out
//!   accounting and reply merging as a socket-free state machine, shared
//!   between the reactor data plane and the pipelined client.
//! * [`replication`] — primary/backup replication state: the per-shard
//!   applied-event log a primary ships to its backups, acknowledged
//!   offsets, and the wait that makes an acknowledged write survive the
//!   primary's death; the router promotes the most-caught-up backup via
//!   the same detach/attach/epoch machinery resharding uses.
//! * [`shard`] — one lock-protected engine core per shard, each owning a
//!   [`delta_core::CachingPolicy`] (VCover by default, pluggable), a
//!   [`delta_storage::Repository`] slice and a cache, accounting into its
//!   own [`delta_core::CostLedger`]; connection threads execute shard
//!   work inline (no per-event thread handoff).
//! * [`server`] — the TCP listener: per-connection framing threads with
//!   reusable read/write buffers (responses coalesce into one socket
//!   write per pipelined window), wire-byte metering on a
//!   [`delta_net::TrafficMeter`], and graceful drain on shutdown.
//! * [`client`] — the typed clients: lockstep [`DeltaClient`] and the
//!   windowed [`PipelinedClient`].
//!
//! Every tier is instrumented with [`delta_telemetry`]: shard cores
//! split lock-wait from apply time per op class, the shared frame loop
//! counts wire bytes/frames/flushes, and the router times its per-node
//! fan-out — all scraped over the wire with a `Telemetry` frame
//! ([`DeltaClient::telemetry`]; against a router, the reply is the
//! cluster-wide merge). Recording is relaxed atomics off the
//! deterministic path: ledgers are byte-identical with it on or off.
//!
//! Everything is std-only (`std::net` + threads), in the style of
//! `delta_core::deploy`. The binaries `delta-serverd` and `delta-loadgen`
//! wrap [`server::Server`] and [`client::DeltaClient`] for the command
//! line; see the repository README for a two-command quickstart.
//!
//! ```
//! use delta_server::{DeltaClient, PolicyKind, Server, ServerConfig};
//! use delta_storage::{ObjectCatalog, ObjectId};
//! use delta_workload::{QueryEvent, QueryKind, UpdateEvent};
//!
//! let catalog = ObjectCatalog::from_sizes(&[500, 600, 700, 800]);
//! let config = ServerConfig {
//!     bind: "127.0.0.1:0".into(),
//!     n_shards: 2,
//!     cache_bytes: 1_000,
//!     policy: PolicyKind::VCover,
//!     seed: 7,
//!     ..ServerConfig::default()
//! };
//! let server = Server::start(config, catalog).unwrap();
//! let mut client = DeltaClient::connect(server.local_addr()).unwrap();
//!
//! client.update(&UpdateEvent { seq: 1, object: ObjectId(2), bytes: 40 }).unwrap();
//! let reply = client
//!     .query(&QueryEvent {
//!         seq: 2,
//!         objects: vec![ObjectId(0), ObjectId(1)],
//!         result_bytes: 128,
//!         tolerance: 0,
//!         kind: QueryKind::Cone,
//!     })
//!     .unwrap();
//! assert_eq!(reply.shards_touched, 2);
//!
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.total_events(), 3);
//! client.shutdown().unwrap();
//! let final_stats = server.join();
//! assert_eq!(final_stats.total_ledger().total().bytes(), stats.total_ledger().total().bytes());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod config;
pub mod connection;
pub mod front;
pub mod mux;
pub mod partition;
pub mod protocol;
pub mod replication;
pub mod router;
pub mod server;
pub mod shard;

pub use client::{DeltaClient, PipelinedClient, QueryReply, SqlRejection, SqlReply, UpdateReply};
pub use config::{ClusterConfig, FrontDoor, PolicyKind, ReplicationConfig, ServerConfig};
pub use connection::{buffered_frame_len, drop_cause, prepare_read_buffer, DropCause};
pub use partition::{apportion, shard_trace, HashRing, Partitioner, PartitionerKind, RoundRobin};
pub use protocol::{
    error_code, read_frame, write_frame, BatchItem, BatchReply, NodeInfo, NodeOp, NodeRole,
    Request, Response, ShardStats, SqlStage, StatsSnapshot,
};
pub use router::{Router, RouterConfig};
pub use server::Server;

// Telemetry is part of the wire surface (`Request::Telemetry` returns a
// `TelemetrySnapshot` frame), so re-export the types a scraping client
// needs without a separate `delta_telemetry` dependency.
pub use delta_telemetry::{Histogram, HistogramSnapshot, Telemetry, TelemetrySnapshot};
