//! The TCP service: listener, per-connection framing, shard fan-out and
//! graceful shutdown.
//!
//! Each accepted connection gets a thread that decodes request frames and
//! fans them out to the shard workers; replies are joined and one
//! response frame goes back, so each connection sees strictly ordered
//! request/response pairs while different connections proceed in
//! parallel. Wire bytes are recorded on a shared
//! [`delta_net::TrafficMeter`] (query frames as `QueryShip`, update
//! frames as `UpdateShip`, the rest as `Control`), so an operator can
//! audit protocol overhead separately from the policy-level ledgers.

use crate::config::ServerConfig;
use crate::partition::ShardMap;
use crate::protocol::{error_code, write_frame, Request, Response, ShardStats, StatsSnapshot};
use crate::shard::{spawn_shard, ShardHandle, ShardReply, ShardRequest};
use crossbeam::channel::unbounded;
use delta_net::{TrafficClass, TrafficMeter};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::QueryEvent;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// A running delta-server instance.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<StatsSnapshot>,
    meter: Arc<TrafficMeter>,
}

impl Server {
    /// Binds and starts serving `catalog` with `config`. Returns once the
    /// listener is live; serving happens on background threads.
    pub fn start(config: ServerConfig, catalog: ObjectCatalog) -> io::Result<Server> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let map = ShardMap::new(config.n_shards);
        let sub_catalogs: Vec<ObjectCatalog> = (0..config.n_shards)
            .map(|s| map.shard_catalog(s, &catalog))
            .collect();
        let weights: Vec<u64> = sub_catalogs.iter().map(|c| c.total_bytes()).collect();
        let caches = crate::partition::apportion(config.cache_bytes, &weights);
        let shards: Vec<ShardHandle> = sub_catalogs
            .into_iter()
            .enumerate()
            .map(|(s, sub)| {
                spawn_shard(
                    s as u16,
                    sub,
                    caches[s],
                    config.policy,
                    config.seed + s as u64,
                )
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let meter = Arc::new(TrafficMeter::new());
        let shared = Arc::new(Shared {
            map,
            catalog,
            shard_txs: shards.iter().map(|h| h.tx.clone()).collect(),
            shutdown: Arc::clone(&shutdown),
            meter: Arc::clone(&meter),
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("delta-accept".to_string())
            .spawn(move || accept_loop(listener, shared, accept_shutdown, shards))
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            shutdown,
            accept_thread,
            meter,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the wire-byte meter.
    pub fn meter(&self) -> delta_net::TrafficSnapshot {
        self.meter.snapshot()
    }

    /// Requests shutdown without waiting (a `Shutdown` frame does this
    /// too).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to stop (after [`Server::request_shutdown`]
    /// or a client `Shutdown` frame) and returns the final per-shard
    /// statistics.
    pub fn join(self) -> StatsSnapshot {
        self.accept_thread.join().expect("accept thread panicked")
    }

    /// Convenience: request shutdown and wait for the final snapshot.
    pub fn stop(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

struct Shared {
    map: ShardMap,
    catalog: ObjectCatalog,
    shard_txs: Vec<crossbeam::channel::Sender<ShardRequest>>,
    shutdown: Arc<AtomicBool>,
    meter: Arc<TrafficMeter>,
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    shards: Vec<ShardHandle>,
) -> StatsSnapshot {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        // Reap finished connections so a long-lived daemon doesn't
        // accumulate dead handles.
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("delta-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, &shared) {
                            // Disconnects are routine; anything else is
                            // worth a trace on stderr.
                            if e.kind() != io::ErrorKind::UnexpectedEof {
                                eprintln!("delta-server: connection error: {e}");
                            }
                        }
                    })
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("delta-server: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
    // Drain: connections first (they observe the flag within one poll
    // interval; reads and writes are both bounded), then the shards,
    // collecting their final ledgers.
    for handle in connections {
        let _ = handle.join();
    }
    let mut stats: Vec<ShardStats> = shards.into_iter().map(ShardHandle::shutdown).collect();
    stats.sort_by_key(|s| s.shard);
    StatsSnapshot { shards: stats }
}

/// How long a connection may stall (mid-frame read after shutdown, or a
/// blocked write) before the server drops it.
const STALL_LIMIT: Duration = Duration::from_secs(5);

/// Reads exactly `buf.len()` bytes from a socket whose read timeout is
/// [`POLL`], preserving partial progress across timeouts (a plain
/// `read_exact` would discard mid-frame bytes on `WouldBlock` and
/// desynchronize the stream). Returns `Ok(false)` on a clean stop: EOF
/// or server shutdown, both only at a frame boundary (`at_boundary` and
/// nothing read yet). Mid-frame, shutdown grants [`STALL_LIMIT`] for the
/// frame to finish before the connection errors out.
fn read_full_polling(
    reader: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    at_boundary: bool,
) -> io::Result<bool> {
    use std::io::Read;
    let mut filled = 0;
    let mut stall_started: Option<std::time::Instant> = None;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                filled += n;
                stall_started = None;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    if at_boundary && filled == 0 {
                        return Ok(false);
                    }
                    let started = stall_started.get_or_insert_with(std::time::Instant::now);
                    if started.elapsed() > STALL_LIMIT {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame stalled past shutdown grace period",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame, polling the shutdown flag while idle between frames.
/// `Ok(None)` means stop serving (EOF or shutdown at a frame boundary).
fn read_frame_polling(reader: &mut TcpStream, shared: &Shared) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_full_polling(reader, &mut len_bytes, shared, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full_polling(reader, &mut payload, shared, false)? {
        return Ok(None);
    }
    Ok(Some(payload))
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // BSD-derived platforms propagate the listener's O_NONBLOCK to
    // accepted sockets; clear it so the read timeout below governs.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    // A client that stops draining responses must not be able to wedge
    // graceful shutdown behind an unbounded blocking write.
    stream.set_write_timeout(Some(STALL_LIMIT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        let payload = match read_frame_polling(&mut reader, shared)? {
            Some(p) => p,
            None => return Ok(()),
        };
        let response = match Request::decode(&payload) {
            Ok(request) => {
                // +4 for the length prefix, so the meter reflects real
                // socket bytes, not just payloads.
                meter_request(shared, &request, payload.len() as u64 + 4);
                handle_request(shared, request)
            }
            Err(e) => Response::Error {
                code: error_code::BAD_FRAME,
                message: e.to_string(),
            },
        };
        let out = response.encode();
        shared
            .meter
            .record(TrafficClass::Control, out.len() as u64 + 4);
        write_frame(&mut writer, &out)?;
        if matches!(response, Response::ShutdownOk) {
            return Ok(());
        }
    }
}

fn meter_request(shared: &Shared, request: &Request, wire_bytes: u64) {
    let class = match request {
        Request::Query(_) => TrafficClass::QueryShip,
        Request::Update(_) => TrafficClass::UpdateShip,
        Request::Stats | Request::Shutdown => TrafficClass::Control,
    };
    shared.meter.record(class, wire_bytes);
}

fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Query(q) => handle_query(shared, q),
        Request::Update(u) => {
            if u.object.index() >= shared.catalog.len() {
                return unknown_object(u.object);
            }
            let (shard, local) = shared.map.split_update(&u);
            let (reply_tx, reply_rx) = unbounded();
            if shared.shard_txs[shard]
                .send(ShardRequest::Update(local, reply_tx))
                .is_err()
            {
                return draining();
            }
            match reply_rx.recv() {
                Ok(ShardReply::UpdateDone { shard, version }) => {
                    Response::UpdateOk { shard, version }
                }
                _ => draining(),
            }
        }
        Request::Stats => {
            let (reply_tx, reply_rx) = unbounded();
            let mut expected = 0;
            for tx in &shared.shard_txs {
                if tx.send(ShardRequest::Stats(reply_tx.clone())).is_ok() {
                    expected += 1;
                }
            }
            let mut shards = Vec::with_capacity(expected);
            for _ in 0..expected {
                match reply_rx.recv() {
                    Ok(ShardReply::Stats(s)) => shards.push(s),
                    _ => return draining(),
                }
            }
            shards.sort_by_key(|s| s.shard);
            Response::StatsOk(StatsSnapshot { shards })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShutdownOk
        }
    }
}

fn handle_query(shared: &Shared, q: QueryEvent) -> Response {
    if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
        return unknown_object(bad);
    }
    let subs = shared.map.split_query(&q, &shared.catalog);
    let (reply_tx, reply_rx) = unbounded();
    let mut sent = 0u16;
    for (shard, sub) in subs {
        if shared.shard_txs[shard]
            .send(ShardRequest::Query(sub, reply_tx.clone()))
            .is_err()
        {
            return draining();
        }
        sent += 1;
    }
    let mut local_answers = 0u16;
    let mut shipped = 0u16;
    for _ in 0..sent {
        match reply_rx.recv() {
            Ok(ShardReply::QueryDone { local, .. }) => {
                if local {
                    local_answers += 1;
                } else {
                    shipped += 1;
                }
            }
            _ => return draining(),
        }
    }
    Response::QueryOk {
        shards_touched: sent,
        local_answers,
        shipped,
    }
}

fn unknown_object(o: ObjectId) -> Response {
    Response::Error {
        code: error_code::UNKNOWN_OBJECT,
        message: format!("object {o} is outside the catalog"),
    }
}

fn draining() -> Response {
    Response::Error {
        code: error_code::SHUTTING_DOWN,
        message: "server is shutting down".to_string(),
    }
}
