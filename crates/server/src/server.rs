//! The TCP service: listener, per-connection framing, shard fan-out and
//! graceful shutdown.
//!
//! Each accepted connection gets a thread that decodes request frames and
//! fans them out to the shard workers; replies are joined and one
//! response frame goes back, so each connection sees strictly ordered
//! request/response pairs while different connections proceed in
//! parallel. Wire bytes are recorded on a shared
//! [`delta_net::TrafficMeter`] (query frames as `QueryShip`, update
//! frames as `UpdateShip`, the rest as `Control`), so an operator can
//! audit protocol overhead separately from the policy-level ledgers.

use crate::config::ServerConfig;
use crate::partition::{apportion, ShardMap};
use crate::protocol::{
    error_code, write_frame, BatchItem, BatchReply, Request, Response, ShardStats, SqlStage,
    StatsSnapshot,
};
use crate::shard::{
    spawn_shard, OpOutcome, ShardHandle, ShardOp, ShardReply, ShardRequest, ShardSpec,
};
use crossbeam::channel::unbounded;
use delta_core::engine::read_snapshot;
use delta_core::EngineSnapshot;
use delta_net::{TrafficClass, TrafficMeter};
use delta_query::{QueryCompiler, QueryError, Schema};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::QueryEvent;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// A running delta-server instance.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<StatsSnapshot>,
    meter: Arc<TrafficMeter>,
}

impl Server {
    /// Binds and starts serving `catalog` with `config`. Returns once the
    /// listener is live; serving happens on background threads.
    pub fn start(config: ServerConfig, catalog: ObjectCatalog) -> io::Result<Server> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if config.n_shards > catalog.len() {
            // A shard with an empty sub-catalog cannot host a repository
            // slice; refuse cleanly instead of panicking mid-start.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} shards but only {} catalog objects",
                    config.n_shards,
                    catalog.len()
                ),
            ));
        }
        // Build the SQL frontend before binding: a frontend whose spatial
        // partition disagrees with the served catalog would compile
        // queries against the wrong object mapping.
        let frontend = match &config.frontend {
            None => None,
            Some(wcfg) => {
                let mapper = wcfg.spatial_mapper();
                if mapper.partition().len() != catalog.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "frontend partition has {} leaves but the catalog has {} objects; \
                             serve the catalog the frontend preset generates",
                            mapper.partition().len(),
                            catalog.len()
                        ),
                    ));
                }
                Some(Arc::new(QueryCompiler::new(
                    Schema::sdss(),
                    wcfg.sky_model(),
                    mapper,
                )))
            }
        };

        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let map = ShardMap::new(config.n_shards);
        let sub_catalogs: Vec<ObjectCatalog> = (0..config.n_shards)
            .map(|s| map.shard_catalog(s, &catalog))
            .collect();
        let weights: Vec<u64> = sub_catalogs.iter().map(|c| c.total_bytes()).collect();
        let caches = crate::partition::apportion(config.cache_bytes, &weights);

        // Warm restart: read and validate any per-shard snapshots before
        // spawning anything, so a bad snapshot refuses startup cleanly
        // instead of panicking a worker thread.
        let mut snapshot_paths: Vec<Option<std::path::PathBuf>> = vec![None; config.n_shards];
        let mut restores: Vec<Option<EngineSnapshot>> = Vec::new();
        restores.resize_with(config.n_shards, || None);
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
            for (s, sub) in sub_catalogs.iter().enumerate() {
                let path = dir.join(format!("shard-{s}.jsonl"));
                if path.exists() {
                    let snap = read_snapshot(&path)?;
                    let invalid = |msg: String| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("snapshot {}: {msg}", path.display()),
                        )
                    };
                    snap.validate(sub, config.policy.policy_name())
                        .map_err(|e| invalid(e.to_string()))?;
                    // A restored engine keeps the snapshot's cache
                    // capacity, so a changed cache budget must refuse
                    // loudly rather than be ignored invisibly.
                    let configured = config
                        .policy
                        .build(caches[s], config.seed + s as u64)
                        .preferred_capacity(sub, caches[s]);
                    if snap.capacity != configured {
                        return Err(invalid(format!(
                            "was taken with cache capacity {} but this configuration \
                             yields {}; restart with the original cache budget or \
                             clear the snapshot directory",
                            snap.capacity, configured
                        )));
                    }
                    restores[s] = Some(snap);
                }
                snapshot_paths[s] = Some(path);
            }
        }

        let shards: Vec<ShardHandle> = sub_catalogs
            .into_iter()
            .enumerate()
            .map(|(s, sub)| {
                spawn_shard(ShardSpec {
                    shard: s as u16,
                    catalog: sub,
                    cache_bytes: caches[s],
                    policy: config.policy,
                    seed: config.seed + s as u64,
                    restore: restores[s].take(),
                    snapshot_path: snapshot_paths[s].take(),
                })
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let meter = Arc::new(TrafficMeter::new());
        let shared = Arc::new(Shared {
            map,
            catalog,
            shard_txs: shards.iter().map(|h| h.tx.clone()).collect(),
            shutdown: Arc::clone(&shutdown),
            meter: Arc::clone(&meter),
            frontend,
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("delta-accept".to_string())
            .spawn(move || accept_loop(listener, shared, accept_shutdown, shards))
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            shutdown,
            accept_thread,
            meter,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the wire-byte meter.
    pub fn meter(&self) -> delta_net::TrafficSnapshot {
        self.meter.snapshot()
    }

    /// Requests shutdown without waiting (a `Shutdown` frame does this
    /// too).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to stop (after [`Server::request_shutdown`]
    /// or a client `Shutdown` frame) and returns the final per-shard
    /// statistics.
    pub fn join(self) -> StatsSnapshot {
        self.accept_thread.join().expect("accept thread panicked")
    }

    /// Convenience: request shutdown and wait for the final snapshot.
    pub fn stop(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

struct Shared {
    map: ShardMap,
    catalog: ObjectCatalog,
    shard_txs: Vec<crossbeam::channel::Sender<ShardRequest>>,
    shutdown: Arc<AtomicBool>,
    meter: Arc<TrafficMeter>,
    /// Template for the per-connection SQL compilers; `None` when the
    /// server was started without a workload preset.
    frontend: Option<Arc<QueryCompiler>>,
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    shards: Vec<ShardHandle>,
) -> StatsSnapshot {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        // Reap finished connections so a long-lived daemon doesn't
        // accumulate dead handles.
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("delta-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, &shared) {
                            // Disconnects are routine; anything else is
                            // worth a trace on stderr.
                            if e.kind() != io::ErrorKind::UnexpectedEof {
                                eprintln!("delta-server: connection error: {e}");
                            }
                        }
                    })
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("delta-server: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
    // Drain: connections first (they observe the flag within one poll
    // interval; reads and writes are both bounded), then the shards,
    // collecting their final ledgers.
    for handle in connections {
        let _ = handle.join();
    }
    let mut stats: Vec<ShardStats> = shards.into_iter().map(ShardHandle::shutdown).collect();
    stats.sort_by_key(|s| s.shard);
    StatsSnapshot { shards: stats }
}

/// How long a connection may stall (mid-frame read after shutdown, or a
/// blocked write) before the server drops it.
const STALL_LIMIT: Duration = Duration::from_secs(5);

/// Reads exactly `buf.len()` bytes from a socket whose read timeout is
/// [`POLL`], preserving partial progress across timeouts (a plain
/// `read_exact` would discard mid-frame bytes on `WouldBlock` and
/// desynchronize the stream). Returns `Ok(false)` on a clean stop: EOF
/// or server shutdown, both only at a frame boundary (`at_boundary` and
/// nothing read yet). Mid-frame, shutdown grants [`STALL_LIMIT`] for the
/// frame to finish before the connection errors out.
fn read_full_polling(
    reader: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    at_boundary: bool,
) -> io::Result<bool> {
    use std::io::Read;
    let mut filled = 0;
    let mut stall_started: Option<std::time::Instant> = None;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                filled += n;
                stall_started = None;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    if at_boundary && filled == 0 {
                        return Ok(false);
                    }
                    let started = stall_started.get_or_insert_with(std::time::Instant::now);
                    if started.elapsed() > STALL_LIMIT {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame stalled past shutdown grace period",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame, polling the shutdown flag while idle between frames.
/// `Ok(None)` means stop serving (EOF or shutdown at a frame boundary).
fn read_frame_polling(reader: &mut TcpStream, shared: &Shared) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_full_polling(reader, &mut len_bytes, shared, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full_polling(reader, &mut payload, shared, false)? {
        return Ok(None);
    }
    Ok(Some(payload))
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // BSD-derived platforms propagate the listener's O_NONBLOCK to
    // accepted sockets; clear it so the read timeout below governs.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    // A client that stops draining responses must not be able to wedge
    // graceful shutdown behind an unbounded blocking write.
    stream.set_write_timeout(Some(STALL_LIMIT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    // Each connection compiles SQL with its own clone of the frontend —
    // compilation is CPU-bound, so connections never contend on it.
    let compiler: Option<QueryCompiler> = shared.frontend.as_ref().map(|c| (**c).clone());
    loop {
        let payload = match read_frame_polling(&mut reader, shared)? {
            Some(p) => p,
            None => return Ok(()),
        };
        let response = match Request::decode(&payload) {
            Ok(request) => {
                // +4 for the length prefix, so the meter reflects real
                // socket bytes, not just payloads.
                meter_request(shared, &request, payload.len() as u64 + 4);
                match request {
                    Request::Tagged { corr, inner } => Response::Tagged {
                        corr,
                        inner: Box::new(handle_request(shared, *inner, compiler.as_ref())),
                    },
                    other => handle_request(shared, other, compiler.as_ref()),
                }
            }
            Err(e) => Response::Error {
                code: error_code::BAD_FRAME,
                message: e.to_string(),
            },
        };
        let out = response.encode();
        shared
            .meter
            .record(TrafficClass::Control, out.len() as u64 + 4);
        write_frame(&mut writer, &out)?;
        let shutting_down = match &response {
            Response::ShutdownOk => true,
            Response::Tagged { inner, .. } => matches!(**inner, Response::ShutdownOk),
            _ => false,
        };
        if shutting_down {
            return Ok(());
        }
    }
}

fn meter_request(shared: &Shared, request: &Request, wire_bytes: u64) {
    match request {
        Request::Query(_) | Request::Sql { .. } => {
            shared.meter.record(TrafficClass::QueryShip, wire_bytes);
        }
        Request::Update(_) => shared.meter.record(TrafficClass::UpdateShip, wire_bytes),
        Request::Batch(items) => {
            // Split the frame's bytes over the classes it mixes, in
            // proportion to item counts (exact, largest-remainder).
            let nq = items
                .iter()
                .filter(|i| matches!(i, BatchItem::Query(_)))
                .count() as u64;
            let nu = items.len() as u64 - nq;
            if nq + nu == 0 {
                shared.meter.record(TrafficClass::Control, wire_bytes);
                return;
            }
            let shares = apportion(wire_bytes, &[nq, nu]);
            shared.meter.record(TrafficClass::QueryShip, shares[0]);
            shared.meter.record(TrafficClass::UpdateShip, shares[1]);
        }
        Request::Tagged { inner, .. } => meter_request(shared, inner, wire_bytes),
        Request::Stats | Request::Shutdown => {
            shared.meter.record(TrafficClass::Control, wire_bytes);
        }
    }
}

fn handle_request(shared: &Shared, request: Request, compiler: Option<&QueryCompiler>) -> Response {
    match request {
        Request::Query(q) => handle_query(shared, q),
        Request::Update(u) => {
            if u.object.index() >= shared.catalog.len() {
                return unknown_object(u.object);
            }
            let (shard, local) = shared.map.split_update(&u);
            let (reply_tx, reply_rx) = unbounded();
            if shared.shard_txs[shard]
                .send(ShardRequest::Update(local, reply_tx))
                .is_err()
            {
                return draining();
            }
            match reply_rx.recv() {
                Ok(ShardReply::UpdateDone { shard, version }) => {
                    Response::UpdateOk { shard, version }
                }
                _ => draining(),
            }
        }
        Request::Sql { seq, sql } => handle_sql(shared, compiler, seq, &sql),
        Request::Batch(items) => handle_batch(shared, items),
        // Nested tags are rejected by the decoder; a bare Tagged here
        // means the caller bypassed `serve_connection`'s unwrapping.
        Request::Tagged { inner, .. } => handle_request(shared, *inner, compiler),
        Request::Stats => {
            let (reply_tx, reply_rx) = unbounded();
            let mut expected = 0;
            for tx in &shared.shard_txs {
                if tx.send(ShardRequest::Stats(reply_tx.clone())).is_ok() {
                    expected += 1;
                }
            }
            let mut shards = Vec::with_capacity(expected);
            for _ in 0..expected {
                match reply_rx.recv() {
                    Ok(ShardReply::Stats(s)) => shards.push(s),
                    _ => return draining(),
                }
            }
            shards.sort_by_key(|s| s.shard);
            Response::StatsOk(StatsSnapshot { shards })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShutdownOk
        }
    }
}

fn handle_query(shared: &Shared, q: QueryEvent) -> Response {
    if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
        return unknown_object(bad);
    }
    let subs = shared.map.split_query(&q, &shared.catalog);
    let (reply_tx, reply_rx) = unbounded();
    let mut sent = 0u16;
    for (shard, sub) in subs {
        if shared.shard_txs[shard]
            .send(ShardRequest::Query(sub, reply_tx.clone()))
            .is_err()
        {
            return draining();
        }
        sent += 1;
    }
    let mut local_answers = 0u16;
    let mut shipped = 0u16;
    let mut failure: Option<String> = None;
    for _ in 0..sent {
        match reply_rx.recv() {
            Ok(ShardReply::QueryDone { local, .. }) => {
                if local {
                    local_answers += 1;
                } else {
                    shipped += 1;
                }
            }
            // Drain the remaining sub-replies before reporting, so every
            // shard finishes its work for this query.
            Ok(ShardReply::QueryFailed { error, .. }) => {
                failure.get_or_insert(error);
            }
            _ => return draining(),
        }
    }
    if let Some(message) = failure {
        return Response::Error {
            code: error_code::CONTRACT_VIOLATED,
            message,
        };
    }
    Response::QueryOk {
        shards_touched: sent,
        local_answers,
        shipped,
    }
}

/// Compiles raw SQL with the connection's compiler and serves the
/// resulting event through the normal shard fan-out.
fn handle_sql(shared: &Shared, compiler: Option<&QueryCompiler>, seq: u64, sql: &str) -> Response {
    let Some(compiler) = compiler else {
        return Response::Error {
            code: error_code::SQL_UNAVAILABLE,
            message: "server has no SQL frontend (start it from a workload preset)".to_string(),
        };
    };
    let compiled = match compiler.compile(sql) {
        Ok(c) => c,
        Err(QueryError::Parse(e)) => {
            let span = e.span();
            return Response::SqlRejected {
                stage: SqlStage::Parse,
                span_start: span.start as u32,
                span_end: span.end as u32,
                message: e.to_string(),
            };
        }
        Err(QueryError::Analyze(e)) => {
            return Response::SqlRejected {
                stage: SqlStage::Analyze,
                span_start: 0,
                span_end: 0,
                message: e.to_string(),
            };
        }
    };
    let objects = compiled.objects.len() as u32;
    let event = compiled.into_event(seq);
    let (result_bytes, tolerance, kind) = (event.result_bytes, event.tolerance, event.kind);
    match handle_query(shared, event) {
        Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        } => Response::SqlOk {
            shards_touched,
            local_answers,
            shipped,
            objects,
            result_bytes,
            tolerance,
            kind,
        },
        other => other,
    }
}

/// Serves a whole batch with one channel send per touched shard: every
/// item is split as usual, but each shard receives its sub-events as one
/// ordered [`ShardRequest::Batch`] and answers with one reply, so the
/// fan-out/join cost is paid per *batch*, not per event.
///
/// Per-shard sub-event order equals item order, which is what keeps a
/// batched replay byte-identical to the same events sent one frame at a
/// time (pinned by the shard-level and integration tests).
fn handle_batch(shared: &Shared, items: Vec<BatchItem>) -> Response {
    struct QueryAcc {
        sent: u16,
        local: u16,
        shipped: u16,
    }
    let mut replies: Vec<Option<BatchReply>> = Vec::with_capacity(items.len());
    replies.resize_with(items.len(), || None);
    let mut accs: Vec<Option<QueryAcc>> = Vec::with_capacity(items.len());
    accs.resize_with(items.len(), || None);
    let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); shared.shard_txs.len()];

    for (i, item) in items.into_iter().enumerate() {
        match item {
            BatchItem::Query(q) => {
                if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
                    replies[i] = Some(batch_error(unknown_object(bad)));
                    continue;
                }
                let subs = shared.map.split_query(&q, &shared.catalog);
                accs[i] = Some(QueryAcc {
                    sent: subs.len() as u16,
                    local: 0,
                    shipped: 0,
                });
                for (s, sub) in subs {
                    per_shard[s].push(ShardOp::Query {
                        item: i as u32,
                        event: sub,
                    });
                }
            }
            BatchItem::Update(u) => {
                if u.object.index() >= shared.catalog.len() {
                    replies[i] = Some(batch_error(unknown_object(u.object)));
                    continue;
                }
                let (s, local) = shared.map.split_update(&u);
                per_shard[s].push(ShardOp::Update {
                    item: i as u32,
                    event: local,
                });
            }
        }
    }

    let (reply_tx, reply_rx) = unbounded();
    let mut expected = 0usize;
    for (s, ops) in per_shard.into_iter().enumerate() {
        if ops.is_empty() {
            continue;
        }
        if shared.shard_txs[s]
            .send(ShardRequest::Batch(ops, reply_tx.clone()))
            .is_err()
        {
            return draining();
        }
        expected += 1;
    }
    for _ in 0..expected {
        match reply_rx.recv() {
            Ok(ShardReply::BatchDone { shard, outcomes }) => {
                for outcome in outcomes {
                    match outcome {
                        OpOutcome::Query { item, local } => {
                            let acc = accs[item as usize]
                                .as_mut()
                                .expect("query outcome for non-query item");
                            if local {
                                acc.local += 1;
                            } else {
                                acc.shipped += 1;
                            }
                        }
                        // A contract violation poisons its item only;
                        // the rest of the batch is unaffected. The error
                        // reply takes precedence over any sub-queries of
                        // the same item that other shards did serve.
                        OpOutcome::QueryFailed { item, error } => {
                            replies[item as usize] = Some(BatchReply::Error {
                                code: error_code::CONTRACT_VIOLATED,
                                message: error,
                            });
                        }
                        OpOutcome::Update { item, version } => {
                            replies[item as usize] = Some(BatchReply::Update { shard, version });
                        }
                    }
                }
            }
            _ => return draining(),
        }
    }

    let replies = replies
        .into_iter()
        .zip(accs)
        .map(|(reply, acc)| match (reply, acc) {
            (Some(r), _) => r,
            (None, Some(acc)) => BatchReply::Query {
                shards_touched: acc.sent,
                local_answers: acc.local,
                shipped: acc.shipped,
            },
            // An update that reached no shard can't happen (every valid
            // object id owns exactly one shard), but fail loudly if the
            // invariant ever breaks rather than fabricating a reply.
            (None, None) => BatchReply::Error {
                code: error_code::BAD_FRAME,
                message: "item produced no outcome".to_string(),
            },
        })
        .collect();
    Response::BatchOk(replies)
}

/// Converts a single-request error response into its batch-item shape.
fn batch_error(r: Response) -> BatchReply {
    match r {
        Response::Error { code, message } => BatchReply::Error { code, message },
        other => BatchReply::Error {
            code: error_code::BAD_FRAME,
            message: format!("unexpected error shape {other:?}"),
        },
    }
}

fn unknown_object(o: ObjectId) -> Response {
    Response::Error {
        code: error_code::UNKNOWN_OBJECT,
        message: format!("object {o} is outside the catalog"),
    }
}

fn draining() -> Response {
    Response::Error {
        code: error_code::SHUTTING_DOWN,
        message: "server is shutting down".to_string(),
    }
}
