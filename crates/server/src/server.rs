//! The TCP service: listener, per-connection framing, inline shard
//! execution, cluster-node duties and graceful shutdown.
//!
//! Each accepted connection gets a thread that decodes request frames
//! and executes them directly against the lock-protected
//! [`crate::shard::ShardCore`]s (per-shard mutexes serialize per-shard
//! event order; different connections proceed in parallel on different
//! shards), so each connection sees strictly ordered request/response
//! pairs with no per-event thread handoff. Wire bytes are recorded on a
//! shared [`delta_net::TrafficMeter`] (query frames as `QueryShip`,
//! update frames as `UpdateShip`, the rest as `Control`), so an operator
//! can audit protocol overhead separately from the policy-level ledgers.
//!
//! ## Standalone vs cluster node
//!
//! A standalone server hosts **every** shard of its partitioner and
//! ignores routing epochs. Started with [`ServerConfig::cluster`], the
//! same process becomes one node of a routed cluster instead: it hosts a
//! *subset* of the global shards in per-slot `RwLock`s (so shards can be
//! attached and detached at runtime), executes the pre-split
//! [`Request::NodeOps`] frames the router sends, and fences every
//! event-carrying request behind the **routing epoch**: a connection
//! whose declared epoch (from its [`Request::Hello`] handshake) is stale
//! gets a typed [`Response::WrongEpoch`] and *nothing executes* — a
//! client holding an outdated shard→node map can be redirected, never
//! silently given a wrong answer.

use crate::client::DeltaClient;
use crate::config::FrontDoor;
use crate::config::ServerConfig;
use crate::connection::{serve_frames, WireTelemetry, POLL};
use crate::front::{closure_factory, Handler, HandlerFactory, ReactorFront, ReactorTelemetry};
use crate::partition::{apportion, Partitioner};
use crate::protocol::{
    append_frame_with, error_code, BatchItem, BatchReply, NodeInfo, NodeOp, NodeRole, Request,
    Response, ShardStats, SqlStage, StatsSnapshot, PROTOCOL_VERSION,
};
use crate::replication::{jittered, Notifier, ReplState, TargetStatus, REPL_WAIT_MAX};
use crate::shard::{OpClass, OpOutcome, ShardCore, ShardOp, ShardSpec, ShardTelemetry};
use delta_core::engine::{read_snapshot, snapshot_from_str, snapshot_to_string};
use delta_core::EngineSnapshot;
use delta_net::{TrafficClass, TrafficMeter};
use delta_query::{QueryCompiler, QueryError, Schema};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_telemetry::{Telemetry, TelemetrySnapshot};
use delta_workload::QueryEvent;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::time::Duration;

/// A running delta-server instance.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<StatsSnapshot>,
    meter: Arc<TrafficMeter>,
    telemetry: Arc<Telemetry>,
}

impl Server {
    /// Binds and starts serving `catalog` with `config`. Returns once the
    /// listener is live; serving happens on background threads.
    pub fn start(config: ServerConfig, catalog: ObjectCatalog) -> io::Result<Server> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if config.n_shards > catalog.len() {
            // A shard with an empty sub-catalog cannot host a repository
            // slice; refuse cleanly instead of panicking mid-start.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} shards but only {} catalog objects",
                    config.n_shards,
                    catalog.len()
                ),
            ));
        }
        // Build the SQL frontend before binding: a frontend whose spatial
        // partition disagrees with the served catalog would compile
        // queries against the wrong object mapping.
        let frontend = match &config.frontend {
            None => None,
            Some(wcfg) => {
                let mapper = wcfg.spatial_mapper();
                if mapper.partition().len() != catalog.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "frontend partition has {} leaves but the catalog has {} objects; \
                             serve the catalog the frontend preset generates",
                            mapper.partition().len(),
                            catalog.len()
                        ),
                    ));
                }
                Some(Arc::new(QueryCompiler::new(
                    Schema::sdss(),
                    wcfg.sky_model(),
                    mapper,
                )))
            }
        };

        let map = config.partitioner.build(config.n_shards, catalog.len());
        for s in 0..config.n_shards {
            if map.shard_len(s) == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "partitioner {} leaves shard {s} without catalog objects; \
                         use fewer shards",
                        config.partitioner
                    ),
                ));
            }
        }
        let weights: Vec<u64> = (0..config.n_shards)
            .map(|s| map.shard_catalog(s, &catalog).total_bytes())
            .collect();
        let caches = apportion(config.cache_bytes, &weights);

        let hosted: Vec<u16> = match &config.cluster {
            Some(c) => c.hosted.clone(),
            None => (0..config.n_shards as u16).collect(),
        };

        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Warm restart: read and validate any per-shard snapshots before
        // spawning anything, so a bad snapshot refuses startup cleanly
        // instead of panicking a worker thread.
        let mut restores: Vec<Option<EngineSnapshot>> = Vec::new();
        restores.resize_with(config.n_shards, || None);
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
            // Sweep debris from interrupted atomic writes: snapshots are
            // written as `*.tmp` then renamed into place, so a crash
            // between the two leaves a stale temp file that must not
            // outlive the restart (it would shadow disk space and could
            // confuse directory-scanning tooling, never the server).
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "tmp") {
                    let _ = std::fs::remove_file(&path);
                }
            }
            for &s in &hosted {
                let s = s as usize;
                let sub = map.shard_catalog(s, &catalog);
                let path = dir.join(format!("shard-{s}.jsonl"));
                if path.exists() {
                    let snap = read_snapshot(&path)?;
                    validate_restore(&snap, &sub, &config, caches[s], s).map_err(|msg| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("snapshot {}: {msg}", path.display()),
                        )
                    })?;
                    restores[s] = Some(snap);
                }
            }
        }

        let telemetry = Arc::new(Telemetry::new());
        // Replication runtime: one notifier shared by every pump thread,
        // one applied-event log per hosted primary (below). `None` when
        // `--replicas 0` — the log append and the post-apply wait both
        // vanish from the hot path.
        let repl = match &config.replication {
            Some(r) if r.replicas > 0 => Some(ReplRuntime {
                replicas: r.replicas,
                peers: r.peers.clone(),
                notifier: Arc::new(Notifier::new()),
            }),
            _ => None,
        };
        let mut slots: Vec<RwLock<Option<ShardCore>>> = Vec::with_capacity(config.n_shards);
        slots.resize_with(config.n_shards, || RwLock::new(None));
        for &s in &hosted {
            let s = s as usize;
            let mut core = ShardCore::new(ShardSpec {
                shard: s as u16,
                catalog: map.shard_catalog(s, &catalog),
                cache_bytes: caches[s],
                policy: config.policy,
                seed: config.seed + s as u64,
                restore: restores[s].take(),
                snapshot_path: config
                    .snapshot_dir
                    .as_ref()
                    .map(|dir| dir.join(format!("shard-{s}.jsonl"))),
                telemetry: ShardTelemetry::register(&telemetry),
            });
            if let Some(rt) = &repl {
                // A warm-restored primary starts its log at the restored
                // event count: earlier history is not replayable, so
                // targets bootstrap from a snapshot instead of the log.
                core.set_repl(Arc::new(ReplState::new(
                    s as u16,
                    core.events(),
                    rt.replicas as usize,
                    Arc::clone(&rt.notifier),
                )));
            }
            *slots[s].write().expect("fresh slot") = Some(core);
        }
        let mut backups: Vec<RwLock<Option<ShardCore>>> = Vec::with_capacity(config.n_shards);
        backups.resize_with(config.n_shards, || RwLock::new(None));
        telemetry
            .gauge("node.shards_hosted")
            .set(hosted.len() as u64);

        let shutdown = Arc::new(AtomicBool::new(false));
        let meter = Arc::new(TrafficMeter::new());
        let wire = WireTelemetry::register(&telemetry);
        let shared = Arc::new(Shared {
            map,
            catalog,
            slots,
            backups,
            caches,
            config: config.clone(),
            epoch: AtomicU64::new(0),
            shutdown: Arc::clone(&shutdown),
            meter: Arc::clone(&meter),
            frontend,
            telemetry: Arc::clone(&telemetry),
            wire,
            repl,
        });

        // One pump thread per successor rank: the pump at rank `r` ships
        // every hosted primary's applied-event log to the peer at
        // `(node + 1 + r) % nodes`. Pumps re-scan the slots each round,
        // so a shard promoted mid-flight starts replicating without a
        // restart.
        if let Some(rt) = &shared.repl {
            for rank in 0..rt.replicas as usize {
                let pump_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("delta-repl-{rank}"))
                    .spawn(move || replication_pump(pump_shared, rank))
                    .expect("spawn replication pump");
            }
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("delta-accept".to_string())
            .spawn(move || accept_loop(listener, shared, accept_shutdown))
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            shutdown,
            accept_thread,
            meter,
            telemetry,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the wire-byte meter.
    pub fn meter(&self) -> delta_net::TrafficSnapshot {
        self.meter.snapshot()
    }

    /// Point-in-time copy of this node's telemetry registry — the same
    /// snapshot a [`Request::Telemetry`] frame returns.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// A shared handle on the registry itself, for long-lived observers
    /// (the daemons' `--telemetry-dump` thread) that outlive a borrow of
    /// the server.
    pub fn telemetry_handle(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Requests shutdown without waiting (a `Shutdown` frame does this
    /// too).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to stop (after [`Server::request_shutdown`]
    /// or a client `Shutdown` frame) and returns the final per-shard
    /// statistics.
    pub fn join(self) -> StatsSnapshot {
        self.accept_thread.join().expect("accept thread panicked")
    }

    /// Convenience: request shutdown and wait for the final snapshot.
    pub fn stop(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

/// The restore validation both cold-start and `AttachShard` run: the
/// snapshot must fit this shard's sub-catalog, policy and cache budget.
fn validate_restore(
    snap: &EngineSnapshot,
    sub: &ObjectCatalog,
    config: &ServerConfig,
    cache: u64,
    shard: usize,
) -> Result<(), String> {
    snap.validate(sub, config.policy.policy_name())
        .map_err(|e| e.to_string())?;
    // A restored engine keeps the snapshot's cache capacity, so a
    // changed cache budget must refuse loudly rather than be ignored
    // invisibly.
    let configured = config
        .policy
        .build(cache, config.seed + shard as u64)
        .preferred_capacity(sub, cache);
    if snap.capacity != configured {
        return Err(format!(
            "was taken with cache capacity {} but this configuration yields {}; \
             restart with the original cache budget or clear the snapshot directory",
            snap.capacity, configured
        ));
    }
    Ok(())
}

struct Shared {
    map: Box<dyn Partitioner>,
    catalog: ObjectCatalog,
    /// One slot per global shard; `None` when another node hosts it.
    /// Connection threads hold a slot's read lock for the duration of an
    /// op, so a `DetachShard` (write lock) waits out in-flight work.
    slots: Vec<RwLock<Option<ShardCore>>>,
    /// Backup twins of shards other nodes serve as primaries, seeded by
    /// `ReplicaBootstrap`, advanced by `Replicate` and drained by
    /// `Promote`. Parallel to `slots`; a shard is never in both at once.
    backups: Vec<RwLock<Option<ShardCore>>>,
    /// Per-shard cache budgets (cluster-wide apportioning), kept so an
    /// attached shard is rebuilt with the same budget everywhere.
    caches: Vec<u64>,
    config: ServerConfig,
    /// The routing epoch (cluster mode; stays 0 standalone).
    epoch: AtomicU64,
    shutdown: Arc<AtomicBool>,
    meter: Arc<TrafficMeter>,
    /// Template for the per-connection SQL compilers; `None` when the
    /// server was started without a workload preset.
    frontend: Option<Arc<QueryCompiler>>,
    /// This node's metric registry; scraped by [`Request::Telemetry`].
    telemetry: Arc<Telemetry>,
    /// Wire-level counter handles shared by every connection thread.
    wire: WireTelemetry,
    /// Replication runtime, when the node was started with
    /// `--replicas > 0`; `None` keeps the pre-replication data path.
    repl: Option<ReplRuntime>,
}

/// Shared state for the replication pump threads.
struct ReplRuntime {
    /// Backup targets per hosted primary shard (`--replicas`).
    replicas: u16,
    /// Every node address in node-id order (`--peers`); the pump at
    /// rank `r` ships to the peer at `(node + 1 + r) % nodes`.
    peers: Vec<String>,
    /// Wakes pumps when any shard's log grows.
    notifier: Arc<Notifier>,
}

impl Shared {
    fn hosted(&self) -> Vec<u16> {
        (0..self.slots.len() as u16)
            .filter(|&s| self.slots[s as usize].read().expect("slot").is_some())
            .collect()
    }

    fn node_info(&self) -> NodeInfo {
        let (role, node, nodes) = match &self.config.cluster {
            Some(c) => (NodeRole::ClusterNode, c.node, c.nodes),
            None => (NodeRole::Standalone, 0, 1),
        };
        NodeInfo {
            role,
            node,
            nodes,
            epoch: self.epoch.load(Ordering::SeqCst),
            cluster_shards: self.slots.len() as u16,
            partitioner: self.config.partitioner.to_string(),
            catalog_objects: self.catalog.len() as u64,
            catalog_bytes: self.catalog.total_bytes(),
            hosted: self.hosted(),
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
) -> StatsSnapshot {
    match shared.config.front {
        FrontDoor::Threaded => accept_threaded(listener, &shared, &shutdown),
        FrontDoor::Reactor { threads } => {
            let factory_shared = Arc::clone(&shared);
            let factory: HandlerFactory = Arc::new(move || -> Handler {
                let shared = Arc::clone(&factory_shared);
                let mut conn = ConnState {
                    compiler: shared.frontend.as_ref().map(|c| (**c).clone()),
                    epoch: 0,
                };
                Box::new(move |payload, wbuf| handle_frame(&shared, payload, wbuf, &mut conn))
            });
            ReactorFront {
                name: "delta-server",
                threads,
                shutdown: Arc::clone(&shutdown),
                wire: shared.wire.clone(),
                rtel: ReactorTelemetry::register(&shared.telemetry),
                stall_limit: shared.config.stall_limit,
                factory: closure_factory(factory),
                backend: None,
            }
            .run(listener);
        }
    }
    // Connections have drained; shut the shards down, collecting their
    // final ledgers (and writing snapshots).
    let mut stats: Vec<ShardStats> = Vec::new();
    for slot in &shared.slots {
        if let Some(core) = slot.read().expect("slot").as_ref() {
            stats.push(core.shutdown());
        }
    }
    stats.sort_by_key(|s| s.shard);
    StatsSnapshot { shards: stats }
}

/// The pre-reactor front door: one blocking thread per connection.
fn accept_threaded(listener: TcpListener, shared: &Arc<Shared>, shutdown: &Arc<AtomicBool>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        // Reap finished connections so a long-lived daemon doesn't
        // accumulate dead handles.
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("delta-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, &shared) {
                            // Disconnects are routine; anything else is
                            // worth a trace on stderr.
                            if e.kind() != io::ErrorKind::UnexpectedEof {
                                eprintln!("delta-server: connection error: {e}");
                            }
                        }
                    })
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("delta-server: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
    // Drain: connections observe the flag within one poll interval;
    // reads and writes are both bounded.
    for handle in connections {
        let _ = handle.join();
    }
}

/// Per-connection mutable state the request handler threads through.
struct ConnState {
    /// This connection's SQL compiler clone, when the server has one.
    compiler: Option<QueryCompiler>,
    /// The routing epoch the peer declared in its last `Hello` (0 until
    /// it handshakes) — what cluster-mode event requests are fenced
    /// against.
    epoch: u64,
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // Each connection compiles SQL with its own clone of the frontend —
    // compilation is CPU-bound, so connections never contend on it.
    let mut conn = ConnState {
        compiler: shared.frontend.as_ref().map(|c| (**c).clone()),
        epoch: 0,
    };
    serve_frames(
        stream,
        &shared.shutdown,
        &shared.wire,
        shared.config.stall_limit,
        |payload, wbuf| handle_frame(shared, payload, wbuf, &mut conn),
    )
}

/// Serves one request frame: the handler body shared by the threaded
/// front (via [`serve_connection`]) and the reactor front (via the
/// handler factory in [`accept_loop`]), so the two doors cannot drift.
fn handle_frame(
    shared: &Shared,
    payload: &[u8],
    wbuf: &mut Vec<u8>,
    conn: &mut ConnState,
) -> io::Result<bool> {
    let total = payload.len() as u64 + 4;
    let response = match Request::decode(payload) {
        Ok(request) => {
            // The meter reflects real socket bytes (length prefix
            // included), not just payloads.
            meter_request(shared, &request, total);
            match request {
                Request::Tagged { corr, inner } => Response::Tagged {
                    corr,
                    inner: Box::new(handle_request(shared, *inner, conn)),
                },
                other => handle_request(shared, other, conn),
            }
        }
        Err(e) => Response::Error {
            code: error_code::BAD_FRAME,
            message: e.to_string(),
        },
    };
    let before = wbuf.len();
    append_frame_with(wbuf, |buf| response.encode_into(buf))?;
    shared
        .meter
        .record(TrafficClass::Control, (wbuf.len() - before) as u64);
    let shutting_down = match &response {
        Response::ShutdownOk => true,
        Response::Tagged { inner, .. } => matches!(**inner, Response::ShutdownOk),
        _ => false,
    };
    Ok(shutting_down)
}

fn meter_request(shared: &Shared, request: &Request, wire_bytes: u64) {
    match request {
        Request::Query(_) | Request::Sql { .. } => {
            shared.meter.record(TrafficClass::QueryShip, wire_bytes);
        }
        Request::Update(_) => shared.meter.record(TrafficClass::UpdateShip, wire_bytes),
        Request::Batch(items) => {
            meter_mixed(
                shared,
                wire_bytes,
                items
                    .iter()
                    .filter(|i| matches!(i, BatchItem::Query(_)))
                    .count() as u64,
                items.len() as u64,
            );
        }
        Request::NodeOps(ops) => {
            meter_mixed(
                shared,
                wire_bytes,
                ops.iter()
                    .filter(|op| matches!(op.item, BatchItem::Query(_)))
                    .count() as u64,
                ops.len() as u64,
            );
        }
        Request::Tagged { inner, .. } => meter_request(shared, inner, wire_bytes),
        // Replication frames meter as control traffic: they are the
        // robustness overhead an operator wants to see separately from
        // the client-facing query/update classes.
        Request::Stats
        | Request::Telemetry
        | Request::Shutdown
        | Request::Hello { .. }
        | Request::DetachShard { .. }
        | Request::AttachShard { .. }
        | Request::SetEpoch { .. }
        | Request::Reshard { .. }
        | Request::Replicate { .. }
        | Request::ReplicaBootstrap { .. }
        | Request::ReplicaStatus
        | Request::Promote { .. } => {
            shared.meter.record(TrafficClass::Control, wire_bytes);
        }
    }
}

/// Splits a mixed frame's bytes over the query/update classes in
/// proportion to item counts (exact, largest-remainder).
fn meter_mixed(shared: &Shared, wire_bytes: u64, n_queries: u64, n_items: u64) {
    let nu = n_items - n_queries;
    if n_items == 0 {
        shared.meter.record(TrafficClass::Control, wire_bytes);
        return;
    }
    let shares = apportion(wire_bytes, &[n_queries, nu]);
    shared.meter.record(TrafficClass::QueryShip, shares[0]);
    shared.meter.record(TrafficClass::UpdateShip, shares[1]);
}

/// Whether this request kind executes events (and must therefore be
/// fenced by the routing epoch in cluster mode). Admin and introspection
/// verbs are exempt — resharding itself runs between epochs.
fn is_event_request(request: &Request) -> bool {
    matches!(
        request,
        Request::Query(_)
            | Request::Update(_)
            | Request::Sql { .. }
            | Request::Batch(_)
            | Request::NodeOps(_)
    )
}

fn handle_request(shared: &Shared, request: Request, conn: &mut ConnState) -> Response {
    if shared.config.cluster.is_some() && is_event_request(&request) {
        let current = shared.epoch.load(Ordering::SeqCst);
        if conn.epoch != current {
            // Nothing executes on a stale map — the typed redirect.
            return Response::WrongEpoch { epoch: current };
        }
    }
    match request {
        Request::Query(q) => handle_query(shared, q),
        Request::Update(u) => {
            if u.object.index() >= shared.catalog.len() {
                return unknown_object(u.object);
            }
            let (shard, local) = shared.map.split_update(&u);
            let slot = shared.slots[shard].read().expect("slot");
            match slot.as_ref() {
                Some(core) => {
                    let fence = core.fence();
                    if fence > 0 && local.seq <= fence {
                        return already_applied(local.seq, fence);
                    }
                    let version = core.apply_update(local);
                    let wait = core.repl().map(|r| (Arc::clone(r), r.end()));
                    drop(slot);
                    // Reply only once every reachable backup holds the
                    // event — what makes an acknowledged write survive
                    // this node's death.
                    if let Some((repl, offset)) = wait {
                        repl.wait_replicated(offset, REPL_WAIT_MAX);
                    }
                    Response::UpdateOk {
                        shard: shard as u16,
                        version,
                    }
                }
                None => wrong_node(shared, shard),
            }
        }
        Request::Sql { seq, sql } => handle_sql(shared, conn.compiler.as_ref(), seq, &sql),
        Request::Batch(items) => handle_batch(shared, items),
        Request::NodeOps(ops) => handle_node_ops(shared, ops),
        Request::Hello { version, epoch } => {
            // The handshake is the one frame designed to carry the
            // protocol version — reject a mismatch here, typed, instead
            // of surfacing it later as opaque decode errors mid-traffic.
            if version != PROTOCOL_VERSION {
                return Response::Error {
                    code: error_code::BAD_FRAME,
                    message: format!(
                        "protocol version mismatch: peer speaks v{version}, \
                         this server speaks v{PROTOCOL_VERSION}"
                    ),
                };
            }
            conn.epoch = epoch;
            Response::HelloOk(shared.node_info())
        }
        Request::DetachShard { shard } => handle_detach(shared, shard),
        Request::AttachShard { shard, state } => handle_attach(shared, shard, &state),
        Request::SetEpoch { epoch } => {
            if shared.config.cluster.is_none() {
                return not_clustered("SetEpoch");
            }
            shared.epoch.store(epoch, Ordering::SeqCst);
            shared.telemetry.gauge("node.epoch").set(epoch);
            // The issuing connection (the router's admin path) evidently
            // knows the new epoch; adopt it so its next ops aren't
            // pointlessly fenced.
            conn.epoch = epoch;
            Response::EpochOk { epoch }
        }
        Request::Reshard { .. } => Response::Error {
            code: error_code::NOT_CLUSTERED,
            message: "resharding is coordinated by the router tier; \
                      send Reshard to delta-routerd"
                .to_string(),
        },
        Request::Replicate {
            shard,
            from_offset,
            items,
        } => handle_replicate(shared, shard, from_offset, items),
        Request::ReplicaBootstrap { shard, state } => {
            handle_replica_bootstrap(shared, shard, &state)
        }
        Request::ReplicaStatus => handle_replica_status(shared),
        Request::Promote { shard } => handle_promote(shared, shard),
        // Nested tags are rejected by the decoder; a bare Tagged here
        // means the caller bypassed `serve_connection`'s unwrapping.
        Request::Tagged { inner, .. } => handle_request(shared, *inner, conn),
        Request::Stats => {
            let mut shards: Vec<ShardStats> = Vec::new();
            for slot in &shared.slots {
                if let Some(core) = slot.read().expect("slot").as_ref() {
                    shards.push(core.stats());
                }
            }
            Response::StatsOk(StatsSnapshot { shards })
        }
        // Introspection, like `Stats`: never fenced by the routing epoch
        // (and `is_event_request` must keep it that way) — an operator
        // scrapes metrics from a node regardless of map currency.
        Request::Telemetry => Response::TelemetryOk(shared.telemetry.snapshot()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShutdownOk
        }
    }
}

/// A shard's read-locked slot, tagged with its shard id.
type LockedShard<'a> = (usize, RwLockReadGuard<'a, Option<ShardCore>>);

/// Read-locks every shard in `shards` (ascending, deduplicated input),
/// failing with the missing shard if any is not hosted here.
fn lock_shards<'a>(
    shared: &'a Shared,
    shards: impl Iterator<Item = usize>,
) -> Result<Vec<LockedShard<'a>>, usize> {
    let mut guards = Vec::new();
    for s in shards {
        let guard = shared.slots[s].read().expect("slot");
        if guard.is_none() {
            return Err(s);
        }
        guards.push((s, guard));
    }
    Ok(guards)
}

fn handle_query(shared: &Shared, q: QueryEvent) -> Response {
    handle_query_as(shared, q, OpClass::Query)
}

/// The query fan-out, with the telemetry op class made explicit so the
/// SQL path's shard time lands in its own histograms.
fn handle_query_as(shared: &Shared, q: QueryEvent, class: OpClass) -> Response {
    if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
        return unknown_object(bad);
    }
    let subs = shared.map.split_query(&q, &shared.catalog);
    // Every touched shard must be hosted here before anything executes:
    // a partially-served query on a stale map would be a wrong answer.
    let guards = match lock_shards(shared, subs.iter().map(|(s, _)| *s)) {
        Ok(g) => g,
        Err(missing) => return wrong_node(shared, missing),
    };
    // A promoted primary's fence: the old primary already served this
    // event before failover, so a retry through the new epoch gets the
    // typed reply — never a partial or double execution.
    if let Some(fence) = guards
        .iter()
        .map(|(_, g)| g.as_ref().expect("checked by lock_shards").fence())
        .find(|&f| f > 0 && q.seq <= f)
    {
        return already_applied(q.seq, fence);
    }
    let mut sent = 0u16;
    let mut local_answers = 0u16;
    let mut shipped = 0u16;
    let mut failure: Option<String> = None;
    let mut waits: Vec<(Arc<ReplState>, u64)> = Vec::new();
    // Every touched shard serves its sub-query even after a failure, so
    // a contract violation on one shard never leaves another shard's
    // sub-trace short (the differential tests depend on it).
    for ((_, guard), (_, sub)) in guards.iter().zip(subs) {
        let core = guard.as_ref().expect("checked by lock_shards");
        sent += 1;
        match core.serve_query_as(sub, class) {
            Ok(true) => local_answers += 1,
            Ok(false) => shipped += 1,
            Err(error) => {
                failure.get_or_insert(error);
            }
        }
        if let Some(repl) = core.repl() {
            waits.push((Arc::clone(repl), repl.end()));
        }
    }
    drop(guards);
    // Queries are events too (they advance policy and ledger state), so
    // the reply waits for backup acknowledgement like an update does.
    for (repl, offset) in waits {
        repl.wait_replicated(offset, REPL_WAIT_MAX);
    }
    if let Some(message) = failure {
        return Response::Error {
            code: error_code::CONTRACT_VIOLATED,
            message,
        };
    }
    Response::QueryOk {
        shards_touched: sent,
        local_answers,
        shipped,
    }
}

/// Compiles raw SQL with the connection's compiler and serves the
/// resulting event through the normal shard fan-out.
fn handle_sql(shared: &Shared, compiler: Option<&QueryCompiler>, seq: u64, sql: &str) -> Response {
    let Some(compiler) = compiler else {
        return Response::Error {
            code: error_code::SQL_UNAVAILABLE,
            message: "server has no SQL frontend (start it from a workload preset)".to_string(),
        };
    };
    let compiled = match compiler.compile(sql) {
        Ok(c) => c,
        Err(QueryError::Parse(e)) => {
            let span = e.span();
            return Response::SqlRejected {
                stage: SqlStage::Parse,
                span_start: span.start as u32,
                span_end: span.end as u32,
                message: e.to_string(),
            };
        }
        Err(QueryError::Analyze(e)) => {
            return Response::SqlRejected {
                stage: SqlStage::Analyze,
                span_start: 0,
                span_end: 0,
                message: e.to_string(),
            };
        }
    };
    let objects = compiled.objects.len() as u32;
    let event = compiled.into_event(seq);
    let (result_bytes, tolerance, kind) = (event.result_bytes, event.tolerance, event.kind);
    match handle_query_as(shared, event, OpClass::Sql) {
        Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        } => Response::SqlOk {
            shards_touched,
            local_answers,
            shipped,
            objects,
            result_bytes,
            tolerance,
            kind,
        },
        other => other,
    }
}

/// Serves a whole batch with one lock acquisition per touched shard:
/// every item is split as usual, but each shard executes its sub-events
/// as one ordered [`ShardCore::run_batch`], so the serialization cost is
/// paid per *batch*, not per event.
///
/// Per-shard sub-event order equals item order, which is what keeps a
/// batched replay byte-identical to the same events sent one frame at a
/// time (pinned by the shard-level and integration tests).
fn handle_batch(shared: &Shared, items: Vec<BatchItem>) -> Response {
    struct QueryAcc {
        sent: u16,
        local: u16,
        shipped: u16,
    }
    let mut replies: Vec<Option<BatchReply>> = Vec::with_capacity(items.len());
    replies.resize_with(items.len(), || None);
    let mut accs: Vec<Option<QueryAcc>> = Vec::with_capacity(items.len());
    accs.resize_with(items.len(), || None);
    let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); shared.slots.len()];

    for (i, item) in items.into_iter().enumerate() {
        match item {
            BatchItem::Query(q) => {
                if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
                    replies[i] = Some(batch_error(unknown_object(bad)));
                    continue;
                }
                let subs = shared.map.split_query(&q, &shared.catalog);
                accs[i] = Some(QueryAcc {
                    sent: subs.len() as u16,
                    local: 0,
                    shipped: 0,
                });
                for (s, sub) in subs {
                    per_shard[s].push(ShardOp::Query {
                        item: i as u32,
                        event: sub,
                    });
                }
            }
            BatchItem::Update(u) => {
                if u.object.index() >= shared.catalog.len() {
                    replies[i] = Some(batch_error(unknown_object(u.object)));
                    continue;
                }
                let (s, local) = shared.map.split_update(&u);
                per_shard[s].push(ShardOp::Update {
                    item: i as u32,
                    event: local,
                });
            }
        }
    }

    // All touched shards must be hosted before any sub-batch runs: a
    // stale map must never half-execute a batch.
    let touched: Vec<usize> = (0..per_shard.len())
        .filter(|&s| !per_shard[s].is_empty())
        .collect();
    let guards = match lock_shards(shared, touched.iter().copied()) {
        Ok(g) => g,
        Err(missing) => return wrong_node(shared, missing),
    };
    fence_items(&guards, &mut per_shard, &mut replies);
    let mut waits: Vec<(Arc<ReplState>, u64)> = Vec::new();
    for (s, guard) in guards {
        let core = guard.as_ref().expect("checked by lock_shards");
        for outcome in core.run_batch(std::mem::take(&mut per_shard[s])) {
            match outcome {
                OpOutcome::Query { item, local } => {
                    let acc = accs[item as usize]
                        .as_mut()
                        .expect("query outcome for non-query item");
                    if local {
                        acc.local += 1;
                    } else {
                        acc.shipped += 1;
                    }
                }
                // A contract violation poisons its item only; the rest
                // of the batch is unaffected. The error reply takes
                // precedence over any sub-queries of the same item that
                // other shards did serve.
                OpOutcome::QueryFailed { item, error } => {
                    replies[item as usize] = Some(BatchReply::Error {
                        code: error_code::CONTRACT_VIOLATED,
                        message: error,
                    });
                }
                OpOutcome::Update { item, version } => {
                    replies[item as usize] = Some(BatchReply::Update {
                        shard: s as u16,
                        version,
                    });
                }
            }
        }
        if let Some(repl) = core.repl() {
            waits.push((Arc::clone(repl), repl.end()));
        }
    }
    // Replies only after every reachable backup holds what this batch
    // applied — the wait that makes acknowledged writes survive
    // failover.
    for (repl, offset) in waits {
        repl.wait_replicated(offset, REPL_WAIT_MAX);
    }

    let replies = replies
        .into_iter()
        .zip(accs)
        .map(|(reply, acc)| match (reply, acc) {
            (Some(r), _) => r,
            (None, Some(acc)) => BatchReply::Query {
                shards_touched: acc.sent,
                local_answers: acc.local,
                shipped: acc.shipped,
            },
            // An update that reached no shard can't happen (every valid
            // object id owns exactly one shard), but fail loudly if the
            // invariant ever breaks rather than fabricating a reply.
            (None, None) => BatchReply::Error {
                code: error_code::BAD_FRAME,
                message: "item produced no outcome".to_string(),
            },
        })
        .collect();
    Response::BatchOk(replies)
}

/// Executes the router's pre-split, shard-targeted ops. Replies come
/// back as a `BatchOk` with one reply per op in op order; each shard's
/// ops run as one coalesced sub-batch, exactly like `handle_batch`.
fn handle_node_ops(shared: &Shared, ops: Vec<NodeOp>) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("NodeOps");
    }
    // Fault injection: park on the serving thread *before* any shard
    // lock is taken, so only router traffic targeting this node pays
    // the simulated link — other nodes' shards stay unaffected.
    if let Some(link) = shared.config.chaos_link {
        let bytes = ops.len() as u64 * std::mem::size_of::<NodeOp>() as u64;
        std::thread::sleep(std::time::Duration::from_secs_f64(
            link.transfer_secs(bytes),
        ));
    }
    if let Some(op) = ops
        .iter()
        .find(|op| op.shard as usize >= shared.slots.len())
    {
        return Response::Error {
            code: error_code::BAD_FRAME,
            message: format!(
                "node-op targets shard {} but the cluster has {}",
                op.shard,
                shared.slots.len()
            ),
        };
    }
    let mut replies: Vec<Option<BatchReply>> = Vec::with_capacity(ops.len());
    replies.resize_with(ops.len(), || None);
    let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); shared.slots.len()];
    for (i, op) in ops.into_iter().enumerate() {
        let shard_ops = &mut per_shard[op.shard as usize];
        match op.item {
            BatchItem::Query(q) => shard_ops.push(ShardOp::Query {
                item: i as u32,
                event: q,
            }),
            BatchItem::Update(u) => shard_ops.push(ShardOp::Update {
                item: i as u32,
                event: u,
            }),
        }
    }
    let touched: Vec<usize> = (0..per_shard.len())
        .filter(|&s| !per_shard[s].is_empty())
        .collect();
    // Nothing executes unless every targeted shard is hosted here — the
    // router's map was stale, and it must re-route, not half-run.
    let guards = match lock_shards(shared, touched.iter().copied()) {
        Ok(g) => g,
        Err(missing) => return wrong_node(shared, missing),
    };
    fence_items(&guards, &mut per_shard, &mut replies);
    let mut waits: Vec<(Arc<ReplState>, u64)> = Vec::new();
    for (s, guard) in guards {
        let core = guard.as_ref().expect("checked by lock_shards");
        for outcome in core.run_batch(std::mem::take(&mut per_shard[s])) {
            let (item, reply) = match outcome {
                OpOutcome::Query { item, local } => (
                    item,
                    BatchReply::Query {
                        shards_touched: 1,
                        local_answers: local as u16,
                        shipped: !local as u16,
                    },
                ),
                OpOutcome::QueryFailed { item, error } => (
                    item,
                    BatchReply::Error {
                        code: error_code::CONTRACT_VIOLATED,
                        message: error,
                    },
                ),
                OpOutcome::Update { item, version } => (
                    item,
                    BatchReply::Update {
                        shard: s as u16,
                        version,
                    },
                ),
            };
            replies[item as usize] = Some(reply);
        }
        if let Some(repl) = core.repl() {
            waits.push((Arc::clone(repl), repl.end()));
        }
    }
    // As in `handle_batch`: acknowledged only once replicated (or every
    // laggard is down), bounded by `REPL_WAIT_MAX`.
    for (repl, offset) in waits {
        repl.wait_replicated(offset, REPL_WAIT_MAX);
    }
    Response::BatchOk(
        replies
            .into_iter()
            .map(|r| {
                r.unwrap_or(BatchReply::Error {
                    code: error_code::BAD_FRAME,
                    message: "op produced no outcome".to_string(),
                })
            })
            .collect(),
    )
}

/// Resharding step 1 at the losing node: stop hosting the shard and hand
/// its serialized engine state back.
fn handle_detach(shared: &Shared, shard: u16) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("DetachShard");
    }
    if shard as usize >= shared.slots.len() {
        return Response::Error {
            code: error_code::BAD_FRAME,
            message: format!("shard {shard} out of range"),
        };
    }
    // The write lock waits out every in-flight op on this shard, so the
    // snapshot is taken at a quiescent point.
    let mut slot = shared.slots[shard as usize].write().expect("slot");
    let Some(core) = slot.as_ref() else {
        drop(slot);
        return wrong_node(shared, shard as usize);
    };
    // Serialize and size-check BEFORE committing to the detach: a
    // snapshot that cannot ride a frame must leave the shard hosted and
    // intact, not destroy the only copy of its state.
    let state = snapshot_to_string(&core.snapshot());
    if state.len() + 16 > crate::protocol::MAX_FRAME_BYTES as usize {
        return Response::Error {
            code: error_code::RESHARD_FAILED,
            message: format!(
                "shard {shard}'s snapshot is {} bytes — too large for a \
                 {}-byte frame; the shard stays hosted here",
                state.len(),
                crate::protocol::MAX_FRAME_BYTES
            ),
        };
    }
    slot.take().expect("checked above").discard();
    drop(slot);
    shared
        .telemetry
        .gauge("node.shards_hosted")
        .set(shared.hosted().len() as u64);
    Response::ShardState {
        shard,
        state: state.into_bytes(),
    }
}

/// Resharding step 2 at the gaining node: rebuild the shard engine from
/// the old owner's state and start serving it.
fn handle_attach(shared: &Shared, shard: u16, state: &[u8]) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("AttachShard");
    }
    if shard as usize >= shared.slots.len() {
        return Response::Error {
            code: error_code::BAD_FRAME,
            message: format!("shard {shard} out of range"),
        };
    }
    let s = shard as usize;
    let reshard_failed = |message: String| Response::Error {
        code: error_code::RESHARD_FAILED,
        message,
    };
    let snap = match std::str::from_utf8(state)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        .and_then(snapshot_from_str)
    {
        Ok(snap) => snap,
        Err(e) => return reshard_failed(format!("attach shard {shard}: bad state blob: {e}")),
    };
    let sub = shared.map.shard_catalog(s, &shared.catalog);
    if let Err(msg) = validate_restore(&snap, &sub, &shared.config, shared.caches[s], s) {
        return reshard_failed(format!("attach shard {shard}: {msg}"));
    }
    let mut slot = shared.slots[s].write().expect("slot");
    if slot.is_some() {
        return reshard_failed(format!("this node already hosts shard {shard}"));
    }
    *slot = Some(ShardCore::new(ShardSpec {
        shard,
        catalog: sub,
        cache_bytes: shared.caches[s],
        policy: shared.config.policy,
        seed: shared.config.seed + s as u64,
        restore: Some(snap),
        snapshot_path: shared
            .config
            .snapshot_dir
            .as_ref()
            .map(|dir| dir.join(format!("shard-{s}.jsonl"))),
        telemetry: ShardTelemetry::register(&shared.telemetry),
    }));
    drop(slot);
    shared
        .telemetry
        .gauge("node.shards_hosted")
        .set(shared.hosted().len() as u64);
    Response::AttachOk { shard }
}

/// Promotion fences for a coalesced batch: an item the old primary
/// applied before failover must not re-execute — and must not
/// half-execute on its other shards either, so any fenced shard fences
/// the whole item. Fenced items get the typed `ALREADY_APPLIED` reply
/// and their ops are removed from every shard's sub-batch.
fn fence_items(
    guards: &[LockedShard<'_>],
    per_shard: &mut [Vec<ShardOp>],
    replies: &mut [Option<BatchReply>],
) {
    let mut fenced: Vec<(u32, u64, u64)> = Vec::new();
    for (s, guard) in guards {
        let fence = guard.as_ref().expect("checked by lock_shards").fence();
        if fence == 0 {
            continue;
        }
        for op in &per_shard[*s] {
            let (item, seq) = match op {
                ShardOp::Query { item, event } => (*item, event.seq),
                ShardOp::Update { item, event } => (*item, event.seq),
            };
            if seq <= fence {
                fenced.push((item, seq, fence));
            }
        }
    }
    if fenced.is_empty() {
        return;
    }
    let mut dead: Vec<u32> = Vec::with_capacity(fenced.len());
    for &(item, seq, fence) in &fenced {
        replies[item as usize] = Some(batch_error(already_applied(seq, fence)));
        dead.push(item);
    }
    for ops in per_shard.iter_mut() {
        ops.retain(|op| {
            let item = match op {
                ShardOp::Query { item, .. } => *item,
                ShardOp::Update { item, .. } => *item,
            };
            !dead.contains(&item)
        });
    }
}

/// Log shipping at a backup: applies `items` to the backup twin of
/// `shard`, which must stand exactly at `from_offset` applied events —
/// any mismatch (including "no such backup here") gets the typed
/// `NOT_REPLICA`, telling the primary's pump to re-bootstrap.
fn handle_replicate(
    shared: &Shared,
    shard: u16,
    from_offset: u64,
    items: Vec<BatchItem>,
) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("Replicate");
    }
    if shard as usize >= shared.backups.len() {
        return Response::Error {
            code: error_code::BAD_FRAME,
            message: format!("shard {shard} out of range"),
        };
    }
    let guard = shared.backups[shard as usize].read().expect("backup slot");
    let Some(core) = guard.as_ref() else {
        return Response::Error {
            code: error_code::NOT_REPLICA,
            message: format!("no backup of shard {shard} here; bootstrap first"),
        };
    };
    let at = core.events();
    if at != from_offset {
        return Response::Error {
            code: error_code::NOT_REPLICA,
            message: format!(
                "backup of shard {shard} stands at offset {at}, not {from_offset}; re-bootstrap"
            ),
        };
    }
    let n = items.len() as u64;
    let ops = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| match item {
            BatchItem::Query(q) => ShardOp::Query {
                item: i as u32,
                event: q,
            },
            BatchItem::Update(u) => ShardOp::Update {
                item: i as u32,
                event: u,
            },
        })
        .collect();
    core.run_batch(ops);
    let offset = core.events();
    drop(guard);
    shared.telemetry.counter("replica.applied_events").add(n);
    Response::ReplicaOk { shard, offset }
}

/// Seeds (or re-seeds) a backup twin of `shard`. An empty state blob
/// means "build a fresh core" — the zero-event bootstrap whose replay
/// lineage is byte-identical to the primary's (policy init included);
/// a non-empty blob is an engine snapshot for late catch-up after log
/// truncation (a deterministic twin, the same lineage as a migrated
/// shard). Re-bootstrapping over an existing backup is allowed.
fn handle_replica_bootstrap(shared: &Shared, shard: u16, state: &[u8]) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("ReplicaBootstrap");
    }
    if shard as usize >= shared.backups.len() {
        return Response::Error {
            code: error_code::BAD_FRAME,
            message: format!("shard {shard} out of range"),
        };
    }
    let s = shard as usize;
    if let Some(allow) = shared
        .config
        .replication
        .as_ref()
        .and_then(|r| r.backup_of.as_ref())
    {
        if !allow.contains(&shard) {
            return Response::Error {
                code: error_code::NOT_REPLICA,
                message: format!("this node does not back up shard {shard} (--backup-of)"),
            };
        }
    }
    let primary_here = shared.slots[s].read().expect("slot").is_some();
    if primary_here {
        return Response::Error {
            code: error_code::NOT_REPLICA,
            message: format!("shard {shard} is served as a primary here"),
        };
    }
    let sub = shared.map.shard_catalog(s, &shared.catalog);
    let restore = if state.is_empty() {
        None
    } else {
        let snap = match std::str::from_utf8(state)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            .and_then(snapshot_from_str)
        {
            Ok(snap) => snap,
            Err(e) => {
                return Response::Error {
                    code: error_code::NOT_REPLICA,
                    message: format!("bootstrap shard {shard}: bad state blob: {e}"),
                }
            }
        };
        if let Err(msg) = validate_restore(&snap, &sub, &shared.config, shared.caches[s], s) {
            return Response::Error {
                code: error_code::NOT_REPLICA,
                message: format!("bootstrap shard {shard}: {msg}"),
            };
        }
        Some(snap)
    };
    let core = ShardCore::new(ShardSpec {
        shard,
        catalog: sub,
        cache_bytes: shared.caches[s],
        policy: shared.config.policy,
        seed: shared.config.seed + s as u64,
        restore,
        // Backups never persist: the primary re-seeds them on demand,
        // and a backup snapshot on disk could resurrect stale state
        // as a primary after a cold restart.
        snapshot_path: None,
        telemetry: ShardTelemetry::register(&shared.telemetry),
    });
    let offset = core.events();
    *shared.backups[s].write().expect("backup slot") = Some(core);
    shared.telemetry.counter("replica.bootstraps").inc();
    Response::ReplicaOk { shard, offset }
}

/// Reports every backup twin this node holds and the applied-event
/// offset each stands at — what the router's failover compares to pick
/// the most-caught-up backup.
fn handle_replica_status(shared: &Shared) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("ReplicaStatus");
    }
    let mut offsets = Vec::new();
    for (s, slot) in shared.backups.iter().enumerate() {
        if let Some(core) = slot.read().expect("backup slot").as_ref() {
            offsets.push((s as u16, core.events()));
        }
    }
    Response::ReplicaStatusOk(offsets)
}

/// Failover at a surviving node: turns the backup twin of `shard` into
/// the serving primary. The promoted core fences every sequence number
/// the old primary applied (a retried event gets the typed
/// `ALREADY_APPLIED`, never a double apply), adopts this node's
/// snapshot directory, and starts replicating to its own successors.
fn handle_promote(shared: &Shared, shard: u16) -> Response {
    if shared.config.cluster.is_none() {
        return not_clustered("Promote");
    }
    if shard as usize >= shared.backups.len() {
        return Response::Error {
            code: error_code::BAD_FRAME,
            message: format!("shard {shard} out of range"),
        };
    }
    let s = shard as usize;
    let Some(backup) = shared.backups[s].write().expect("backup slot").take() else {
        return Response::Error {
            code: error_code::NOT_REPLICA,
            message: format!("no backup of shard {shard} to promote here"),
        };
    };
    let mut slot = shared.slots[s].write().expect("slot");
    if slot.is_some() {
        // Serving both roles at once would double-apply; put the twin
        // back untouched.
        *shared.backups[s].write().expect("backup slot") = Some(backup);
        return Response::Error {
            code: error_code::NOT_REPLICA,
            message: format!("shard {shard} is already served as a primary here"),
        };
    }
    let repl = shared.repl.as_ref().map(|rt| {
        Arc::new(ReplState::new(
            shard,
            backup.events(),
            rt.replicas as usize,
            Arc::clone(&rt.notifier),
        ))
    });
    let snapshot_path = shared
        .config
        .snapshot_dir
        .as_ref()
        .map(|dir| dir.join(format!("shard-{s}.jsonl")));
    let (core, offset) = backup.into_primary(snapshot_path, repl);
    *slot = Some(core);
    drop(slot);
    shared
        .telemetry
        .gauge("node.shards_hosted")
        .set(shared.hosted().len() as u64);
    shared.telemetry.counter("node.promotions").inc();
    Response::PromoteOk { shard, offset }
}

/// The typed reply for an event a promoted primary's fence blocks: the
/// old primary applied it before failover, so a retrying client counts
/// it done rather than double-applying.
fn already_applied(seq: u64, fence: u64) -> Response {
    Response::Error {
        code: error_code::ALREADY_APPLIED,
        message: format!("seq {seq} was applied before failover (fence {fence})"),
    }
}

/// Socket timeout for pump round trips: a peer slower than this is
/// treated as down (applies stop waiting for it) rather than allowed to
/// wedge the pump.
const PUMP_IO_TIMEOUT: Duration = Duration::from_millis(250);

/// One pump thread: ships every hosted primary's applied-event log to
/// the successor peer at `rank`, bootstrapping targets as needed and
/// marking them down (excluded from apply-side waits) when the link
/// dies. Reconnects forever with capped, jittered backoff so a
/// restarted peer is not hit by every primary in lockstep.
fn replication_pump(shared: Arc<Shared>, rank: usize) {
    let rt = shared.repl.as_ref().expect("pump without runtime");
    let cluster = shared
        .config
        .cluster
        .as_ref()
        .expect("replication requires cluster mode");
    let peer_idx = (cluster.node as usize + 1 + rank) % cluster.nodes as usize;
    let peer = rt.peers[peer_idx].clone();
    // Deterministic per-pump jitter seed: spreads reconnects without a
    // shared RNG (the jitter affects timing only, never data).
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((cluster.node as u64) << 32) ^ rank as u64;
    let mut backoff = Duration::from_millis(50);
    while !shared.shutdown.load(Ordering::SeqCst) {
        if let Ok(mut client) = DeltaClient::connect(peer.as_str()) {
            if client.set_io_timeout(Some(PUMP_IO_TIMEOUT)).is_ok() {
                backoff = Duration::from_millis(50);
                pump_session(&shared, rank, &mut client);
            }
        }
        // The link is gone: every target this pump serves is down until
        // the next session bootstraps it back.
        for_each_repl(&shared, |repl| repl.set_status(rank, TargetStatus::Down));
        std::thread::sleep(jittered(&mut rng, backoff));
        backoff = (backoff * 2).min(Duration::from_secs(1));
    }
}

/// One connected pump session: scans the hosted primaries, bootstraps
/// stale targets and ships unshipped log suffixes, sleeping on the
/// notifier between rounds. Returns when the link errors or the server
/// shuts down.
fn pump_session(shared: &Shared, rank: usize, client: &mut DeltaClient) {
    let rt = shared.repl.as_ref().expect("pump without runtime");
    let lag_gauge = shared.telemetry.gauge("replica.lag_events");
    let shipped = shared.telemetry.counter("replica.shipped_events");
    let bootstraps = shared.telemetry.counter("replica.bootstraps_sent");
    let mut seen = rt.notifier.snapshot();
    // A fresh link: every target this pump previously marked down is
    // worth another bootstrap. Targets the peer *refuses* go back to
    // down below and stay there for the rest of the session, so a
    // refusal never becomes a per-round retry storm.
    for_each_repl(shared, |repl| {
        if repl.status(rank) == TargetStatus::Down {
            repl.set_status(rank, TargetStatus::NeedsBootstrap);
        }
    });
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Scan the slots fresh each round: a shard promoted mid-flight
        // starts replicating without a pump restart.
        for s in 0..shared.slots.len() {
            let Some(repl) = shared.slots[s]
                .read()
                .expect("slot")
                .as_ref()
                .and_then(|core| core.repl().cloned())
            else {
                continue;
            };
            if repl.status(rank) == TargetStatus::NeedsBootstrap {
                let (offset, snap) = {
                    let guard = shared.slots[s].read().expect("slot");
                    let Some(core) = guard.as_ref() else { continue };
                    core.bootstrap_state()
                };
                let state = match snap {
                    None => Vec::new(),
                    Some(snap) => snapshot_to_string(&snap).into_bytes(),
                };
                if state.len() + 16 > crate::protocol::MAX_FRAME_BYTES as usize {
                    // An unshippable snapshot: leave the target down
                    // rather than wedge the pump; operators see it as
                    // unbounded lag on the gauge.
                    repl.set_status(rank, TargetStatus::Down);
                    continue;
                }
                match client.request(&Request::ReplicaBootstrap {
                    shard: s as u16,
                    state,
                }) {
                    Ok(Response::ReplicaOk { offset: acked, .. }) => {
                        debug_assert_eq!(acked, offset);
                        repl.mark_bootstrapped(rank, acked);
                        bootstraps.inc();
                    }
                    // A typed refusal (allowlisted away, or the peer
                    // serves the shard as primary): this target will
                    // never take the shard; stop asking.
                    Ok(_) => repl.set_status(rank, TargetStatus::Down),
                    Err(_) => return,
                }
            }
            while let Some((from, items)) = repl.suffix_for(rank) {
                let n = items.len() as u64;
                match client.request(&Request::Replicate {
                    shard: s as u16,
                    from_offset: from,
                    items,
                }) {
                    Ok(Response::ReplicaOk { offset, .. }) => {
                        repl.record_ack(rank, offset);
                        shipped.add(n);
                    }
                    Ok(Response::Error { code, .. }) if code == error_code::NOT_REPLICA => {
                        repl.set_status(rank, TargetStatus::NeedsBootstrap);
                        break;
                    }
                    Ok(_) => {
                        repl.set_status(rank, TargetStatus::Down);
                        break;
                    }
                    Err(_) => return,
                }
            }
        }
        lag_gauge.set(max_lag(shared));
        seen = rt.notifier.wait(seen, Duration::from_millis(10));
    }
}

/// Applies `f` to every hosted primary's replication log.
fn for_each_repl(shared: &Shared, mut f: impl FnMut(&ReplState)) {
    for slot in &shared.slots {
        if let Some(repl) = slot.read().expect("slot").as_ref().and_then(|c| c.repl()) {
            f(repl);
        }
    }
}

/// Worst replication lag across hosted primaries, for the
/// `replica.lag_events` gauge.
fn max_lag(shared: &Shared) -> u64 {
    let mut worst = 0;
    for_each_repl(shared, |repl| worst = worst.max(repl.lag()));
    worst
}

/// Converts a single-request error response into its batch-item shape.
fn batch_error(r: Response) -> BatchReply {
    match r {
        Response::Error { code, message } => BatchReply::Error { code, message },
        other => BatchReply::Error {
            code: error_code::BAD_FRAME,
            message: format!("unexpected error shape {other:?}"),
        },
    }
}

fn unknown_object(o: ObjectId) -> Response {
    Response::Error {
        code: error_code::UNKNOWN_OBJECT,
        message: format!("object {o} is outside the catalog"),
    }
}

fn wrong_node(shared: &Shared, shard: usize) -> Response {
    Response::Error {
        code: error_code::WRONG_NODE,
        message: format!(
            "shard {shard} is not hosted on this node (epoch {}); refresh the routing map",
            shared.epoch.load(Ordering::SeqCst)
        ),
    }
}

fn not_clustered(what: &str) -> Response {
    Response::Error {
        code: error_code::NOT_CLUSTERED,
        message: format!("{what} requires cluster mode (start the node with a cluster role)"),
    }
}
