//! The TCP service: listener, per-connection framing, inline shard
//! execution and graceful shutdown.
//!
//! Each accepted connection gets a thread that decodes request frames
//! and executes them directly against the lock-protected
//! [`crate::shard::ShardCore`]s (per-shard mutexes serialize per-shard
//! event order; different connections proceed in parallel on different
//! shards), so each connection sees strictly ordered request/response
//! pairs with no per-event thread handoff. Wire bytes are recorded on a
//! shared [`delta_net::TrafficMeter`] (query frames as `QueryShip`,
//! update frames as `UpdateShip`, the rest as `Control`), so an operator
//! can audit protocol overhead separately from the policy-level ledgers.

use crate::config::ServerConfig;
use crate::partition::{apportion, ShardMap};
use crate::protocol::{
    append_frame_with, error_code, BatchItem, BatchReply, Request, Response, ShardStats, SqlStage,
    StatsSnapshot,
};
use crate::shard::{OpOutcome, ShardCore, ShardOp, ShardSpec};
use delta_core::engine::read_snapshot;
use delta_core::EngineSnapshot;
use delta_net::{TrafficClass, TrafficMeter};
use delta_query::{QueryCompiler, QueryError, Schema};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::QueryEvent;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked accept/read loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// A running delta-server instance.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<StatsSnapshot>,
    meter: Arc<TrafficMeter>,
}

impl Server {
    /// Binds and starts serving `catalog` with `config`. Returns once the
    /// listener is live; serving happens on background threads.
    pub fn start(config: ServerConfig, catalog: ObjectCatalog) -> io::Result<Server> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if config.n_shards > catalog.len() {
            // A shard with an empty sub-catalog cannot host a repository
            // slice; refuse cleanly instead of panicking mid-start.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} shards but only {} catalog objects",
                    config.n_shards,
                    catalog.len()
                ),
            ));
        }
        // Build the SQL frontend before binding: a frontend whose spatial
        // partition disagrees with the served catalog would compile
        // queries against the wrong object mapping.
        let frontend = match &config.frontend {
            None => None,
            Some(wcfg) => {
                let mapper = wcfg.spatial_mapper();
                if mapper.partition().len() != catalog.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "frontend partition has {} leaves but the catalog has {} objects; \
                             serve the catalog the frontend preset generates",
                            mapper.partition().len(),
                            catalog.len()
                        ),
                    ));
                }
                Some(Arc::new(QueryCompiler::new(
                    Schema::sdss(),
                    wcfg.sky_model(),
                    mapper,
                )))
            }
        };

        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let map = ShardMap::new(config.n_shards);
        let sub_catalogs: Vec<ObjectCatalog> = (0..config.n_shards)
            .map(|s| map.shard_catalog(s, &catalog))
            .collect();
        let weights: Vec<u64> = sub_catalogs.iter().map(|c| c.total_bytes()).collect();
        let caches = crate::partition::apportion(config.cache_bytes, &weights);

        // Warm restart: read and validate any per-shard snapshots before
        // spawning anything, so a bad snapshot refuses startup cleanly
        // instead of panicking a worker thread.
        let mut snapshot_paths: Vec<Option<std::path::PathBuf>> = vec![None; config.n_shards];
        let mut restores: Vec<Option<EngineSnapshot>> = Vec::new();
        restores.resize_with(config.n_shards, || None);
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
            for (s, sub) in sub_catalogs.iter().enumerate() {
                let path = dir.join(format!("shard-{s}.jsonl"));
                if path.exists() {
                    let snap = read_snapshot(&path)?;
                    let invalid = |msg: String| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("snapshot {}: {msg}", path.display()),
                        )
                    };
                    snap.validate(sub, config.policy.policy_name())
                        .map_err(|e| invalid(e.to_string()))?;
                    // A restored engine keeps the snapshot's cache
                    // capacity, so a changed cache budget must refuse
                    // loudly rather than be ignored invisibly.
                    let configured = config
                        .policy
                        .build(caches[s], config.seed + s as u64)
                        .preferred_capacity(sub, caches[s]);
                    if snap.capacity != configured {
                        return Err(invalid(format!(
                            "was taken with cache capacity {} but this configuration \
                             yields {}; restart with the original cache budget or \
                             clear the snapshot directory",
                            snap.capacity, configured
                        )));
                    }
                    restores[s] = Some(snap);
                }
                snapshot_paths[s] = Some(path);
            }
        }

        let shards: Vec<ShardCore> = sub_catalogs
            .into_iter()
            .enumerate()
            .map(|(s, sub)| {
                ShardCore::new(ShardSpec {
                    shard: s as u16,
                    catalog: sub,
                    cache_bytes: caches[s],
                    policy: config.policy,
                    seed: config.seed + s as u64,
                    restore: restores[s].take(),
                    snapshot_path: snapshot_paths[s].take(),
                })
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let meter = Arc::new(TrafficMeter::new());
        let shared = Arc::new(Shared {
            map,
            catalog,
            shards,
            shutdown: Arc::clone(&shutdown),
            meter: Arc::clone(&meter),
            frontend,
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("delta-accept".to_string())
            .spawn(move || accept_loop(listener, shared, accept_shutdown))
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            shutdown,
            accept_thread,
            meter,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the wire-byte meter.
    pub fn meter(&self) -> delta_net::TrafficSnapshot {
        self.meter.snapshot()
    }

    /// Requests shutdown without waiting (a `Shutdown` frame does this
    /// too).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to stop (after [`Server::request_shutdown`]
    /// or a client `Shutdown` frame) and returns the final per-shard
    /// statistics.
    pub fn join(self) -> StatsSnapshot {
        self.accept_thread.join().expect("accept thread panicked")
    }

    /// Convenience: request shutdown and wait for the final snapshot.
    pub fn stop(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

struct Shared {
    map: ShardMap,
    catalog: ObjectCatalog,
    shards: Vec<ShardCore>,
    shutdown: Arc<AtomicBool>,
    meter: Arc<TrafficMeter>,
    /// Template for the per-connection SQL compilers; `None` when the
    /// server was started without a workload preset.
    frontend: Option<Arc<QueryCompiler>>,
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
) -> StatsSnapshot {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        // Reap finished connections so a long-lived daemon doesn't
        // accumulate dead handles.
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("delta-conn".to_string())
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, &shared) {
                            // Disconnects are routine; anything else is
                            // worth a trace on stderr.
                            if e.kind() != io::ErrorKind::UnexpectedEof {
                                eprintln!("delta-server: connection error: {e}");
                            }
                        }
                    })
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(e) => {
                eprintln!("delta-server: accept error: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
    // Drain: connections first (they observe the flag within one poll
    // interval; reads and writes are both bounded), then the shards,
    // collecting their final ledgers (and writing snapshots).
    for handle in connections {
        let _ = handle.join();
    }
    let mut stats: Vec<ShardStats> = shared.shards.iter().map(ShardCore::shutdown).collect();
    stats.sort_by_key(|s| s.shard);
    StatsSnapshot { shards: stats }
}

/// How long a connection may stall (mid-frame read after shutdown, or a
/// blocked write) before the server drops it.
const STALL_LIMIT: Duration = Duration::from_secs(5);

/// Initial per-connection read-buffer size; grows only when a single
/// frame outgrows it.
const READ_BUF: usize = 64 * 1024;

/// Cap on coalesced response bytes before an early flush, bounding
/// per-connection memory under huge pipelined windows.
const WRITE_COALESCE_BYTES: usize = 256 * 1024;

/// Length of the complete frame (header + payload) at the front of
/// `buf`, or `None` when more bytes are needed. Rejects corrupt length
/// words before any allocation.
fn buffered_frame_len(buf: &[u8]) -> io::Result<Option<usize>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap());
    if len > crate::protocol::MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let total = 4 + len as usize;
    Ok(if buf.len() >= total {
        Some(total)
    } else {
        None
    })
}

/// Pulls more bytes into `rbuf[*end..]` after compacting the unconsumed
/// region `[*start, *end)` to the front (growing the buffer when the
/// pending frame needs it), polling the shutdown flag while idle.
///
/// Returns `Ok(false)` on a clean stop — EOF or server shutdown, both
/// only at a frame boundary (no partial frame buffered). Mid-frame,
/// shutdown grants [`STALL_LIMIT`] for the frame to finish before the
/// connection errors out; EOF mid-frame is an error immediately.
fn fill_polling(
    reader: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    start: &mut usize,
    end: &mut usize,
    shared: &Shared,
) -> io::Result<bool> {
    use std::io::Read;
    if *start > 0 {
        rbuf.copy_within(*start..*end, 0);
        *end -= *start;
        *start = 0;
    }
    // A frame larger than the buffer could never complete: grow to fit
    // (`buffered_frame_len` already validated the length word). And a
    // buffer grown for a *past* oversized frame must not stay pinned for
    // the connection's lifetime (100 idle connections that each saw one
    // 64 MiB frame would otherwise hold gigabytes): once nothing pending
    // needs the extra room, give the memory back.
    let needed = if *end >= 4 {
        4 + u32::from_be_bytes(rbuf[..4].try_into().unwrap()) as usize
    } else {
        *end
    };
    if needed > rbuf.len() {
        rbuf.resize(needed, 0);
    } else if rbuf.len() > READ_BUF && *end <= READ_BUF && needed <= READ_BUF {
        rbuf.truncate(READ_BUF);
        rbuf.shrink_to_fit();
    }
    let at_boundary = *end == 0;
    let mut stall_started: Option<std::time::Instant> = None;
    loop {
        match reader.read(&mut rbuf[*end..]) {
            Ok(0) => {
                if at_boundary {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                *end += n;
                return Ok(true);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    if at_boundary {
                        return Ok(false);
                    }
                    let started = stall_started.get_or_insert_with(std::time::Instant::now);
                    if started.elapsed() > STALL_LIMIT {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame stalled past shutdown grace period",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The per-connection serve loop, built around two reusable buffers:
///
/// * **Read side** — one flat buffer; a `read` syscall pulls as many
///   pipelined frames as the socket holds, and the loop serves every
///   complete frame before touching the socket again. No per-frame
///   allocation, and typically one syscall per *window* rather than two
///   per frame.
/// * **Write side** — responses are encoded (length-prefixed) into a
///   coalesced buffer that hits the socket with a single `write_all`
///   right before the loop would block for input — one flush per window
///   under pipelining, per frame under lockstep (where it cannot be
///   avoided: the client is waiting).
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // BSD-derived platforms propagate the listener's O_NONBLOCK to
    // accepted sockets; clear it so the read timeout below governs.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    // A client that stops draining responses must not be able to wedge
    // graceful shutdown behind an unbounded blocking write.
    stream.set_write_timeout(Some(STALL_LIMIT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    // Each connection compiles SQL with its own clone of the frontend —
    // compilation is CPU-bound, so connections never contend on it.
    let compiler: Option<QueryCompiler> = shared.frontend.as_ref().map(|c| (**c).clone());

    let mut rbuf = vec![0u8; READ_BUF];
    let (mut start, mut end) = (0usize, 0usize);
    let mut wbuf: Vec<u8> = Vec::with_capacity(16 * 1024);

    loop {
        // Serve every complete frame already buffered. On any error,
        // flush the responses already earned by executed requests before
        // propagating — engine state mutated; the acks must not vanish
        // with the buffer.
        loop {
            let total = match buffered_frame_len(&rbuf[start..end]) {
                Ok(Some(total)) => total,
                Ok(None) => break,
                Err(e) => {
                    let _ = writer.write_all(&wbuf);
                    return Err(e);
                }
            };
            let payload = &rbuf[start + 4..start + total];
            let response = match Request::decode(payload) {
                Ok(request) => {
                    // `total` includes the 4-byte length prefix, so the
                    // meter reflects real socket bytes, not just
                    // payloads.
                    meter_request(shared, &request, total as u64);
                    match request {
                        Request::Tagged { corr, inner } => Response::Tagged {
                            corr,
                            inner: Box::new(handle_request(shared, *inner, compiler.as_ref())),
                        },
                        other => handle_request(shared, other, compiler.as_ref()),
                    }
                }
                Err(e) => Response::Error {
                    code: error_code::BAD_FRAME,
                    message: e.to_string(),
                },
            };
            start += total;
            let before = wbuf.len();
            if let Err(e) = append_frame_with(&mut wbuf, |buf| response.encode_into(buf)) {
                // `append_frame_with` truncated the torn frame away, so
                // wbuf holds only complete earlier responses.
                let _ = writer.write_all(&wbuf);
                return Err(e);
            }
            shared
                .meter
                .record(TrafficClass::Control, (wbuf.len() - before) as u64);
            let shutting_down = match &response {
                Response::ShutdownOk => true,
                Response::Tagged { inner, .. } => matches!(**inner, Response::ShutdownOk),
                _ => false,
            };
            if shutting_down {
                writer.write_all(&wbuf)?;
                return Ok(());
            }
            if wbuf.len() >= WRITE_COALESCE_BYTES {
                writer.write_all(&wbuf)?;
                wbuf.clear();
            }
        }
        // About to wait for input: ship the coalesced responses first so
        // the client can make progress (and so lockstep never stalls).
        if !wbuf.is_empty() {
            writer.write_all(&wbuf)?;
            wbuf.clear();
        }
        if !fill_polling(&mut reader, &mut rbuf, &mut start, &mut end, shared)? {
            return Ok(());
        }
    }
}

fn meter_request(shared: &Shared, request: &Request, wire_bytes: u64) {
    match request {
        Request::Query(_) | Request::Sql { .. } => {
            shared.meter.record(TrafficClass::QueryShip, wire_bytes);
        }
        Request::Update(_) => shared.meter.record(TrafficClass::UpdateShip, wire_bytes),
        Request::Batch(items) => {
            // Split the frame's bytes over the classes it mixes, in
            // proportion to item counts (exact, largest-remainder).
            let nq = items
                .iter()
                .filter(|i| matches!(i, BatchItem::Query(_)))
                .count() as u64;
            let nu = items.len() as u64 - nq;
            if nq + nu == 0 {
                shared.meter.record(TrafficClass::Control, wire_bytes);
                return;
            }
            let shares = apportion(wire_bytes, &[nq, nu]);
            shared.meter.record(TrafficClass::QueryShip, shares[0]);
            shared.meter.record(TrafficClass::UpdateShip, shares[1]);
        }
        Request::Tagged { inner, .. } => meter_request(shared, inner, wire_bytes),
        Request::Stats | Request::Shutdown => {
            shared.meter.record(TrafficClass::Control, wire_bytes);
        }
    }
}

fn handle_request(shared: &Shared, request: Request, compiler: Option<&QueryCompiler>) -> Response {
    match request {
        Request::Query(q) => handle_query(shared, q),
        Request::Update(u) => {
            if u.object.index() >= shared.catalog.len() {
                return unknown_object(u.object);
            }
            let (shard, local) = shared.map.split_update(&u);
            let version = shared.shards[shard].apply_update(local);
            Response::UpdateOk {
                shard: shard as u16,
                version,
            }
        }
        Request::Sql { seq, sql } => handle_sql(shared, compiler, seq, &sql),
        Request::Batch(items) => handle_batch(shared, items),
        // Nested tags are rejected by the decoder; a bare Tagged here
        // means the caller bypassed `serve_connection`'s unwrapping.
        Request::Tagged { inner, .. } => handle_request(shared, *inner, compiler),
        Request::Stats => {
            let shards: Vec<ShardStats> = shared.shards.iter().map(ShardCore::stats).collect();
            Response::StatsOk(StatsSnapshot { shards })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShutdownOk
        }
    }
}

fn handle_query(shared: &Shared, q: QueryEvent) -> Response {
    if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
        return unknown_object(bad);
    }
    let subs = shared.map.split_query(&q, &shared.catalog);
    let mut sent = 0u16;
    let mut local_answers = 0u16;
    let mut shipped = 0u16;
    let mut failure: Option<String> = None;
    // Every touched shard serves its sub-query even after a failure, so
    // a contract violation on one shard never leaves another shard's
    // sub-trace short (the differential tests depend on it).
    for (shard, sub) in subs {
        sent += 1;
        match shared.shards[shard].serve_query(sub) {
            Ok(true) => local_answers += 1,
            Ok(false) => shipped += 1,
            Err(error) => {
                failure.get_or_insert(error);
            }
        }
    }
    if let Some(message) = failure {
        return Response::Error {
            code: error_code::CONTRACT_VIOLATED,
            message,
        };
    }
    Response::QueryOk {
        shards_touched: sent,
        local_answers,
        shipped,
    }
}

/// Compiles raw SQL with the connection's compiler and serves the
/// resulting event through the normal shard fan-out.
fn handle_sql(shared: &Shared, compiler: Option<&QueryCompiler>, seq: u64, sql: &str) -> Response {
    let Some(compiler) = compiler else {
        return Response::Error {
            code: error_code::SQL_UNAVAILABLE,
            message: "server has no SQL frontend (start it from a workload preset)".to_string(),
        };
    };
    let compiled = match compiler.compile(sql) {
        Ok(c) => c,
        Err(QueryError::Parse(e)) => {
            let span = e.span();
            return Response::SqlRejected {
                stage: SqlStage::Parse,
                span_start: span.start as u32,
                span_end: span.end as u32,
                message: e.to_string(),
            };
        }
        Err(QueryError::Analyze(e)) => {
            return Response::SqlRejected {
                stage: SqlStage::Analyze,
                span_start: 0,
                span_end: 0,
                message: e.to_string(),
            };
        }
    };
    let objects = compiled.objects.len() as u32;
    let event = compiled.into_event(seq);
    let (result_bytes, tolerance, kind) = (event.result_bytes, event.tolerance, event.kind);
    match handle_query(shared, event) {
        Response::QueryOk {
            shards_touched,
            local_answers,
            shipped,
        } => Response::SqlOk {
            shards_touched,
            local_answers,
            shipped,
            objects,
            result_bytes,
            tolerance,
            kind,
        },
        other => other,
    }
}

/// Serves a whole batch with one lock acquisition per touched shard:
/// every item is split as usual, but each shard executes its sub-events
/// as one ordered [`ShardCore::run_batch`], so the serialization cost is
/// paid per *batch*, not per event.
///
/// Per-shard sub-event order equals item order, which is what keeps a
/// batched replay byte-identical to the same events sent one frame at a
/// time (pinned by the shard-level and integration tests).
fn handle_batch(shared: &Shared, items: Vec<BatchItem>) -> Response {
    struct QueryAcc {
        sent: u16,
        local: u16,
        shipped: u16,
    }
    let mut replies: Vec<Option<BatchReply>> = Vec::with_capacity(items.len());
    replies.resize_with(items.len(), || None);
    let mut accs: Vec<Option<QueryAcc>> = Vec::with_capacity(items.len());
    accs.resize_with(items.len(), || None);
    let mut per_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); shared.shards.len()];

    for (i, item) in items.into_iter().enumerate() {
        match item {
            BatchItem::Query(q) => {
                if let Some(&bad) = q.objects.iter().find(|o| o.index() >= shared.catalog.len()) {
                    replies[i] = Some(batch_error(unknown_object(bad)));
                    continue;
                }
                let subs = shared.map.split_query(&q, &shared.catalog);
                accs[i] = Some(QueryAcc {
                    sent: subs.len() as u16,
                    local: 0,
                    shipped: 0,
                });
                for (s, sub) in subs {
                    per_shard[s].push(ShardOp::Query {
                        item: i as u32,
                        event: sub,
                    });
                }
            }
            BatchItem::Update(u) => {
                if u.object.index() >= shared.catalog.len() {
                    replies[i] = Some(batch_error(unknown_object(u.object)));
                    continue;
                }
                let (s, local) = shared.map.split_update(&u);
                per_shard[s].push(ShardOp::Update {
                    item: i as u32,
                    event: local,
                });
            }
        }
    }

    for (s, ops) in per_shard.into_iter().enumerate() {
        if ops.is_empty() {
            continue;
        }
        for outcome in shared.shards[s].run_batch(ops) {
            match outcome {
                OpOutcome::Query { item, local } => {
                    let acc = accs[item as usize]
                        .as_mut()
                        .expect("query outcome for non-query item");
                    if local {
                        acc.local += 1;
                    } else {
                        acc.shipped += 1;
                    }
                }
                // A contract violation poisons its item only; the rest
                // of the batch is unaffected. The error reply takes
                // precedence over any sub-queries of the same item that
                // other shards did serve.
                OpOutcome::QueryFailed { item, error } => {
                    replies[item as usize] = Some(BatchReply::Error {
                        code: error_code::CONTRACT_VIOLATED,
                        message: error,
                    });
                }
                OpOutcome::Update { item, version } => {
                    replies[item as usize] = Some(BatchReply::Update {
                        shard: s as u16,
                        version,
                    });
                }
            }
        }
    }

    let replies = replies
        .into_iter()
        .zip(accs)
        .map(|(reply, acc)| match (reply, acc) {
            (Some(r), _) => r,
            (None, Some(acc)) => BatchReply::Query {
                shards_touched: acc.sent,
                local_answers: acc.local,
                shipped: acc.shipped,
            },
            // An update that reached no shard can't happen (every valid
            // object id owns exactly one shard), but fail loudly if the
            // invariant ever breaks rather than fabricating a reply.
            (None, None) => BatchReply::Error {
                code: error_code::BAD_FRAME,
                message: "item produced no outcome".to_string(),
            },
        })
        .collect();
    Response::BatchOk(replies)
}

/// Converts a single-request error response into its batch-item shape.
fn batch_error(r: Response) -> BatchReply {
    match r {
        Response::Error { code, message } => BatchReply::Error { code, message },
        other => BatchReply::Error {
            code: error_code::BAD_FRAME,
            message: format!("unexpected error shape {other:?}"),
        },
    }
}

fn unknown_object(o: ObjectId) -> Response {
    Response::Error {
        code: error_code::UNKNOWN_OBJECT,
        message: format!("object {o} is outside the catalog"),
    }
}
