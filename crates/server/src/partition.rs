//! Catalog partitioning and query splitting, behind a pluggable
//! [`Partitioner`] trait.
//!
//! The server hash-partitions the object catalog over N shards. Two
//! partitioners are available:
//!
//! * [`RoundRobin`] — global id `g` lives on shard `g % N` as local id
//!   `g / N`. This is the original (PR-1) mapping, preserved
//!   byte-for-byte: every existing ledger pinned against it still holds.
//! * [`HashRing`] — weighted rendezvous (highest-random-weight) hashing
//!   with **bounded remap**: when the shard count grows from N to N+1,
//!   the only objects whose owner changes are the ones that move *to*
//!   the new shard (an expected 1/(N+1) of the catalog), which is what
//!   makes live resharding affordable. Local ids are the object's rank
//!   within its shard, so sub-catalogs stay dense.
//!
//! A query touching several shards is split into per-shard sub-queries
//! whose `result_bytes` are apportioned by the touched objects' catalog
//! sizes (largest-remainder rounding, so the shares sum exactly to the
//! original).
//!
//! Everything here is pure and deterministic, and [`shard_trace`] applies
//! the *same* mapping to a whole trace offline. That is what makes the
//! server (and the router tier above it) testable against the in-process
//! simulator: replaying a trace over TCP against an N-shard deployment
//! must produce, per shard, exactly the ledger `sim::simulate` produces
//! on that shard's sub-catalog and sub-trace.

use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, Trace, UpdateEvent};

/// Which [`Partitioner`] implementation a deployment runs. Carried in
/// configuration, the v4 `Hello` handshake and the bench metadata, so
/// every tier of a cluster can verify it routes with the same mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionerKind {
    /// The original `g % N` mapping ([`RoundRobin`]).
    RoundRobin,
    /// Weighted rendezvous hashing with bounded remap ([`HashRing`]).
    HashRing,
}

impl PartitionerKind {
    /// Parses a partitioner name (as accepted by `--partitioner`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "rr" | "roundrobin" | "round-robin" => Ok(PartitionerKind::RoundRobin),
            "ring" | "hashring" | "hash-ring" => Ok(PartitionerKind::HashRing),
            other => Err(format!(
                "unknown partitioner {other:?}; expected rr or ring"
            )),
        }
    }

    /// Builds the partitioner for a catalog of `n_objects` over
    /// `n_shards` shards (equal weights for the ring).
    pub fn build(&self, n_shards: usize, n_objects: usize) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::RoundRobin => Box::new(RoundRobin::new(n_shards, n_objects)),
            PartitionerKind::HashRing => Box::new(HashRing::new(n_shards, n_objects)),
        }
    }
}

impl std::fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionerKind::RoundRobin => write!(f, "rr"),
            PartitionerKind::HashRing => write!(f, "ring"),
        }
    }
}

/// A deterministic, invertible object partitioning over a fixed catalog.
///
/// The primitive methods define a bijection
/// `global id ↔ (shard, local id)` with dense local ids per shard; the
/// provided methods derive everything the serving layers need from that
/// bijection — sub-catalogs, cache-budget splits, query/update routing —
/// so any implementation automatically agrees with its offline
/// [`shard_trace`] twin.
pub trait Partitioner: Send + Sync {
    /// Which implementation this is (wire / metadata identity).
    fn kind(&self) -> PartitionerKind;

    /// Number of shards.
    fn n_shards(&self) -> usize;

    /// Number of catalog objects the partitioner was built for.
    fn n_objects(&self) -> usize;

    /// The shard owning a global object id.
    fn shard_of(&self, o: ObjectId) -> usize;

    /// The local (per-shard dense) id of a global object id.
    fn local_id(&self, o: ObjectId) -> ObjectId;

    /// The global id of a shard-local object id.
    fn global_id(&self, shard: usize, local: ObjectId) -> ObjectId;

    /// Number of objects shard `shard` owns.
    fn shard_len(&self, shard: usize) -> usize;

    /// Builds shard `shard`'s sub-catalog of `catalog`.
    fn shard_catalog(&self, shard: usize, catalog: &ObjectCatalog) -> ObjectCatalog {
        let sizes: Vec<u64> = (0..self.shard_len(shard))
            .map(|l| catalog.size(self.global_id(shard, ObjectId(l as u32))))
            .collect();
        ObjectCatalog::from_sizes(&sizes)
    }

    /// Splits the configured total cache budget across shards,
    /// proportional to sub-catalog bytes (largest-remainder exact split).
    fn shard_cache_bytes(&self, total_cache: u64, catalog: &ObjectCatalog) -> Vec<u64> {
        let weights: Vec<u64> = (0..self.n_shards())
            .map(|s| self.shard_catalog(s, catalog).total_bytes())
            .collect();
        apportion(total_cache, &weights)
    }

    /// Splits a query (global ids) into `(shard, sub-query)` pairs with
    /// local ids and exactly-apportioned result bytes. Sub-queries come
    /// out in ascending shard order.
    fn split_query(&self, q: &QueryEvent, catalog: &ObjectCatalog) -> Vec<(usize, QueryEvent)> {
        let mut per_shard: Vec<Vec<ObjectId>> = vec![Vec::new(); self.n_shards()];
        for &o in &q.objects {
            per_shard[self.shard_of(o)].push(self.local_id(o));
        }
        let touched: Vec<usize> = (0..self.n_shards())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();
        // Weight each touched shard by the catalog bytes of its touched
        // objects: bigger objects presumably contribute more result rows.
        let weights: Vec<u64> = touched
            .iter()
            .map(|&s| {
                per_shard[s]
                    .iter()
                    .map(|&l| catalog.size(self.global_id(s, l)))
                    .sum::<u64>()
                    .max(1)
            })
            .collect();
        let shares = apportion(q.result_bytes, &weights);
        touched
            .into_iter()
            .zip(shares)
            .map(|(s, result_bytes)| {
                (
                    s,
                    QueryEvent {
                        seq: q.seq,
                        objects: std::mem::take(&mut per_shard[s]),
                        result_bytes,
                        tolerance: q.tolerance,
                        kind: q.kind,
                    },
                )
            })
            .collect()
    }

    /// Maps an update (global id) to its `(shard, local update)`.
    fn split_update(&self, u: &UpdateEvent) -> (usize, UpdateEvent) {
        (
            self.shard_of(u.object),
            UpdateEvent {
                seq: u.seq,
                object: self.local_id(u.object),
                bytes: u.bytes,
            },
        )
    }
}

/// The round-robin object partitioning: `g % N`, preserved byte-for-byte
/// from the pre-trait `ShardMap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundRobin {
    n_shards: u32,
    n_objects: u32,
}

impl RoundRobin {
    /// Creates a map over `n_shards` (at least 1) for a catalog of
    /// `n_objects`.
    pub fn new(n_shards: usize, n_objects: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(n_shards <= u16::MAX as usize, "shard count exceeds u16");
        assert!(n_objects <= u32::MAX as usize, "catalog exceeds u32");
        RoundRobin {
            n_shards: n_shards as u32,
            n_objects: n_objects as u32,
        }
    }
}

impl Partitioner for RoundRobin {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::RoundRobin
    }

    fn n_shards(&self) -> usize {
        self.n_shards as usize
    }

    fn n_objects(&self) -> usize {
        self.n_objects as usize
    }

    fn shard_of(&self, o: ObjectId) -> usize {
        (o.0 % self.n_shards) as usize
    }

    fn local_id(&self, o: ObjectId) -> ObjectId {
        ObjectId(o.0 / self.n_shards)
    }

    fn global_id(&self, shard: usize, local: ObjectId) -> ObjectId {
        ObjectId(local.0 * self.n_shards + shard as u32)
    }

    fn shard_len(&self, shard: usize) -> usize {
        let n = self.n_shards as usize;
        (self.n_objects as usize + n - 1 - shard) / n
    }
}

/// Weighted rendezvous (highest-random-weight) partitioning.
///
/// Every `(object, shard)` pair gets a deterministic score
/// `-w_shard / ln(u)` where `u ∈ (0,1)` comes from a 64-bit mix of the
/// pair; the object lives on its highest-scoring shard. Because a
/// shard's scores do not depend on how many other shards exist, adding a
/// shard can only move objects *to* the new shard and removing one only
/// moves its own objects elsewhere — the bounded-remap property the
/// partition proptests pin.
///
/// The assignment tables are precomputed per catalog (`O(objects)`
/// memory), which is what makes local ids dense and the mapping
/// invertible like the round-robin one.
#[derive(Clone, Debug)]
pub struct HashRing {
    n_shards: u32,
    /// `owner[g]` — shard owning global id `g`.
    owner: Vec<u16>,
    /// `local[g]` — rank of `g` among its shard's objects.
    local: Vec<u32>,
    /// `members[s]` — global ids owned by shard `s`, ascending.
    members: Vec<Vec<u32>>,
}

impl HashRing {
    /// Equal-weight ring over `n_shards` for a catalog of `n_objects`.
    pub fn new(n_shards: usize, n_objects: usize) -> Self {
        Self::with_weights(&vec![1; n_shards], n_objects)
    }

    /// Weighted ring: shard `s` owns an expected
    /// `weights[s] / Σweights` share of the catalog.
    pub fn with_weights(weights: &[u64], n_objects: usize) -> Self {
        let n_shards = weights.len();
        assert!(n_shards >= 1, "need at least one shard");
        assert!(n_shards <= u16::MAX as usize, "shard count exceeds u16");
        assert!(
            weights.iter().any(|&w| w > 0),
            "at least one shard weight must be positive"
        );
        let mut owner = Vec::with_capacity(n_objects);
        let mut local = vec![0u32; n_objects];
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for g in 0..n_objects as u32 {
            let s = Self::owner_of(g, weights);
            owner.push(s as u16);
        }
        for (g, &s) in owner.iter().enumerate() {
            let shard = &mut members[s as usize];
            local[g] = shard.len() as u32;
            shard.push(g as u32);
        }
        HashRing {
            n_shards: n_shards as u32,
            owner,
            local,
            members,
        }
    }

    /// The rendezvous winner for global id `g` under `weights` —
    /// independent of catalog size and of every other shard's existence.
    fn owner_of(g: u32, weights: &[u64]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (s, &w) in weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let score = Self::score(g, s as u32, w);
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        best
    }

    /// Weighted rendezvous score for one `(object, shard)` pair.
    fn score(g: u32, s: u32, weight: u64) -> f64 {
        let h = splitmix64(((g as u64) << 32) | s as u64);
        // Map the hash into the open interval (0,1): never exactly 0
        // (ln(0) = -inf) nor 1 (ln(1) = 0 would divide by zero).
        let u = (h as f64 + 1.0) / (u64::MAX as f64 + 2.0);
        -(weight as f64) / u.ln()
    }
}

impl Partitioner for HashRing {
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::HashRing
    }

    fn n_shards(&self) -> usize {
        self.n_shards as usize
    }

    fn n_objects(&self) -> usize {
        self.owner.len()
    }

    fn shard_of(&self, o: ObjectId) -> usize {
        self.owner[o.index()] as usize
    }

    fn local_id(&self, o: ObjectId) -> ObjectId {
        ObjectId(self.local[o.index()])
    }

    fn global_id(&self, shard: usize, local: ObjectId) -> ObjectId {
        ObjectId(self.members[shard][local.index()])
    }

    fn shard_len(&self, shard: usize) -> usize {
        self.members[shard].len()
    }
}

/// SplitMix64 — the standard 64-bit finalizer; deterministic across
/// platforms, good avalanche for the rendezvous scores.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Splits `total` into shares proportional to `weights`, summing exactly
/// to `total` (largest-remainder method; ties go to the earlier entry).
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let wsum: u128 = weights.iter().map(|&w| w as u128).sum();
    if wsum == 0 {
        let mut out = vec![0; weights.len()];
        out[0] = total;
        return out;
    }
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let num = total as u128 * w as u128;
        let share = (num / wsum) as u64;
        shares.push(share);
        assigned += share;
        remainders.push((num % wsum, i));
    }
    // Hand the leftover units to the largest remainders.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = total - assigned;
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

/// Applies the shard mapping to a whole trace: returns, per shard, its
/// sub-catalog, sub-trace (local ids, apportioned bytes) and cache
/// budget. This is the offline twin of what the live server — and the
/// router tier over a multi-node cluster — does online.
pub fn shard_trace(
    map: &dyn Partitioner,
    catalog: &ObjectCatalog,
    trace: &Trace,
    total_cache: u64,
) -> Vec<(ObjectCatalog, Trace, u64)> {
    let caches = map.shard_cache_bytes(total_cache, catalog);
    let mut events: Vec<Vec<Event>> = vec![Vec::new(); map.n_shards()];
    for event in trace.iter() {
        match event {
            Event::Query(q) => {
                for (s, sub) in map.split_query(q, catalog) {
                    events[s].push(Event::Query(sub));
                }
            }
            Event::Update(u) => {
                let (s, sub) = map.split_update(u);
                events[s].push(Event::Update(sub));
            }
        }
    }
    events
        .into_iter()
        .enumerate()
        .map(|(s, evs)| (map.shard_catalog(s, catalog), Trace::new(evs), caches[s]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_workload::QueryKind;

    fn catalog() -> ObjectCatalog {
        ObjectCatalog::from_sizes(&[100, 200, 300, 400, 500, 600, 700])
    }

    /// Both partitioners over the same shape, for shared properties.
    fn both(n_shards: usize, n_objects: usize) -> Vec<Box<dyn Partitioner>> {
        vec![
            Box::new(RoundRobin::new(n_shards, n_objects)),
            Box::new(HashRing::new(n_shards, n_objects)),
        ]
    }

    #[test]
    fn round_robin_ids_are_inverse() {
        let map = RoundRobin::new(3, 100);
        for g in 0..100u32 {
            let o = ObjectId(g);
            let s = map.shard_of(o);
            let l = map.local_id(o);
            assert_eq!(map.global_id(s, l), o);
        }
        let map = RoundRobin::new(3, 7);
        assert_eq!(map.shard_len(0), 3); // 0, 3, 6
        assert_eq!(map.shard_len(1), 2); // 1, 4
        assert_eq!(map.shard_len(2), 2); // 2, 5
    }

    #[test]
    fn every_partitioner_is_a_dense_bijection() {
        for map in both(3, 100) {
            let mut seen = [false; 100];
            for s in 0..map.n_shards() {
                for l in 0..map.shard_len(s) {
                    let g = map.global_id(s, ObjectId(l as u32));
                    assert!(!seen[g.index()], "{g} assigned twice");
                    seen[g.index()] = true;
                    assert_eq!(map.shard_of(g), s);
                    assert_eq!(map.local_id(g), ObjectId(l as u32));
                }
            }
            assert!(seen.iter().all(|&b| b), "every object owned exactly once");
        }
    }

    #[test]
    fn hash_ring_remap_is_bounded_to_the_new_shard() {
        let before = HashRing::new(4, 500);
        let after = HashRing::new(5, 500);
        let mut moved = 0;
        for g in 0..500u32 {
            let o = ObjectId(g);
            if before.shard_of(o) != after.shard_of(o) {
                assert_eq!(after.shard_of(o), 4, "{o} moved between surviving shards");
                moved += 1;
            }
        }
        // Expected share is 1/5 of the catalog; allow generous slack.
        assert!(moved > 0, "a bigger ring must take some objects");
        assert!(moved < 250, "remap moved {moved}/500 objects — unbounded?");
    }

    #[test]
    fn hash_ring_weights_skew_ownership() {
        let ring = HashRing::with_weights(&[1, 9], 2_000);
        let small = ring.shard_len(0);
        let large = ring.shard_len(1);
        assert_eq!(small + large, 2_000);
        assert!(
            large > small * 4,
            "weight-9 shard owns {large}, weight-1 shard owns {small}"
        );
    }

    #[test]
    fn sub_catalogs_cover_everything_once() {
        let c = catalog();
        for map in both(3, c.len()) {
            // A ring shard can be empty on a tiny catalog; an empty
            // sub-catalog is unrepresentable (the server refuses such
            // configurations at startup), so only materialize occupied
            // shards — coverage must still be exact.
            let total: u64 = (0..3)
                .filter(|&s| map.shard_len(s) > 0)
                .map(|s| map.shard_catalog(s, &c).total_bytes())
                .sum();
            assert_eq!(total, c.total_bytes());
        }
        // Round-robin shard 0 owns global 0, 3, 6 — unchanged layout.
        let map = RoundRobin::new(3, c.len());
        let s0 = map.shard_catalog(0, &c);
        assert_eq!(s0.len(), 3);
        assert_eq!(s0.size(ObjectId(0)), 100);
        assert_eq!(s0.size(ObjectId(1)), 400);
        assert_eq!(s0.size(ObjectId(2)), 700);
    }

    #[test]
    fn apportion_is_exact_and_proportional() {
        assert_eq!(apportion(100, &[1, 1]), vec![50, 50]);
        assert_eq!(apportion(101, &[1, 1]), vec![51, 50]);
        assert_eq!(apportion(10, &[0, 0, 0]), vec![10, 0, 0]);
        let shares = apportion(1_000_003, &[3, 7, 11, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        assert!(shares[2] > shares[1] && shares[1] > shares[0]);
    }

    #[test]
    fn split_query_preserves_bytes_and_objects() {
        let c = catalog();
        for map in both(3, c.len()) {
            let q = QueryEvent {
                seq: 9,
                objects: vec![ObjectId(0), ObjectId(1), ObjectId(3), ObjectId(5)],
                result_bytes: 1_000,
                tolerance: 4,
                kind: QueryKind::Range,
            };
            let subs = map.split_query(&q, &c);
            assert_eq!(subs.iter().map(|(_, s)| s.result_bytes).sum::<u64>(), 1_000);
            let mut returned = 0;
            for (s, sub) in &subs {
                assert_eq!(sub.seq, 9);
                assert_eq!(sub.tolerance, 4);
                assert_eq!(sub.kind, QueryKind::Range);
                for &l in &sub.objects {
                    assert_eq!(map.shard_of(map.global_id(*s, l)), *s);
                    returned += 1;
                }
            }
            assert_eq!(returned, 4, "every object routed exactly once");
        }
        // Round-robin layout pinned: shards 0 (objects 0,3), 1 (1), 2 (5).
        let map = RoundRobin::new(3, c.len());
        let q = QueryEvent {
            seq: 9,
            objects: vec![ObjectId(0), ObjectId(1), ObjectId(3), ObjectId(5)],
            result_bytes: 1_000,
            tolerance: 4,
            kind: QueryKind::Range,
        };
        let subs = map.split_query(&q, &c);
        assert_eq!(subs.len(), 3);
        let (s0, sub0) = &subs[0];
        assert_eq!(*s0, 0);
        assert_eq!(sub0.objects, vec![ObjectId(0), ObjectId(1)]); // global 0 and 3
    }

    #[test]
    fn single_shard_split_is_identity() {
        let c = catalog();
        for map in both(1, c.len()) {
            let q = QueryEvent {
                seq: 1,
                objects: vec![ObjectId(2), ObjectId(4)],
                result_bytes: 77,
                tolerance: 0,
                kind: QueryKind::Cone,
            };
            let subs = map.split_query(&q, &c);
            assert_eq!(subs.len(), 1);
            assert_eq!(subs[0].1, q);
        }
    }

    #[test]
    fn shard_trace_partitions_all_events() {
        // Big enough that the hash ring leaves no shard empty (a
        // precondition `shard_trace` shares with the live server).
        let sizes: Vec<u64> = (1..=32).map(|i| i * 100).collect();
        let c = ObjectCatalog::from_sizes(&sizes);
        for map in both(4, c.len()) {
            assert!((0..4).all(|s| map.shard_len(s) > 0));
            let trace = Trace::new(vec![
                Event::Query(QueryEvent {
                    seq: 0,
                    objects: vec![ObjectId(0), ObjectId(1), ObjectId(2)],
                    result_bytes: 100,
                    tolerance: 0,
                    kind: QueryKind::Cone,
                }),
                Event::Update(UpdateEvent {
                    seq: 1,
                    object: ObjectId(5),
                    bytes: 9,
                }),
                Event::Query(QueryEvent {
                    seq: 2,
                    objects: vec![ObjectId(5)],
                    result_bytes: 40,
                    tolerance: 1,
                    kind: QueryKind::Selection,
                }),
            ]);
            let shards = shard_trace(map.as_ref(), &c, &trace, 1_000);
            assert_eq!(shards.len(), 4);
            let total_cache: u64 = shards.iter().map(|(_, _, cache)| cache).sum();
            assert_eq!(total_cache, 1_000);
            let query_bytes: u64 = shards.iter().map(|(_, t, _)| t.total_query_bytes()).sum();
            assert_eq!(query_bytes, 140);
            let update_bytes: u64 = shards.iter().map(|(_, t, _)| t.total_update_bytes()).sum();
            assert_eq!(update_bytes, 9);
            // The update to global object 5 landed on its owner as the
            // right local id.
            let s = map.shard_of(ObjectId(5));
            let l = map.local_id(ObjectId(5));
            let (_, t, _) = &shards[s];
            assert!(t
                .iter()
                .any(|e| matches!(e, Event::Update(u) if u.object == l && u.bytes == 9)));
        }
    }

    #[test]
    fn partitioner_kind_parse_round_trips() {
        for kind in [PartitionerKind::RoundRobin, PartitionerKind::HashRing] {
            assert_eq!(PartitionerKind::parse(&kind.to_string()), Ok(kind));
            assert_eq!(kind.build(3, 10).kind(), kind);
        }
        assert!(PartitionerKind::parse("mod").is_err());
    }
}
