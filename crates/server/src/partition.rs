//! Catalog sharding and query splitting.
//!
//! The server hash-partitions the object catalog over N shards by object
//! id (round-robin: global id `g` lives on shard `g % N` as local id
//! `g / N`). A query touching several shards is split into per-shard
//! sub-queries whose `result_bytes` are apportioned by the touched
//! objects' catalog sizes (largest-remainder rounding, so the shares sum
//! exactly to the original).
//!
//! Everything here is pure and deterministic, and [`shard_trace`] applies
//! the *same* mapping to a whole trace offline. That is what makes the
//! server testable against the in-process simulator: replaying a trace
//! over TCP against an N-shard server must produce, per shard, exactly
//! the ledger `sim::simulate` produces on that shard's sub-catalog and
//! sub-trace.

use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, Trace, UpdateEvent};

/// The round-robin object partitioning over `n_shards`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n_shards: u32,
}

impl ShardMap {
    /// Creates a map over `n_shards` (at least 1).
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(n_shards <= u16::MAX as usize, "shard count exceeds u16");
        ShardMap {
            n_shards: n_shards as u32,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards as usize
    }

    /// The shard owning a global object id.
    pub fn shard_of(&self, o: ObjectId) -> usize {
        (o.0 % self.n_shards) as usize
    }

    /// The local (per-shard dense) id of a global object id.
    pub fn local_id(&self, o: ObjectId) -> ObjectId {
        ObjectId(o.0 / self.n_shards)
    }

    /// The global id of a shard-local object id.
    pub fn global_id(&self, shard: usize, local: ObjectId) -> ObjectId {
        ObjectId(local.0 * self.n_shards + shard as u32)
    }

    /// Number of objects shard `shard` owns out of a `n_objects` catalog.
    pub fn shard_len(&self, shard: usize, n_objects: usize) -> usize {
        let n = self.n_shards as usize;
        (n_objects + n - 1 - shard) / n
    }

    /// Builds shard `shard`'s sub-catalog of `catalog`.
    pub fn shard_catalog(&self, shard: usize, catalog: &ObjectCatalog) -> ObjectCatalog {
        let sizes: Vec<u64> = (0..self.shard_len(shard, catalog.len()))
            .map(|l| catalog.size(self.global_id(shard, ObjectId(l as u32))))
            .collect();
        ObjectCatalog::from_sizes(&sizes)
    }

    /// Splits the configured total cache budget across shards,
    /// proportional to sub-catalog bytes (largest-remainder exact split).
    pub fn shard_cache_bytes(&self, total_cache: u64, catalog: &ObjectCatalog) -> Vec<u64> {
        let weights: Vec<u64> = (0..self.n_shards())
            .map(|s| self.shard_catalog(s, catalog).total_bytes())
            .collect();
        apportion(total_cache, &weights)
    }

    /// Splits a query (global ids) into `(shard, sub-query)` pairs with
    /// local ids and exactly-apportioned result bytes. Sub-queries come
    /// out in ascending shard order.
    pub fn split_query(&self, q: &QueryEvent, catalog: &ObjectCatalog) -> Vec<(usize, QueryEvent)> {
        let mut per_shard: Vec<Vec<ObjectId>> = vec![Vec::new(); self.n_shards()];
        for &o in &q.objects {
            per_shard[self.shard_of(o)].push(self.local_id(o));
        }
        let touched: Vec<usize> = (0..self.n_shards())
            .filter(|&s| !per_shard[s].is_empty())
            .collect();
        // Weight each touched shard by the catalog bytes of its touched
        // objects: bigger objects presumably contribute more result rows.
        let weights: Vec<u64> = touched
            .iter()
            .map(|&s| {
                per_shard[s]
                    .iter()
                    .map(|&l| catalog.size(self.global_id(s, l)))
                    .sum::<u64>()
                    .max(1)
            })
            .collect();
        let shares = apportion(q.result_bytes, &weights);
        touched
            .into_iter()
            .zip(shares)
            .map(|(s, result_bytes)| {
                (
                    s,
                    QueryEvent {
                        seq: q.seq,
                        objects: std::mem::take(&mut per_shard[s]),
                        result_bytes,
                        tolerance: q.tolerance,
                        kind: q.kind,
                    },
                )
            })
            .collect()
    }

    /// Maps an update (global id) to its `(shard, local update)`.
    pub fn split_update(&self, u: &UpdateEvent) -> (usize, UpdateEvent) {
        (
            self.shard_of(u.object),
            UpdateEvent {
                seq: u.seq,
                object: self.local_id(u.object),
                bytes: u.bytes,
            },
        )
    }
}

/// Splits `total` into shares proportional to `weights`, summing exactly
/// to `total` (largest-remainder method; ties go to the earlier entry).
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let wsum: u128 = weights.iter().map(|&w| w as u128).sum();
    if wsum == 0 {
        let mut out = vec![0; weights.len()];
        out[0] = total;
        return out;
    }
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let num = total as u128 * w as u128;
        let share = (num / wsum) as u64;
        shares.push(share);
        assigned += share;
        remainders.push((num % wsum, i));
    }
    // Hand the leftover units to the largest remainders.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = total - assigned;
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

/// Applies the shard mapping to a whole trace: returns, per shard, its
/// sub-catalog, sub-trace (local ids, apportioned bytes) and cache
/// budget. This is the offline twin of what the live server does online.
pub fn shard_trace(
    map: ShardMap,
    catalog: &ObjectCatalog,
    trace: &Trace,
    total_cache: u64,
) -> Vec<(ObjectCatalog, Trace, u64)> {
    let caches = map.shard_cache_bytes(total_cache, catalog);
    let mut events: Vec<Vec<Event>> = vec![Vec::new(); map.n_shards()];
    for event in trace.iter() {
        match event {
            Event::Query(q) => {
                for (s, sub) in map.split_query(q, catalog) {
                    events[s].push(Event::Query(sub));
                }
            }
            Event::Update(u) => {
                let (s, sub) = map.split_update(u);
                events[s].push(Event::Update(sub));
            }
        }
    }
    events
        .into_iter()
        .enumerate()
        .map(|(s, evs)| (map.shard_catalog(s, catalog), Trace::new(evs), caches[s]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_workload::QueryKind;

    fn catalog() -> ObjectCatalog {
        ObjectCatalog::from_sizes(&[100, 200, 300, 400, 500, 600, 700])
    }

    #[test]
    fn round_robin_ids_are_inverse() {
        let map = ShardMap::new(3);
        for g in 0..100u32 {
            let o = ObjectId(g);
            let s = map.shard_of(o);
            let l = map.local_id(o);
            assert_eq!(map.global_id(s, l), o);
        }
        assert_eq!(map.shard_len(0, 7), 3); // 0, 3, 6
        assert_eq!(map.shard_len(1, 7), 2); // 1, 4
        assert_eq!(map.shard_len(2, 7), 2); // 2, 5
    }

    #[test]
    fn sub_catalogs_cover_everything_once() {
        let c = catalog();
        let map = ShardMap::new(3);
        let total: u64 = (0..3).map(|s| map.shard_catalog(s, &c).total_bytes()).sum();
        assert_eq!(total, c.total_bytes());
        // Shard 0 owns global 0, 3, 6.
        let s0 = map.shard_catalog(0, &c);
        assert_eq!(s0.len(), 3);
        assert_eq!(s0.size(ObjectId(0)), 100);
        assert_eq!(s0.size(ObjectId(1)), 400);
        assert_eq!(s0.size(ObjectId(2)), 700);
    }

    #[test]
    fn apportion_is_exact_and_proportional() {
        assert_eq!(apportion(100, &[1, 1]), vec![50, 50]);
        assert_eq!(apportion(101, &[1, 1]), vec![51, 50]);
        assert_eq!(apportion(10, &[0, 0, 0]), vec![10, 0, 0]);
        let shares = apportion(1_000_003, &[3, 7, 11, 2]);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        assert!(shares[2] > shares[1] && shares[1] > shares[0]);
    }

    #[test]
    fn split_query_preserves_bytes_and_objects() {
        let c = catalog();
        let map = ShardMap::new(3);
        let q = QueryEvent {
            seq: 9,
            objects: vec![ObjectId(0), ObjectId(1), ObjectId(3), ObjectId(5)],
            result_bytes: 1_000,
            tolerance: 4,
            kind: QueryKind::Range,
        };
        let subs = map.split_query(&q, &c);
        // Shards 0 (objects 0,3), 1 (object 1), 2 (object 5).
        assert_eq!(subs.len(), 3);
        assert_eq!(subs.iter().map(|(_, s)| s.result_bytes).sum::<u64>(), 1_000);
        for (s, sub) in &subs {
            assert_eq!(sub.seq, 9);
            assert_eq!(sub.tolerance, 4);
            assert_eq!(sub.kind, QueryKind::Range);
            for &l in &sub.objects {
                assert_eq!(map.shard_of(map.global_id(*s, l)), *s);
            }
        }
        let (s0, sub0) = &subs[0];
        assert_eq!(*s0, 0);
        assert_eq!(sub0.objects, vec![ObjectId(0), ObjectId(1)]); // global 0 and 3
    }

    #[test]
    fn single_shard_split_is_identity() {
        let c = catalog();
        let map = ShardMap::new(1);
        let q = QueryEvent {
            seq: 1,
            objects: vec![ObjectId(2), ObjectId(4)],
            result_bytes: 77,
            tolerance: 0,
            kind: QueryKind::Cone,
        };
        let subs = map.split_query(&q, &c);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].1, q);
    }

    #[test]
    fn shard_trace_partitions_all_events() {
        let c = catalog();
        let map = ShardMap::new(4);
        let trace = Trace::new(vec![
            Event::Query(QueryEvent {
                seq: 0,
                objects: vec![ObjectId(0), ObjectId(1), ObjectId(2)],
                result_bytes: 100,
                tolerance: 0,
                kind: QueryKind::Cone,
            }),
            Event::Update(UpdateEvent {
                seq: 1,
                object: ObjectId(5),
                bytes: 9,
            }),
            Event::Query(QueryEvent {
                seq: 2,
                objects: vec![ObjectId(5)],
                result_bytes: 40,
                tolerance: 1,
                kind: QueryKind::Selection,
            }),
        ]);
        let shards = shard_trace(map, &c, &trace, 1_000);
        assert_eq!(shards.len(), 4);
        let total_cache: u64 = shards.iter().map(|(_, _, cache)| cache).sum();
        assert_eq!(total_cache, 1_000);
        let query_bytes: u64 = shards.iter().map(|(_, t, _)| t.total_query_bytes()).sum();
        assert_eq!(query_bytes, 140);
        let update_bytes: u64 = shards.iter().map(|(_, t, _)| t.total_update_bytes()).sum();
        assert_eq!(update_bytes, 9);
        // Update to global object 5 landed on shard 1 as local id 1.
        let (_, t1, _) = &shards[1];
        assert!(t1
            .iter()
            .any(|e| matches!(e, Event::Update(u) if u.object == ObjectId(1) && u.bytes == 9)));
    }
}
