//! Primary/backup replication state: the per-shard applied-event log a
//! primary ships to its backups, acknowledged replication offsets, and
//! the condvar plumbing between the apply path and the pump threads.
//!
//! The engine is a deterministic state machine, so a backup that holds
//! the same starting state and applies the same shard-local event log
//! in the same order *is* the primary — byte-identical ledger and all.
//! Replication therefore ships exactly what the primary applied: every
//! successful event is appended to a [`ReplState`] log inside the same
//! engine-lock window that applied it (log order ≡ apply order), pump
//! threads ship unshipped suffixes to each backup target, and the
//! handler that applied the event waits until every reachable target
//! acknowledged it before replying to the client. That wait is what
//! makes failover lossless: a client holding an `Ok` for an event knows
//! every live backup holds that event too, so the most-caught-up backup
//! the router promotes can never miss an acknowledged write.
//!
//! Availability beats durability when a backup dies: targets marked
//! [`TargetStatus::Down`] are excluded from the wait (the shard keeps
//! serving as a sole copy — degraded, never stalled), and
//! [`ReplState::wait_replicated`] is capped so a wedged pump can stall
//! a request by a bounded amount, never forever.
//!
//! Offsets are applied-event *counts* (the engine's `events()`), not
//! sequence numbers: deterministic replay means the `n`-th applied
//! event is the same event on every copy, so "backup holds `n` events"
//! is exactly "backup equals the primary as of event `n`".

use crate::protocol::BatchItem;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Most retained log entries per shard. A target that falls further
/// behind than the cap (only possible while it is unreachable or
/// bootstrapping) is re-seeded from a snapshot instead of the log.
pub const LOG_CAP: usize = 16_384;

/// Most items shipped in one `Replicate` frame, bounding frame size.
pub const REPL_BATCH_MAX: usize = 4_096;

/// Hard cap on how long an apply waits for backup acknowledgements
/// before proceeding unreplicated — the stall bound when a pump wedges
/// without detecting its target as down first.
pub const REPL_WAIT_MAX: Duration = Duration::from_secs(15);

/// Where a backup target stands, from its primary's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetStatus {
    /// The target needs a (re-)bootstrap before log shipping: it is
    /// freshly configured, answered with an offset mismatch, or the
    /// log was truncated past its acknowledged offset.
    NeedsBootstrap,
    /// The target is bootstrapped and absorbing log suffixes; applies
    /// wait for its acknowledgements.
    Live,
    /// The target is unreachable; applies proceed without it.
    Down,
}

/// One backup target's replication progress.
#[derive(Clone, Copy, Debug)]
struct Target {
    /// Applied events the target has acknowledged.
    acked: u64,
    /// Whether the target is live, down, or awaiting bootstrap.
    status: TargetStatus,
}

/// The retained applied-event log plus per-target progress.
struct ReplLog {
    /// Offset of the first retained item (events applied before it).
    start: u64,
    /// Retained applied events, in apply order.
    items: VecDeque<BatchItem>,
    /// Per-target progress, indexed by successor rank.
    targets: Vec<Target>,
}

impl ReplLog {
    fn end(&self) -> u64 {
        self.start + self.items.len() as u64
    }

    /// Drops log entries no live target still needs, and hard-caps the
    /// log at [`LOG_CAP`]: a target truncated past must re-bootstrap.
    fn truncate(&mut self) {
        let floor = self
            .targets
            .iter()
            .filter(|t| t.status == TargetStatus::Live)
            .map(|t| t.acked)
            .min()
            .unwrap_or_else(|| self.end());
        while self.start < floor && !self.items.is_empty() {
            self.items.pop_front();
            self.start += 1;
        }
        while self.items.len() > LOG_CAP {
            self.items.pop_front();
            self.start += 1;
        }
        for t in &mut self.targets {
            if t.status == TargetStatus::Live && t.acked < self.start {
                t.status = TargetStatus::NeedsBootstrap;
            }
        }
    }
}

/// Wakes pump threads when any shard appended to its log. One notifier
/// serves every pump on the node; a woken pump re-scans its shards, so
/// spurious wakeups are merely cheap.
pub struct Notifier {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Default for Notifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Notifier {
    /// A fresh notifier at generation zero.
    pub fn new() -> Notifier {
        Notifier {
            gen: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Advances the generation and wakes every waiting pump.
    pub fn bump(&self) {
        let mut gen = self.gen.lock().expect("notifier poisoned");
        *gen += 1;
        self.cv.notify_all();
    }

    /// The current generation, for a pump entering its wait loop.
    pub fn snapshot(&self) -> u64 {
        *self.gen.lock().expect("notifier poisoned")
    }

    /// Blocks until the generation moves past `seen` or `timeout`
    /// elapses; returns the generation observed on wake.
    pub fn wait(&self, seen: u64, timeout: Duration) -> u64 {
        let gen = self.gen.lock().expect("notifier poisoned");
        let (gen, _) = self
            .cv
            .wait_timeout_while(gen, timeout, |g| *g == seen)
            .expect("notifier poisoned");
        *gen
    }
}

/// One primary shard's replication state: the retained log, per-target
/// acknowledgements, and the condvar applies wait on.
pub struct ReplState {
    shard: u16,
    inner: Mutex<ReplLog>,
    acked_cv: Condvar,
    notifier: std::sync::Arc<Notifier>,
}

impl ReplState {
    /// A log starting at `start` applied events (non-zero when the
    /// primary warm-restarted from a snapshot: earlier events are not
    /// replayable, so targets bootstrap from a snapshot instead) with
    /// `n_targets` backup targets, all awaiting bootstrap.
    pub fn new(
        shard: u16,
        start: u64,
        n_targets: usize,
        notifier: std::sync::Arc<Notifier>,
    ) -> ReplState {
        ReplState {
            shard,
            inner: Mutex::new(ReplLog {
                start,
                items: VecDeque::new(),
                targets: vec![
                    Target {
                        acked: 0,
                        status: TargetStatus::NeedsBootstrap,
                    };
                    n_targets
                ],
            }),
            acked_cv: Condvar::new(),
            notifier,
        }
    }

    /// The shard this log replicates.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ReplLog> {
        self.inner.lock().expect("replication log poisoned")
    }

    /// Appends one applied event. Callers invoke this inside the same
    /// engine-lock window that applied the event, so the log order is
    /// the apply order (the lock order is engine → log, everywhere).
    pub fn append(&self, item: BatchItem) {
        let mut log = self.lock();
        log.items.push_back(item);
        log.truncate();
        drop(log);
        self.notifier.bump();
    }

    /// Applied events the log ends at (the primary's current offset).
    pub fn end(&self) -> u64 {
        self.lock().end()
    }

    /// The unshipped suffix for `target` (at most [`REPL_BATCH_MAX`]
    /// items): `Some((from_offset, items))` when the target is live and
    /// the log still covers its acknowledged offset; `None` when the
    /// target is not live, is fully caught up, or fell behind the log
    /// (in which case it is flipped to [`TargetStatus::NeedsBootstrap`]
    /// for the pump to re-seed).
    pub fn suffix_for(&self, target: usize) -> Option<(u64, Vec<BatchItem>)> {
        let mut log = self.lock();
        let t = log.targets[target];
        if t.status != TargetStatus::Live {
            return None;
        }
        if t.acked < log.start {
            log.targets[target].status = TargetStatus::NeedsBootstrap;
            return None;
        }
        if t.acked >= log.end() {
            return None;
        }
        let skip = (t.acked - log.start) as usize;
        let items: Vec<BatchItem> = log
            .items
            .iter()
            .skip(skip)
            .take(REPL_BATCH_MAX)
            .cloned()
            .collect();
        Some((t.acked, items))
    }

    /// Records an acknowledged offset for `target` (monotone: stale
    /// acks are ignored), trims the log, and wakes waiting applies.
    pub fn record_ack(&self, target: usize, offset: u64) {
        let mut log = self.lock();
        let t = &mut log.targets[target];
        t.acked = t.acked.max(offset);
        log.truncate();
        drop(log);
        self.acked_cv.notify_all();
    }

    /// Marks `target` live at `offset` after a successful bootstrap.
    pub fn mark_bootstrapped(&self, target: usize, offset: u64) {
        let mut log = self.lock();
        log.targets[target] = Target {
            acked: offset,
            status: TargetStatus::Live,
        };
        log.truncate();
        drop(log);
        self.acked_cv.notify_all();
    }

    /// Sets `target`'s status (marking it down also wakes waiting
    /// applies, which stop counting it).
    pub fn set_status(&self, target: usize, status: TargetStatus) {
        let mut log = self.lock();
        log.targets[target].status = status;
        log.truncate();
        drop(log);
        self.acked_cv.notify_all();
    }

    /// `target`'s current status.
    pub fn status(&self, target: usize) -> TargetStatus {
        self.lock().targets[target].status
    }

    /// Blocks until every target is either down or has acknowledged at
    /// least `offset`, or until `timeout`. Returns `true` when every
    /// reachable target acknowledged (the replicated case), `false` on
    /// timeout (the capped, proceed-unreplicated case).
    pub fn wait_replicated(&self, offset: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut log = self.lock();
        loop {
            let settled = log
                .targets
                .iter()
                .all(|t| t.status == TargetStatus::Down || t.acked >= offset);
            if settled {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .acked_cv
                .wait_timeout(log, deadline - now)
                .expect("replication log poisoned");
            log = guard;
        }
    }

    /// The worst lag across targets: log end minus the smallest
    /// acknowledged offset (0 with no targets). Down targets count —
    /// an unreachable backup's growing lag is the honest number.
    pub fn lag(&self) -> u64 {
        let log = self.lock();
        log.targets
            .iter()
            .map(|t| log.end().saturating_sub(t.acked))
            .max()
            .unwrap_or(0)
    }
}

/// A uniformly jittered delay in `[base/2, base]` — enough spread to
/// de-synchronize reconnect storms (every pump and router link backing
/// off from the same death would otherwise probe in lockstep), never
/// longer than the cap the caller chose.
pub(crate) fn jittered(rng: &mut u64, base: Duration) -> Duration {
    // xorshift64: tiny, seedable, plenty for timing jitter.
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let half = base.as_micros() as u64 / 2;
    let extra = if half == 0 { 0 } else { *rng % (half + 1) };
    Duration::from_micros(half + extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::ObjectId;
    use delta_workload::UpdateEvent;
    use std::sync::Arc;

    fn item(seq: u64) -> BatchItem {
        BatchItem::Update(UpdateEvent {
            seq,
            object: ObjectId(0),
            bytes: 1,
        })
    }

    #[test]
    fn suffixes_track_acks_and_truncate() {
        let repl = ReplState::new(3, 0, 2, Arc::new(Notifier::new()));
        repl.mark_bootstrapped(0, 0);
        repl.mark_bootstrapped(1, 0);
        for seq in 1..=5 {
            repl.append(item(seq));
        }
        let (from, items) = repl.suffix_for(0).expect("unshipped suffix");
        assert_eq!(from, 0);
        assert_eq!(items.len(), 5);

        repl.record_ack(0, 5);
        assert!(repl.suffix_for(0).is_none(), "caught up");
        let (from, items) = repl.suffix_for(1).expect("target 1 still behind");
        assert_eq!((from, items.len()), (0, 5));
        assert_eq!(repl.lag(), 5);

        repl.record_ack(1, 3);
        // The log trims to the slowest live target.
        let (from, items) = repl.suffix_for(1).expect("suffix from 3");
        assert_eq!((from, items.len()), (3, 2));
        assert_eq!(repl.lag(), 2);
    }

    #[test]
    fn hard_cap_flips_laggards_to_bootstrap() {
        let repl = ReplState::new(0, 0, 1, Arc::new(Notifier::new()));
        repl.mark_bootstrapped(0, 0);
        repl.set_status(0, TargetStatus::Down);
        for seq in 0..(LOG_CAP as u64 + 10) {
            repl.append(item(seq));
        }
        // The down target came back: its acked offset predates the
        // retained log, so shipping must demand a re-bootstrap.
        repl.set_status(0, TargetStatus::Live);
        assert!(repl.suffix_for(0).is_none());
        assert_eq!(repl.status(0), TargetStatus::NeedsBootstrap);
    }

    #[test]
    fn wait_replicated_skips_down_targets() {
        let repl = ReplState::new(0, 0, 2, Arc::new(Notifier::new()));
        repl.mark_bootstrapped(0, 0);
        repl.mark_bootstrapped(1, 0);
        repl.append(item(1));
        assert!(
            !repl.wait_replicated(1, Duration::from_millis(10)),
            "no acks yet: the wait must time out"
        );
        repl.record_ack(0, 1);
        repl.set_status(1, TargetStatus::Down);
        assert!(
            repl.wait_replicated(1, Duration::from_millis(100)),
            "one ack plus one down target settles the wait"
        );
    }

    #[test]
    fn warm_restart_log_starts_past_zero() {
        let repl = ReplState::new(0, 100, 1, Arc::new(Notifier::new()));
        assert_eq!(repl.end(), 100);
        // A fresh target cannot be served from the log (its history
        // starts mid-stream) until a bootstrap marks it live at or
        // past the log start.
        assert_eq!(repl.status(0), TargetStatus::NeedsBootstrap);
        repl.mark_bootstrapped(0, 100);
        repl.append(item(101));
        let (from, items) = repl.suffix_for(0).expect("suffix after bootstrap");
        assert_eq!((from, items.len()), (100, 1));
    }

    #[test]
    fn jittered_delay_stays_in_bounds() {
        // The anti-thundering-herd contract: spread, but never past the
        // cap the caller chose and never under half of it.
        let mut rng = 0x1234_5678_9abc_def0u64;
        for base_ms in [1u64, 50, 320, 1000] {
            let base = Duration::from_millis(base_ms);
            for _ in 0..1_000 {
                let d = jittered(&mut rng, base);
                assert!(d >= base / 2, "{d:?} under half of {base:?}");
                assert!(d <= base, "{d:?} over the {base:?} cap");
            }
        }
        // Degenerate base: still terminates, still bounded.
        assert_eq!(jittered(&mut rng, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn notifier_wakes_on_bump() {
        let n = Arc::new(Notifier::new());
        let seen = n.snapshot();
        let waiter = {
            let n = Arc::clone(&n);
            std::thread::spawn(move || n.wait(seen, Duration::from_secs(5)))
        };
        // Give the waiter a moment to park, then wake it.
        std::thread::sleep(Duration::from_millis(20));
        n.bump();
        let got = waiter.join().unwrap();
        assert!(got > seen, "wait returned a newer generation");
    }
}
